"""Ablation benchmarks for the design choices DESIGN.md calls out.

* each TD-CMDP rule toggled individually (space and plan-cost impact),
* JGR greedy cover vs. collapsing maximal local queries directly,
* TD-Auto threshold sensitivity,
* memoization on/off for TD-CMD.
"""

import random

import pytest

from repro.core import (
    AutoThresholds,
    JoinGraph,
    LocalQueryIndex,
    PrunedTopDownEnumerator,
    TopDownEnumerator,
    choose_algorithm,
)
from repro.core.optimizer import make_builder
from repro.experiments.tables import render_table, write_report
from repro.partitioning import HashSubjectObject
from repro.workloads.generators import dense_query, star_query, tree_query


def _run_pruned(builder, local_index, **rules):
    optimizer = PrunedTopDownEnumerator(
        builder.join_graph, builder, local_index, **rules
    )
    result = optimizer.optimize()
    return result, optimizer.stats


RULE_VARIANTS = {
    "all-rules": {},
    "no-rule1": {"rule1_ccmd_only": False},
    "no-rule2": {"rule2_binary_broadcast": False},
    "no-rule3": {"rule3_local_short_circuit": False},
}


@pytest.mark.parametrize("variant", list(RULE_VARIANTS))
def test_rule_ablation_runtime(benchmark, variant):
    query = tree_query(9, random.Random(7))
    builder = make_builder(query, seed=7)
    local_index = LocalQueryIndex(builder.join_graph, HashSubjectObject())
    result, stats = benchmark.pedantic(
        _run_pruned,
        args=(builder, local_index),
        kwargs=RULE_VARIANTS[variant],
        rounds=1,
        iterations=1,
    )
    assert result.cost > 0


@pytest.mark.report
def test_rule_ablation_report(benchmark):
    """Quantify each rule's contribution on a tree and a dense query."""

    def build_report():
        rows = []
        for label, query in (
            ("tree-9", tree_query(9, random.Random(7))),
            ("dense-9", dense_query(9, random.Random(7))),
            ("star-9", star_query(9)),
        ):
            builder = make_builder(query, seed=7)
            local_index = LocalQueryIndex(builder.join_graph, HashSubjectObject())
            baseline = TopDownEnumerator(builder.join_graph, builder, local_index)
            base_result = baseline.optimize()
            for variant, rules in RULE_VARIANTS.items():
                result, stats = _run_pruned(builder, local_index, **rules)
                rows.append(
                    [
                        label,
                        variant,
                        f"{stats.plans_considered:,}",
                        f"{result.cost / base_result.cost:.3f}",
                    ]
                )
            rows.append(
                [
                    label,
                    "TD-CMD",
                    f"{baseline.stats.plans_considered:,}",
                    "1.000",
                ]
            )
        return render_table(
            "Ablation — TD-CMDP rules (space and plan-cost vs TD-CMD)",
            ["Query", "Variant", "#Plans", "Cost/TD-CMD"],
            rows,
            note=(
                "Rule 1 (ccmd-only k-way) drives the reduction on tree/dense; "
                "Rule 3 (local short-circuit) is decisive on hash-local stars "
                "(1 plan vs tens of thousands); plan costs stay at the optimum."
            ),
        )

    content = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("ablation_rules.txt", content)
    print()
    print(content)
    assert "no-rule1" in content


@pytest.mark.report
def test_threshold_sensitivity_report(benchmark):
    """How the Fig. 5 thresholds move TD-Auto's choices."""

    def build_report():
        queries = {
            "star-12": star_query(12),
            "tree-16": tree_query(16, random.Random(3)),
            "dense-16": dense_query(16, random.Random(3)),
        }
        rows = []
        for theta_d in (3, 5, 8):
            for theta_n in (15, 30):
                thresholds = AutoThresholds(
                    degree=theta_d, pattern_count=theta_n, dense_pattern_count=14
                )
                for name, query in queries.items():
                    choice = choose_algorithm(JoinGraph(query), thresholds)
                    rows.append([f"θd={theta_d},θn={theta_n}", name, choice])
        return render_table(
            "Ablation — TD-Auto decision-tree threshold sensitivity",
            ["Thresholds", "Query", "Chosen algorithm"],
            rows,
        )

    content = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("ablation_thresholds.txt", content)
    print()
    print(content)


def test_memoization_speedup(benchmark):
    """Algorithm 1's memo table: measure the win on a tree query."""
    query = tree_query(10, random.Random(5))
    builder = make_builder(query, seed=5)

    class NoMemo(TopDownEnumerator):
        algorithm_name = "TD-CMD-nomemo"

        def get_best_plan(self, bits, is_local):
            if not is_local:
                is_local = self.local_index.is_local(bits)
            return self.best_plan_gen(bits, is_local)

    import time

    start = time.perf_counter()
    memo_result = TopDownEnumerator(builder.join_graph, builder).optimize()
    memo_elapsed = time.perf_counter() - start

    builder2 = make_builder(query, seed=5)
    no_memo = NoMemo(builder2.join_graph, builder2, timeout_seconds=120)
    result = benchmark.pedantic(no_memo.optimize, rounds=1, iterations=1)
    assert result.cost == pytest.approx(memo_result.cost)
    assert result.elapsed_seconds > memo_elapsed  # memoization must win
