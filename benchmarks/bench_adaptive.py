#!/usr/bin/env python
"""Adaptive-repartitioning benchmark: skewed workload replay with gates.

Replays a skewed 80/20 LUBM workload (80% of queries drawn from two
hot, heavy-shipping shapes — L7 and L8 — 20% from cold star queries)
through the :meth:`Optimizer.observe_execution` feedback loop against
an :class:`AdaptiveCluster`, then compares steady-state shipping on the
adapted layout against the static hash-so layout.

Reported per run (``BENCH_adaptive.json``):

* the adaptation timeline (when each round fired, what it applied, the
  replication cost and layout epoch);
* post-warm-up ``total_tuples_shipped`` for the static layout vs the
  adaptive replay, and the steady-state per-query shipped counts on
  both layouts for every registered engine;
* a bit-identity section: every workload query's decoded result set on
  the adapted layout must equal the single-node reference on every
  engine (and the static layout's rows) — asserted in-run;
* with ``--micro``, the encoded-vs-reference hot-query matching
  micro-benchmark backing the ``DynamicPartitioning.partition``
  switch to :func:`~repro.partitioning.dynamic.hot_query_matches`.

The ``--baseline`` gate is machine-independent: shipped-tuple counts
are deterministic properties of (workload, layout), not of the runner.
It requires, per materialized engine (reference and columnar), a
post-warm-up shipping reduction of at least ``max(2.0, baseline
reduction / 2)`` — the adapted layout must ship at most half of what
the static layout ships, with slack for workload re-tuning.  The
pipelined engine's counts are reported but not gated (streaming global
joins ship per-chunk, a different unit).

Usage::

    PYTHONPATH=src python benchmarks/bench_adaptive.py --quick \
        --output BENCH_adaptive.json --baseline benchmarks/baseline_adaptive.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import PlanCache, StatisticsCatalog
from repro.core.session import OptimizeOptions, Optimizer
from repro.engine import ENGINES, Cluster, Executor, evaluate_reference
from repro.partitioning import AdaptiveCluster, HashSubjectObject
from repro.partitioning.dynamic import _instantiate, hot_query_matches
from repro.sparql.ast import BGPQuery
from repro.workloads import generate_lubm, lubm_query

#: the hot 80%: recurring shapes that ship heavily under static hash-so
HOT = ("L7", "L8")
#: the cold 20%: star queries that are already local
COLD = ("L1", "L2")
#: one workload round — 8 hot, 2 cold (the 80/20 skew)
ROUND = ("L7", "L8", "L7", "L8", "L7", "L8", "L7", "L8", "L1", "L2")

#: engines whose shipped-tuple counts the gate applies to (identical
#: materialized shuffles); pipelined ships per-chunk and is only reported
GATED_ENGINES = ("reference", "columnar")


def _workload(rounds: int):
    return [name for _ in range(rounds) for name in ROUND]


def _prepare():
    dataset = generate_lubm()
    names = sorted(set(HOT) | set(COLD))
    queries = {name: lubm_query(name) for name in names}
    statistics = {
        name: StatisticsCatalog.from_dataset(queries[name], dataset)
        for name in names
    }
    reference_rows = {
        name: evaluate_reference(queries[name], dataset.graph).rows
        for name in names
    }
    return dataset, queries, statistics, reference_rows


def _steady_state(cluster, session, queries, reference_rows):
    """Per-engine, per-query shipped counts on the session's current
    layout, with bit-identity asserted against the reference rows."""
    shipped = {engine: {} for engine in ENGINES}
    for name in sorted(queries):
        query = queries[name]
        plan = session.optimize(query).plan
        for engine in ENGINES:
            relation, metrics = Executor(cluster, engine=engine).execute(
                plan, query
            )
            assert relation.rows == reference_rows[name], (
                f"{name}: {engine} rows diverged from the single-node "
                f"reference on {cluster.partitioning.method_name}"
            )
            shipped[engine][name] = metrics.total_tuples_shipped
    return shipped


def bench_adaptive(
    cluster_size: int,
    rounds: int,
    warmup_rounds: int,
    adapt_every: int,
    replication_budget: float,
):
    """Replay the skewed workload through the feedback loop."""
    dataset, queries, statistics, reference_rows = _prepare()
    workload = _workload(rounds)
    warmup = warmup_rounds * len(ROUND)
    method = HashSubjectObject()

    # static layout: per-query shipped counts (deterministic, so one
    # execution per query prices the whole replay), plus bit-identity
    static_cluster = Cluster.build(dataset, method, cluster_size)
    static_session = Optimizer(OptimizeOptions(partitioning=method))
    for name in sorted(queries):
        static_session.prime_statistics(queries[name], statistics[name])
    static_shipped = _steady_state(
        static_cluster, static_session, queries, reference_rows
    )

    # adaptive replay: one session drives optimize -> execute -> observe
    session = Optimizer(
        OptimizeOptions(
            partitioning=method,
            adapt=True,
            adapt_every=adapt_every,
            replication_budget=replication_budget,
            plan_cache=PlanCache(),
        )
    )
    for name in sorted(queries):
        session.prime_statistics(queries[name], statistics[name])
    cluster = AdaptiveCluster.build(dataset, method, cluster_size)
    session.bind_cluster(cluster)

    timeline = []
    replay_shipped_after_warmup = 0
    started = time.perf_counter()
    for index, name in enumerate(workload):
        query = queries[name]
        result = session.optimize(query)
        relation, metrics = Executor(cluster).execute(result.plan, query)
        assert relation.rows == reference_rows[name], (
            f"{name}: rows diverged mid-replay at observation {index + 1}"
        )
        if index >= warmup:
            replay_shipped_after_warmup += metrics.total_tuples_shipped
        report = session.observe_execution(query, metrics)
        if report is not None:
            timeline.append(
                {
                    "observation": index + 1,
                    "applied": [p.label for p in report.applied],
                    "skipped": [p.label for p in report.skipped],
                    "migrations": report.migrations,
                    "replicated_triples": report.replicated_triples,
                    "epoch": report.epoch,
                }
            )
    replay_seconds = time.perf_counter() - started

    # steady state on the adapted layout, every engine, bit-identical
    adaptive_shipped = _steady_state(cluster, session, queries, reference_rows)

    # post-warm-up totals priced from the per-query steady-state counts
    tail = workload[warmup:]
    per_engine = {}
    for engine in ENGINES:
        before = sum(static_shipped[engine][name] for name in tail)
        after = sum(adaptive_shipped[engine][name] for name in tail)
        per_engine[engine] = {
            "shipped_before": before,
            "shipped_after": after,
            # None encodes "infinite" (nothing shipped after adaptation)
            "reduction": (before / after) if after > 0 else None,
        }

    return {
        "cluster_size": cluster_size,
        "rounds": rounds,
        "warmup_rounds": warmup_rounds,
        "adapt_every": adapt_every,
        "replication_budget": replication_budget,
        "workload_round": list(ROUND),
        "observations": len(workload),
        "replay_seconds": replay_seconds,
        "replay_shipped_after_warmup": replay_shipped_after_warmup,
        "timeline": timeline,
        "replicated_triples": cluster.replicated_triples,
        "replication_fraction": cluster.replicated_triples
        / len(dataset.graph),
        "layout_version": cluster.layout_version,
        "final_method": cluster.adapted_method().name,
        "static_shipped": static_shipped,
        "adaptive_shipped": adaptive_shipped,
        "per_engine": per_engine,
        "identical_results": True,  # the assertions above passed
    }


def _reference_matches(dataset, hot: BGPQuery):
    """The pre-switch matcher: term-tuple reference joins."""
    bindings = evaluate_reference(
        BGPQuery(hot.patterns, projection=None, name=hot.name), dataset.graph
    )
    matches = []
    for binding in bindings.bindings():
        anchor = min(binding.values(), key=str)
        grounded = []
        for tp in hot.patterns:
            t = _instantiate(tp, binding)
            if t is not None and t in dataset.graph:
                grounded.append(t)
        matches.append((anchor, grounded))
    return matches


def bench_micro_matching(repetitions: int):
    """Encoded vs reference hot-query matching (the satellite switch).

    `DynamicPartitioning.partition` used to ground hot queries through
    `evaluate_reference`; it now goes through `hot_query_matches` (the
    encoded/columnar path).  Results are asserted identical here; the
    speedup column is what the `dynamic.py` docstring cites.
    """
    dataset = generate_lubm()
    dataset.encoded_graph().predicate_ids()  # index build is one-time
    results = []
    for name in HOT:
        hot = lubm_query(name)

        def canonical(matches):
            return sorted(
                (str(anchor), sorted(map(str, triples)))
                for anchor, triples in matches
            )

        encoded = hot_query_matches(dataset, hot)
        reference = _reference_matches(dataset, hot)
        assert canonical(encoded) == canonical(reference), (
            f"{name}: encoded matching diverged from the reference path"
        )

        started = time.perf_counter()
        for _ in range(repetitions):
            hot_query_matches(dataset, hot)
        encoded_seconds = (time.perf_counter() - started) / repetitions

        started = time.perf_counter()
        for _ in range(repetitions):
            _reference_matches(dataset, hot)
        reference_seconds = (time.perf_counter() - started) / repetitions

        results.append(
            {
                "query": name,
                "matches": len(encoded),
                "encoded_seconds": encoded_seconds,
                "reference_seconds": reference_seconds,
                "speedup": (
                    reference_seconds / encoded_seconds
                    if encoded_seconds > 0
                    else 0.0
                ),
            }
        )
    return {"repetitions": repetitions, "queries": results}


def check_baseline(report: dict, baseline_path: Path) -> int:
    """Gate post-warm-up shipping reduction per materialized engine.

    ``reduction: null`` means the adapted layout shipped nothing — the
    strongest possible pass.  Otherwise the reduction must reach
    ``max(2.0, baseline reduction / 2)``; a missing baseline engine
    entry gates at the 2.0 floor.
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failed = False
    for engine in GATED_ENGINES:
        entry = report["adaptive"]["per_engine"][engine]
        base_entry = baseline["adaptive"]["per_engine"].get(engine, {})
        base_reduction = base_entry.get("reduction")
        floor = 2.0 if base_reduction is None else max(2.0, base_reduction / 2)
        reduction = entry["reduction"]
        shown = "inf" if reduction is None else f"{reduction:.2f}"
        print(
            f"baseline gate [{engine}]: shipped "
            f"{entry['shipped_before']} -> {entry['shipped_after']} "
            f"post-warm-up (reduction {shown}x, floor {floor:.2f}x)"
        )
        if reduction is not None and reduction < floor:
            print(
                f"FAIL: {engine} shipping reduction fell below the gate",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="fewer rounds (CI smoke)"
    )
    parser.add_argument("--cluster-size", type=int, default=4)
    parser.add_argument("--adapt-every", type=int, default=5)
    parser.add_argument("--replication-budget", type=float, default=0.3)
    parser.add_argument(
        "--micro",
        action="store_true",
        help="also run the encoded-vs-reference hot-matching micro bench",
    )
    parser.add_argument("--output", default="BENCH_adaptive.json")
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline JSON; exit non-zero if the post-warm-up "
        "shipping reduction drops below max(2.0, baseline / 2)",
    )
    args = parser.parse_args(argv)
    rounds = 4 if args.quick else 6
    warmup_rounds = 2

    report = {
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    report["adaptive"] = bench_adaptive(
        args.cluster_size,
        rounds,
        warmup_rounds,
        args.adapt_every,
        args.replication_budget,
    )
    adaptive = report["adaptive"]
    for event in adaptive["timeline"]:
        print(
            f"obs {event['observation']:>3d}: "
            f"applied={event['applied']} skipped={event['skipped']} "
            f"cost={event['replicated_triples']} epoch={event['epoch']}"
        )
    print(
        f"layout: {adaptive['final_method']} "
        f"({adaptive['replicated_triples']} replicated triples, "
        f"{adaptive['replication_fraction']:.1%} of the dataset)"
    )
    for engine in ENGINES:
        entry = adaptive["per_engine"][engine]
        reduction = entry["reduction"]
        shown = "inf" if reduction is None else f"{reduction:.2f}"
        gated = "gated" if engine in GATED_ENGINES else "reported"
        print(
            f"{engine:>10s}: shipped {entry['shipped_before']} -> "
            f"{entry['shipped_after']} post-warm-up "
            f"(reduction {shown}x, {gated})"
        )
    if args.micro:
        report["micro_matching"] = bench_micro_matching(
            3 if args.quick else 10
        )
        for entry in report["micro_matching"]["queries"]:
            print(
                f"micro {entry['query']}: encoded="
                f"{entry['encoded_seconds'] * 1000:7.2f}ms "
                f"reference={entry['reference_seconds'] * 1000:7.2f}ms "
                f"speedup={entry['speedup']:.2f}x "
                f"({entry['matches']} matches)"
            )

    Path(args.output).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    if args.baseline:
        return check_baseline(report, Path(args.baseline))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
