"""Sensitivity ablation: cluster size n in the cost model (Table I).

The broadcast transfer term scales with n while repartition does not,
so the broadcast/repartition preference must flip as the cluster grows.
This bench sweeps n and reports, for a fixed workload, the share of
broadcast joins in TD-CMD's optimal plans and their costs — a
sanity-check on the cost model's structure the paper takes as given.
"""

import random

import pytest

from repro.core import CostParameters, TopDownEnumerator
from repro.core.optimizer import make_builder
from repro.core.plans import JoinAlgorithm
from repro.experiments.tables import render_table, write_report
from repro.workloads.generators import tree_query

CLUSTER_SIZES = (2, 5, 10, 25, 50)


def _broadcast_share(cluster_size: int, queries: int = 8) -> tuple:
    broadcast = 0
    total = 0
    cost_sum = 0.0
    for seed in range(queries):
        query = tree_query(8, random.Random(seed))
        builder = make_builder(
            query, seed=seed, parameters=CostParameters(cluster_size=cluster_size)
        )
        result = TopDownEnumerator(builder.join_graph, builder).optimize()
        cost_sum += result.cost
        for join in result.plan.joins():
            total += 1
            if join.algorithm is JoinAlgorithm.BROADCAST:
                broadcast += 1
    return broadcast / max(total, 1), cost_sum / queries


@pytest.mark.parametrize("cluster_size", CLUSTER_SIZES)
def test_optimize_at_cluster_size(benchmark, cluster_size):
    query = tree_query(8, random.Random(1))
    builder = make_builder(
        query, seed=1, parameters=CostParameters(cluster_size=cluster_size)
    )
    result = benchmark.pedantic(
        lambda: TopDownEnumerator(builder.join_graph, builder).optimize(),
        rounds=1,
        iterations=1,
    )
    assert result.cost > 0


def test_broadcast_share_decreases_with_cluster_size():
    """More workers make broadcasting k−1 inputs proportionally costlier."""
    small_share, _ = _broadcast_share(2)
    large_share, _ = _broadcast_share(50)
    assert large_share <= small_share


@pytest.mark.report
def test_cluster_size_report(benchmark):
    def build_report():
        rows = []
        for n in CLUSTER_SIZES:
            share, avg_cost = _broadcast_share(n)
            rows.append([str(n), f"{share * 100:.0f}%", f"{avg_cost:.1f}"])
        return render_table(
            "Ablation — cost-model cluster size n (Table I sensitivity)",
            ["n", "Broadcast joins in optimal plans", "Avg plan cost"],
            rows,
            note=(
                "Broadcast transfer scales with n (β_B·(Σ−max)·n); repartition "
                "does not — the optimizer must shift toward repartition as n "
                "grows and plan costs must rise monotonically."
            ),
        )

    content = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("ablation_cluster_size.txt", content)
    print()
    print(content)
