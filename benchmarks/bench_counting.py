"""Enumeration micro-benchmarks: amortized cost per cmd (Lemma 3).

The paper's efficiency claim is a *linear* amortized cost per
enumerated cmd in |V_T|.  These benchmarks measure cmds/second at
growing sizes and check the closed forms at sizes beyond the unit-test
range.
"""

import pytest

from repro.core import JoinGraph
from repro.core.cmd import enumerate_cmds
from repro.core.counting import count_cmds, measured_t, t_chain, t_cycle
from repro.workloads.generators import chain_query, cycle_query, star_query


@pytest.mark.parametrize("size", [8, 16, 30])
def test_enumerate_cmds_chain(benchmark, size):
    join_graph = JoinGraph(chain_query(size))
    count = benchmark(lambda: sum(1 for _ in enumerate_cmds(join_graph, join_graph.full)))
    # D_cmd(chain-n) = n - 1 binary splits... plus larger multiway; must
    # at least cover the n-1 binary divisions
    assert count >= size - 1


@pytest.mark.parametrize("size", [8, 12])
def test_enumerate_cmds_star(benchmark, size):
    join_graph = JoinGraph(star_query(size))
    from repro.core.counting import bell_number

    count = benchmark(lambda: sum(1 for _ in enumerate_cmds(join_graph, join_graph.full)))
    assert count == bell_number(size) - 1


@pytest.mark.parametrize("size", [10, 12])
def test_measured_t_matches_formula_larger_sizes(benchmark, size):
    """Eq. 8/9 at sizes beyond the unit tests (slower, bench-only)."""
    chain_graph = JoinGraph(chain_query(size))
    measured = benchmark.pedantic(measured_t, args=(chain_graph,), rounds=1)
    assert measured == t_chain(size)
    assert measured_t(JoinGraph(cycle_query(size))) == t_cycle(size)


def test_amortized_cost_scales_linearly(benchmark):
    """cmds/sec at n=24 vs n=12 on chains: ratio bounded, not exponential."""
    import time

    def throughput(n):
        jg = JoinGraph(chain_query(n))
        start = time.perf_counter()
        count = sum(1 for _ in enumerate_cmds(jg, jg.full))
        elapsed = time.perf_counter() - start
        return elapsed / count  # seconds per cmd

    per_cmd_12 = throughput(12)
    per_cmd_24 = benchmark.pedantic(throughput, args=(24,), rounds=1)
    # Lemma 3: Θ(|V_T|) per cmd -> doubling n should scale per-cmd cost
    # roughly linearly (allow generous constant-factor noise)
    assert per_cmd_24 < per_cmd_12 * 10
