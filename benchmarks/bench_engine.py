"""Engine micro-benchmarks: scan, hash join, and distributed operators.

Not a paper table — substrate health checks, so regressions in the
simulated engine show up next to the optimizer benchmarks.
"""

import random

import pytest

from repro.core import StatisticsCatalog, optimize
from repro.engine import Cluster, Executor, evaluate_reference
from repro.engine.relations import Relation, hash_join, scan_pattern
from repro.partitioning import HashSubjectObject
from repro.rdf import Dataset, IRI, triple
from repro.rdf.terms import Variable
from repro.sparql.ast import TriplePattern
from repro.sparql.parser import parse_query


@pytest.fixture(scope="module")
def big_dataset():
    rng = random.Random(123)
    triples = []
    for _ in range(5000):
        a, b = rng.randrange(800), rng.randrange(800)
        triples.append(triple(f"http://e/n{a}", "http://e/knows", f"http://e/n{b}"))
    for i in range(800):
        triples.append(triple(f"http://e/n{i}", "http://e/worksFor", f"http://e/o{i % 20}"))
    return Dataset.from_triples(triples, name="bench")


def test_scan_throughput(benchmark, big_dataset):
    tp = TriplePattern(Variable("x"), IRI("http://e/knows"), Variable("y"))
    relation = benchmark(scan_pattern, big_dataset.graph, tp)
    assert len(relation) > 4000


def test_hash_join_throughput(benchmark, big_dataset):
    knows = scan_pattern(
        big_dataset.graph,
        TriplePattern(Variable("x"), IRI("http://e/knows"), Variable("y")),
    )
    works = scan_pattern(
        big_dataset.graph,
        TriplePattern(Variable("y"), IRI("http://e/worksFor"), Variable("o")),
    )
    result = benchmark(hash_join, knows, works)
    assert len(result) > 0


@pytest.mark.parametrize("workers", [2, 8])
def test_distributed_execution_throughput(benchmark, big_dataset, workers):
    query = parse_query(
        """
        SELECT * WHERE {
          ?x <http://e/knows> ?y .
          ?y <http://e/worksFor> ?o .
          ?x <http://e/worksFor> ?o .
        }
        """
    )
    method = HashSubjectObject()
    statistics = StatisticsCatalog.from_dataset(query, big_dataset)
    plan = optimize(query, statistics=statistics, partitioning=method).plan
    cluster = Cluster.build(big_dataset, method, cluster_size=workers)
    executor = Executor(cluster)

    relation, _ = benchmark.pedantic(
        lambda: executor.execute(plan, query), rounds=1, iterations=1
    )
    assert relation.rows == evaluate_reference(query, big_dataset.graph).rows


def test_partitioning_throughput(benchmark, big_dataset):
    partitioning = benchmark.pedantic(
        lambda: HashSubjectObject().partition(big_dataset, 8),
        rounds=1,
        iterations=1,
    )
    assert partitioning.cluster_size == 8
