#!/usr/bin/env python
"""Engine benchmarks: micro operators plus the columnar-vs-reference sweep.

Two layers:

* **pytest-benchmark micro tests** (run via ``pytest benchmarks/bench_engine.py``)
  — scan, hash join, and distributed operators on both engines; substrate
  health checks, not a paper table.
* **standalone sweep** (run as a script) — the 15-query benchmark sweep
  (L1–L10, U1–U5) executed end to end on every registered engine
  (reference, columnar, pipelined), written to ``BENCH_engine.json``:

  - per query: wall seconds per engine, the columnar speedup, and a
    bit-identical check of the decoded result sets (same rows, same
    schemas) across all engines;
  - a fault-injection section repeating part of the sweep with a seeded
    injector on every engine (results must still match);
  - the aggregate speedup (Σ reference wall / Σ columnar wall);
  - a ``streaming`` section for the pipelined engine: per-query
    first-row latency as a *fraction* of that query's own wall time,
    plus a hard assertion that ``peak_buffered_rows`` stays within the
    ``chunk_size × plan_depth`` bound.

  The ``--baseline`` gates are machine-independent: the columnar gate
  checks the *speedup ratio*, requiring ``aggregate >= max(3.0,
  baseline_aggregate / 2)`` (a property of int-tuple hashing + indexed
  scans vs. term-object hashing, not of the runner); the streaming gate
  checks the gate query's first-row *fraction of its own wall time*
  against ``min(0.95, max(0.5, baseline_fraction * 2))`` — again a
  ratio of two timings on the same machine.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick \
        --output BENCH_engine.json --baseline benchmarks/baseline_engine.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

try:
    import pytest
except ImportError:  # standalone sweep must run with the stdlib only
    class _MarkShim:
        @staticmethod
        def parametrize(*args, **kwargs):
            return lambda function: function

    class _PytestShim:
        mark = _MarkShim()

        @staticmethod
        def fixture(*args, **kwargs):
            return lambda function: function

    pytest = _PytestShim()  # type: ignore[assignment]

from repro.core import StatisticsCatalog, optimize
from repro.core.session import OptimizeOptions, Optimizer
from repro.engine import (
    Cluster,
    Executor,
    FaultInjector,
    RetryPolicy,
    evaluate_reference,
    hash_join_encoded,
    scan_pattern_encoded,
)
from repro.engine.cluster import Cluster as _Cluster
from repro.engine.relations import Relation, hash_join, scan_pattern
from repro.partitioning import HashSubjectObject
from repro.rdf import Dataset, IRI, triple
from repro.rdf.terms import Variable
from repro.sparql.ast import TriplePattern
from repro.sparql.parser import parse_query


@pytest.fixture(scope="module")
def big_dataset():
    rng = random.Random(123)
    triples = []
    for _ in range(5000):
        a, b = rng.randrange(800), rng.randrange(800)
        triples.append(triple(f"http://e/n{a}", "http://e/knows", f"http://e/n{b}"))
    for i in range(800):
        triples.append(triple(f"http://e/n{i}", "http://e/worksFor", f"http://e/o{i % 20}"))
    return Dataset.from_triples(triples, name="bench")


def test_scan_throughput(benchmark, big_dataset):
    tp = TriplePattern(Variable("x"), IRI("http://e/knows"), Variable("y"))
    relation = benchmark(scan_pattern, big_dataset.graph, tp)
    assert len(relation) > 4000


def test_encoded_scan_throughput(benchmark, big_dataset):
    tp = TriplePattern(Variable("x"), IRI("http://e/knows"), Variable("y"))
    encoded = big_dataset.encoded_graph()
    encoded.predicate_ids()  # index build is one-time, not per scan
    relation = benchmark(scan_pattern_encoded, encoded, tp)
    assert len(relation) > 4000


def test_hash_join_throughput(benchmark, big_dataset):
    knows = scan_pattern(
        big_dataset.graph,
        TriplePattern(Variable("x"), IRI("http://e/knows"), Variable("y")),
    )
    works = scan_pattern(
        big_dataset.graph,
        TriplePattern(Variable("y"), IRI("http://e/worksFor"), Variable("o")),
    )
    result = benchmark(hash_join, knows, works)
    assert len(result) > 0


def test_encoded_hash_join_throughput(benchmark, big_dataset):
    encoded = big_dataset.encoded_graph()
    knows = scan_pattern_encoded(
        encoded, TriplePattern(Variable("x"), IRI("http://e/knows"), Variable("y"))
    )
    works = scan_pattern_encoded(
        encoded, TriplePattern(Variable("y"), IRI("http://e/worksFor"), Variable("o"))
    )
    result = benchmark(hash_join_encoded, knows, works)
    assert len(result) > 0


@pytest.mark.parametrize("engine", ["reference", "columnar", "pipelined"])
@pytest.mark.parametrize("workers", [2, 8])
def test_distributed_execution_throughput(benchmark, big_dataset, workers, engine):
    query = parse_query(
        """
        SELECT * WHERE {
          ?x <http://e/knows> ?y .
          ?y <http://e/worksFor> ?o .
          ?x <http://e/worksFor> ?o .
        }
        """
    )
    method = HashSubjectObject()
    statistics = StatisticsCatalog.from_dataset(query, big_dataset)
    plan = optimize(query, statistics=statistics, partitioning=method).plan
    cluster = Cluster.build(big_dataset, method, cluster_size=workers)
    executor = Executor(cluster, engine=engine)
    executor.execute(plan, query)  # warm fragment/index caches

    relation, _ = benchmark.pedantic(
        lambda: executor.execute(plan, query), rounds=1, iterations=1
    )
    assert relation.rows == evaluate_reference(query, big_dataset.graph).rows


def test_partitioning_throughput(benchmark, big_dataset):
    partitioning = benchmark.pedantic(
        lambda: HashSubjectObject().partition(big_dataset, 8),
        rounds=1,
        iterations=1,
    )
    assert partitioning.cluster_size == 8


# ----------------------------------------------------------------------
# standalone sweep: every registered engine over the 15 benchmark queries
# ----------------------------------------------------------------------
from repro.engine import ENGINES  # noqa: E402  (the live registry view)


def _prepare_sweep(cluster_size: int):
    """Plans, shared partitionings, and per-engine executors per query.

    One partitioning per dataset (LUBM, UniProt) is shared across its
    queries and across both engines, so the sweep times execution, not
    partitioning; fragments/indexes are warmed before any timing.
    """
    from repro.experiments.benchmark_queries import ordered_benchmark_queries

    partitionings = {}
    prepared = []
    for bq in ordered_benchmark_queries():
        key = id(bq.dataset)
        if key not in partitionings:
            partitionings[key] = HashSubjectObject().partition(
                bq.dataset, cluster_size
            )
        partitioning = partitionings[key]
        session = Optimizer(
            OptimizeOptions(
                statistics=bq.statistics, partitioning=HashSubjectObject()
            )
        )
        plan = session.optimize(bq.query).plan
        executors = {
            engine: Executor(
                _Cluster(partitioning, bq.dataset.dictionary), engine=engine
            )
            for engine in ENGINES
        }
        prepared.append((bq, plan, executors))
    return prepared


def bench_sweep(cluster_size: int, repetitions: int):
    """Time all 15 queries on every engine; verify identical results."""
    prepared = _prepare_sweep(cluster_size)
    queries = []
    totals = dict.fromkeys(ENGINES, 0.0)
    for bq, plan, executors in prepared:
        walls = {}
        rows = {}
        for engine in ENGINES:
            executor = executors[engine]
            relation, _ = executor.execute(plan, bq.query)  # warm caches
            rows[engine] = relation
            started = time.perf_counter()
            for _ in range(repetitions):
                executor.execute(plan, bq.query)
            walls[engine] = (time.perf_counter() - started) / repetitions
            totals[engine] += walls[engine]
        reference = rows["reference"]
        for engine in ENGINES:
            assert rows[engine].variables == reference.variables, bq.name
            assert rows[engine].rows == reference.rows, (
                f"{bq.name}: decoded {engine} result diverged from reference"
            )
        queries.append(
            {
                "query": bq.name,
                "rows": len(reference),
                "reference_seconds": walls["reference"],
                "columnar_seconds": walls["columnar"],
                "pipelined_seconds": walls["pipelined"],
                "speedup": (
                    walls["reference"] / walls["columnar"]
                    if walls["columnar"] > 0
                    else 0.0
                ),
            }
        )
    return {
        "cluster_size": cluster_size,
        "repetitions": repetitions,
        "queries": queries,
        "reference_total_seconds": totals["reference"],
        "columnar_total_seconds": totals["columnar"],
        "pipelined_total_seconds": totals["pipelined"],
        "aggregate_speedup": (
            totals["reference"] / totals["columnar"]
            if totals["columnar"] > 0
            else 0.0
        ),
    }


def bench_faulted(cluster_size: int, fault_rate: float, fault_seed: int):
    """Re-run a slice of the sweep under fault injection on every engine.

    Fresh clusters per engine run (faults leave a cluster degraded); the
    same injector seed drives every engine, so the fault sequences are
    identical and the decoded results must still match.
    """
    from repro.experiments.benchmark_queries import ordered_benchmark_queries

    checked = []
    for bq in ordered_benchmark_queries()[::3]:  # every third query
        plan = optimize(
            bq.query, statistics=bq.statistics, partitioning=HashSubjectObject()
        ).plan
        rows = {}
        for engine in ENGINES:
            cluster = Cluster.build(
                bq.dataset, HashSubjectObject(), cluster_size=cluster_size
            )
            executor = Executor(
                cluster,
                fault_injector=FaultInjector(fault_rate, seed=fault_seed),
                retry_policy=RetryPolicy(max_retries=64),
                engine=engine,
            )
            relation, metrics = executor.execute(plan, bq.query)
            rows[engine] = relation
            assert metrics.fault_injection_enabled
        for engine in ENGINES:
            assert rows[engine].rows == rows["reference"].rows, (
                f"{bq.name}: {engine} diverged under fault injection"
            )
        checked.append({"query": bq.name, "rows": len(rows["reference"])})
    return {
        "fault_rate": fault_rate,
        "fault_seed": fault_seed,
        "queries_checked": checked,
        "identical_results": True,
    }


def bench_streaming(cluster_size: int, chunk_size: int = 256):
    """Streaming metrics for the pipelined engine over the sweep.

    Two properties, both machine-independent:

    * ``peak_buffered_rows <= chunk_size × plan_depth(plan)`` — the
      bounded-buffering construction; asserted per query right here;
    * first-row latency, reported as a *fraction of the same run's
      wall time*. The gate query is the one with the largest result
      (the case streaming exists for); its fraction is what the
      committed baseline gates.
    """
    from repro.engine import PipelinedEngine, plan_depth

    prepared = _prepare_sweep(cluster_size)
    queries = []
    for bq, plan, executors in prepared:
        executor = Executor(
            executors["pipelined"].cluster,
            engine=PipelinedEngine(chunk_size=chunk_size),
        )
        executor.execute(plan, bq.query)  # warm fragment/index caches
        relation, metrics = executor.execute(plan, bq.query)
        bound = chunk_size * plan_depth(plan)
        assert metrics.peak_buffered_rows <= bound, (
            f"{bq.name}: peak buffered rows {metrics.peak_buffered_rows} "
            f"exceed the chunk_size × depth bound {bound}"
        )
        wall = metrics.wall_seconds
        queries.append(
            {
                "query": bq.name,
                "rows": len(relation),
                "wall_seconds": wall,
                "first_row_seconds": metrics.first_row_seconds,
                "first_row_fraction": (
                    metrics.first_row_seconds / wall if wall > 0 else 0.0
                ),
                "peak_buffered_rows": metrics.peak_buffered_rows,
                "buffer_bound": bound,
            }
        )
    gate = max(queries, key=lambda entry: entry["rows"])
    return {
        "chunk_size": chunk_size,
        "queries": queries,
        "buffer_bound_satisfied": True,  # the assertions above passed
        "gate_query": gate["query"],
        "gate_first_row_fraction": gate["first_row_fraction"],
    }


def check_baseline(report: dict, baseline_path: Path) -> int:
    """Gates against the committed baseline (both machine-independent):

    * columnar aggregate speedup >= max(3.0, baseline / 2);
    * pipelined first-row fraction on the gate query <=
      min(0.95, max(0.5, baseline fraction × 2)).
    """
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_speedup = baseline["sweep"]["aggregate_speedup"]
    current = report["sweep"]["aggregate_speedup"]
    floor = max(3.0, base_speedup / 2.0)
    print(
        f"baseline gate: columnar aggregate speedup {current:.2f}x "
        f"(baseline {base_speedup:.2f}x, floor {floor:.2f}x)"
    )
    failed = False
    if current < floor:
        print(
            "FAIL: columnar-engine speedup regressed below the gate floor",
            file=sys.stderr,
        )
        failed = True
    base_streaming = baseline.get("streaming")
    if base_streaming is not None:
        fraction = report["streaming"]["gate_first_row_fraction"]
        base_fraction = base_streaming["gate_first_row_fraction"]
        ceiling = min(0.95, max(0.5, base_fraction * 2.0))
        print(
            f"streaming gate: first-row fraction "
            f"{fraction:.3f} of wall on "
            f"{report['streaming']['gate_query']} "
            f"(baseline {base_fraction:.3f}, ceiling {ceiling:.3f})"
        )
        if fraction > ceiling:
            print(
                "FAIL: pipelined first-row latency regressed above the "
                "gate ceiling",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="fewer repetitions (CI smoke)"
    )
    parser.add_argument("--cluster-size", type=int, default=4)
    parser.add_argument("--fault-rate", type=float, default=0.2)
    parser.add_argument("--fault-seed", type=int, default=2017)
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline JSON; exit non-zero if the aggregate "
        "speedup drops below max(3.0, baseline / 2)",
    )
    args = parser.parse_args(argv)
    repetitions = 3 if args.quick else 7

    report = {
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    report["sweep"] = bench_sweep(args.cluster_size, repetitions)
    for entry in report["sweep"]["queries"]:
        print(
            f"{entry['query']:>4s}: ref={entry['reference_seconds'] * 1000:7.2f}ms "
            f"col={entry['columnar_seconds'] * 1000:7.2f}ms "
            f"speedup={entry['speedup']:5.2f}x rows={entry['rows']}"
        )
    print(
        f"aggregate: ref={report['sweep']['reference_total_seconds'] * 1000:.1f}ms "
        f"col={report['sweep']['columnar_total_seconds'] * 1000:.1f}ms "
        f"speedup={report['sweep']['aggregate_speedup']:.2f}x"
    )
    report["faulted"] = bench_faulted(
        args.cluster_size, args.fault_rate, args.fault_seed
    )
    print(
        f"faulted (rate={args.fault_rate}): "
        f"{len(report['faulted']['queries_checked'])} queries, "
        f"results identical across engines"
    )
    report["streaming"] = bench_streaming(args.cluster_size)
    for entry in report["streaming"]["queries"]:
        print(
            f"{entry['query']:>4s}: first_row="
            f"{entry['first_row_seconds'] * 1000:6.2f}ms "
            f"({entry['first_row_fraction']:5.1%} of wall) "
            f"buffered={entry['peak_buffered_rows']}/{entry['buffer_bound']}"
        )
    print(
        f"streaming: buffer bound satisfied on all queries; gate query "
        f"{report['streaming']['gate_query']} first-row fraction "
        f"{report['streaming']['gate_first_row_fraction']:.3f}"
    )

    Path(args.output).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    if args.baseline:
        return check_baseline(report, Path(args.baseline))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
