"""Fault tolerance — which plan shape pays more for recovery?

The flat-vs-bushy ablation (`bench_flat_vs_bushy`) shows how MapReduce
job *startup* overhead favors MSC's flat plans.  Failures are the other
per-job overhead Hadoop imposes: a fault costs a retry (or a worker
re-route) on the critical path of its wave, so deep TD-CMD plans with
many sequential waves expose more fault sites on the critical path,
while flat MSC plans concentrate more data per job, making each
individual retry more expensive.  This bench quantifies the trade-off
both ways:

* **measured** — execute both plans on really-partitioned LUBM data
  under seeded fault injection, averaging recovery cost over several
  injector seeds at each fault rate;
* **analytic** — the MapReduce simulator's closed-form expected
  makespan (``data_cost × E[attempts] + E[backoff]`` per job).
"""

import pytest

from repro.baselines import MSCOptimizer
from repro.core import LocalQueryIndex, StatisticsCatalog, TopDownEnumerator
from repro.core.optimizer import make_builder
from repro.engine import (
    Cluster,
    Executor,
    FaultInjector,
    MapReduceSimulator,
    RetryPolicy,
    compile_stages,
    evaluate_reference,
)
from repro.experiments.tables import render_table, write_report
from repro.partitioning import HashSubjectObject
from repro.workloads import generate_lubm, lubm_query

QUERIES = ["L7", "L9"]
FAULT_RATES = [0.0, 0.05, 0.1, 0.2]
TRIAL_SEEDS = list(range(5))
CLUSTER_SIZE = 5
POLICY = RetryPolicy(max_retries=16)


@pytest.fixture(scope="module")
def workload():
    dataset = generate_lubm()
    method = HashSubjectObject()
    plans = {}
    for name in QUERIES:
        query = lubm_query(name)
        statistics = StatisticsCatalog.from_dataset(query, dataset)
        builder = make_builder(query, statistics=statistics)
        index = LocalQueryIndex(builder.join_graph, method)
        bushy = TopDownEnumerator(builder.join_graph, builder, index).optimize().plan
        flat = (
            MSCOptimizer(builder.join_graph, builder, index, timeout_seconds=60)
            .optimize()
            .plan
        )
        plans[name] = (query, flat, bushy, builder.parameters)
    return dataset, method, plans


def _run(dataset, method, query, plan, rate, seed):
    cluster = Cluster.build(dataset, method, cluster_size=CLUSTER_SIZE)
    injector = FaultInjector(rate, seed=seed) if rate > 0 else None
    executor = Executor(cluster, fault_injector=injector, retry_policy=POLICY)
    relation, metrics = executor.execute(plan, query)
    return relation, metrics


@pytest.mark.parametrize("name", QUERIES)
def test_recovered_execution_is_correct(benchmark, workload, name):
    """Executing under faults stays exact; benchmark the recovered run."""
    dataset, method, plans = workload
    query, flat, bushy, _ = plans[name]
    reference = evaluate_reference(query, dataset.graph)
    relation, metrics = benchmark.pedantic(
        _run,
        args=(dataset, method, query, bushy, 0.2, 1),
        rounds=1,
        iterations=1,
    )
    assert relation.rows == reference.rows
    assert metrics.total_recovery_cost >= 0.0


@pytest.mark.report
def test_fault_tolerance_report(benchmark, workload):
    def build_report():
        dataset, method, plans = workload
        rows = []
        for name in QUERIES:
            query, flat, bushy, parameters = plans[name]
            for shape, plan in (("flat(MSC)", flat), ("bushy(TD-CMD)", bushy)):
                waves = compile_stages(plan).wave_count
                for rate in FAULT_RATES:
                    costs, recoveries, retries = [], [], []
                    for seed in TRIAL_SEEDS:
                        _, metrics = _run(dataset, method, query, plan, rate, seed)
                        costs.append(metrics.critical_path_cost)
                        recoveries.append(metrics.total_recovery_cost)
                        retries.append(metrics.total_retries)
                    expected = MapReduceSimulator(
                        parameters, fault_rate=rate, retry_policy=POLICY
                    ).makespan(compile_stages(plan))
                    rows.append(
                        [
                            name,
                            shape,
                            str(waves),
                            f"{rate:.2f}",
                            f"{sum(costs) / len(costs):.1f}",
                            f"{sum(recoveries) / len(recoveries):.1f}",
                            f"{sum(retries) / len(retries):.1f}",
                            f"{expected:.1f}",
                        ]
                    )
        return render_table(
            "Fault tolerance — recovery overhead per plan shape "
            f"(mean over {len(TRIAL_SEEDS)} injector seeds, "
            f"{CLUSTER_SIZE} workers)",
            [
                "Query",
                "Shape",
                "Waves",
                "FaultRate",
                "SimTime",
                "RecoveryCost",
                "Retries",
                "E[makespan]",
            ],
            rows,
            note=(
                "SimTime/RecoveryCost/Retries are measured on the executor "
                "under seeded injection (fail-stop + transient + straggler "
                "mix); E[makespan] is the MapReduce simulator's closed-form "
                "expectation. Deeper bushy plans expose more fault sites on "
                "the critical path; flat plans pay more per retry."
            ),
        )

    content = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("fault_tolerance.txt", content)
    print()
    print(content)
    assert "RecoveryCost" in content
