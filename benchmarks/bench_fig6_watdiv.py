"""Figure 6 — WatDiv-like stress test (optimization time + cost CDF).

The report runs a scaled workload (default 24 templates × 2 instances;
the paper used 124 × 100 — raise via the report arguments or run the
module directly) and writes results/fig6_watdiv.txt.
"""

import random

import pytest

from repro.experiments import fig6
from repro.experiments.harness import run_algorithm
from repro.workloads.watdiv import WatDivGenerator, instantiate


@pytest.fixture(scope="module")
def sample_instance():
    template = WatDivGenerator(seed=5).templates(10)[4]
    return instantiate(template, 0, random.Random(3))


@pytest.mark.parametrize("algorithm", ["TD-CMD", "TD-CMDP", "TD-Auto", "DP-Bushy"])
def test_watdiv_instance_optimization(benchmark, sample_instance, algorithm):
    query, statistics = sample_instance

    def run_once():
        return run_algorithm(algorithm, query, statistics=statistics)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    if result.timed_out:
        pytest.skip(f"{algorithm} timed out")
    assert result.cost is not None


@pytest.mark.report
def test_fig6_report(benchmark):
    """Regenerate Figure 6 series and write results/fig6_watdiv.txt."""
    content = benchmark.pedantic(fig6.report, rounds=1, iterations=1)
    print()
    print(content)
    assert "Figure 6a" in content and "Figure 6b" in content
