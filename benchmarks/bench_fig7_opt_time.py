"""Figure 7 — optimization time vs. query size, per shape.

The report sweeps sizes 2–14 by default (paper: 2–30 with a 600 s Java
cutoff; pure Python needs a smaller default sweep — set sizes via
``fig7.report(sizes=range(2, 31, 2))`` and a large ``REPRO_TIMEOUT`` to
push further).  Micro-benchmarks pin one mid-size query per shape.
"""

import random

import pytest

from repro.core.join_graph import QueryShape
from repro.experiments import fig7
from repro.experiments.harness import FIGURE_SET, run_algorithm
from repro.workloads.generators import generate_query

SHAPES = [QueryShape.CHAIN, QueryShape.CYCLE, QueryShape.TREE, QueryShape.DENSE]


@pytest.mark.parametrize("algorithm", FIGURE_SET)
@pytest.mark.parametrize("shape", SHAPES)
def test_optimization_time_size10(benchmark, algorithm, shape):
    query = generate_query(shape, 10, random.Random(23))

    def run_once():
        return run_algorithm(algorithm, query, seed=23)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    if result.timed_out:
        pytest.skip(f"{algorithm} timed out on {shape.value}-10")
    assert result.cost is not None


@pytest.mark.report
def test_fig7_report(benchmark):
    """Regenerate Figure 7 series and write results/fig7_optimization_time.txt."""
    content = benchmark.pedantic(fig7.report, rounds=1, iterations=1)
    print()
    print(content)
    for shape in ("chain", "cycle", "tree", "dense"):
        assert f"({shape})" in content
