"""Figure 8 — cumulative distribution of plan cost normalized to TD-CMD."""

import random

import pytest

from repro.core.join_graph import QueryShape
from repro.experiments import fig8
from repro.experiments.harness import run_algorithm
from repro.workloads.generators import generate_query


def test_heuristics_near_optimal_on_trees():
    """Fig. 8c shape: TD-CMDP/TD-Auto at ratio ~1 on tree queries."""
    for seed in range(3):
        query = generate_query(QueryShape.TREE, 8, random.Random(seed))
        reference = run_algorithm("TD-CMD", query, seed=seed)
        for algorithm in ("TD-CMDP", "TD-Auto"):
            result = run_algorithm(algorithm, query, seed=seed)
            assert result.cost <= reference.cost * 2.0


@pytest.mark.parametrize("shape", [QueryShape.TREE, QueryShape.DENSE])
def test_ratio_computation(benchmark, shape):
    query = generate_query(shape, 8, random.Random(5))

    def ratios():
        reference = run_algorithm("TD-CMD", query, seed=5)
        result = run_algorithm("TD-CMDP", query, seed=5)
        return result.cost / reference.cost

    ratio = benchmark.pedantic(ratios, rounds=1, iterations=1)
    assert ratio >= 1.0 - 1e-9


@pytest.mark.report
def test_fig8_report(benchmark):
    """Regenerate Figure 8 series and write results/fig8_cost_cdf.txt."""
    content = benchmark.pedantic(fig8.report, rounds=1, iterations=1)
    print()
    print(content)
    for shape in ("chain", "cycle", "tree", "dense"):
        assert f"({shape})" in content
