"""Ablation — "the flattest plan is not always the best plan".

Section IV of the paper argues against MSC's flattest-plan heuristic;
MSC's own motivation is MapReduce job startup overhead.  This bench
makes the trade-off quantitative: it compiles MSC's flat plan and
TD-CMD's cost-optimal bushy plan onto MapReduce stages and sweeps the
per-job startup cost, reporting the crossover point per query.
"""

import random

import pytest

from repro.baselines import MSCOptimizer
from repro.core import LocalQueryIndex, TopDownEnumerator
from repro.core.optimizer import make_builder
from repro.engine.mapreduce import (
    MapReduceSimulator,
    compile_stages,
    overhead_crossover_analysis,
)
from repro.experiments.tables import render_table, write_report
from repro.partitioning import HashSubjectObject
from repro.workloads.generators import cycle_query, tree_query

INSTANCES = {
    "tree-8": (tree_query, 8, 1),
    "tree-9": (tree_query, 9, 4),
    "cycle-7": (cycle_query, 7, 2),
    "cycle-9": (cycle_query, 9, 2),
}


def _plans(label):
    build, size, seed = INSTANCES[label]
    query = build(size, random.Random(seed)) if build is tree_query else build(size)
    builder = make_builder(query, seed=seed)
    index = LocalQueryIndex(builder.join_graph, HashSubjectObject())
    bushy = TopDownEnumerator(builder.join_graph, builder, index).optimize().plan
    flat = (
        MSCOptimizer(builder.join_graph, builder, index, timeout_seconds=60)
        .optimize()
        .plan
    )
    return builder, flat, bushy


@pytest.mark.parametrize("label", list(INSTANCES))
def test_stage_compilation(benchmark, label):
    builder, flat, bushy = _plans(label)
    schedule = benchmark(compile_stages, bushy)
    assert schedule.wave_count >= 1


@pytest.mark.report
def test_flat_vs_bushy_report(benchmark):
    def build_report():
        rows = []
        for label in INSTANCES:
            builder, flat, bushy = _plans(label)
            flat_schedule = compile_stages(flat)
            bushy_schedule = compile_stages(bushy)
            analysis = overhead_crossover_analysis(flat, bushy, builder.parameters)
            zero = MapReduceSimulator(builder.parameters, 0.0)
            rows.append(
                [
                    label,
                    str(bushy_schedule.wave_count),
                    str(flat_schedule.wave_count),
                    f"{zero.makespan(bushy_schedule):.1f}",
                    f"{zero.makespan(flat_schedule):.1f}",
                    analysis.describe(),
                ]
            )
        return render_table(
            "Ablation — flat (MSC) vs bushy (TD-CMD) under MapReduce job overhead",
            [
                "Query",
                "BushyWaves",
                "FlatWaves",
                "BushyData",
                "FlatData",
                "Crossover overhead",
            ],
            rows,
            note=(
                "Crossover = per-job startup cost above which the flat plan "
                "wins; with cheap jobs the cost-optimal bushy plan wins — "
                "'the flattest plan is not always the best plan'."
            ),
        )

    content = benchmark.pedantic(build_report, rounds=1, iterations=1)
    write_report("ablation_flat_vs_bushy.txt", content)
    print()
    print(content)
    assert "Crossover" in content
