#!/usr/bin/env python
"""Throughput benchmark: batch optimization, parallel search, plan cache.

Three sections, written to ``BENCH_parallel_opt.json``:

* **batch** — a Table IV-style workload of random chain/cycle/tree
  queries (10–40 patterns) pushed through :func:`optimize_many` with 1
  worker vs. N workers; reports wall-clock throughput and the speedup.
* **intra_query** — one larger query optimized serially vs. with the
  root division space split across workers; asserts the two costs are
  bit-identical (the correctness contract of the parallel search).
* **cache** — the same workload run cold and then repeated against a
  warm :class:`~repro.core.plan_cache.PlanCache`; reports mean cold
  optimization latency, mean cache-hit latency, and their ratio.

The ``--baseline`` gate compares the *cache speedup ratio* (cold mean /
hit mean) against a committed baseline and fails if the cached path has
regressed more than 2× relative to it.  The ratio is a property of the
code (hash + JSON canonicalization vs. full enumeration), not of the
machine, so the gate is stable across runner hardware; absolute times
and ``cpu_count`` are recorded for context only.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_opt.py --quick \
        --output BENCH_parallel_opt.json \
        --baseline benchmarks/baseline_parallel_opt.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import optimize, optimize_many, optimize_query_parallel
from repro.core.cardinality import StatisticsCatalog
from repro.core.join_graph import QueryShape
from repro.core.plan_cache import PlanCache
from repro.workloads.generators import generate_query

#: (shape, sizes) sweep per mode; star is excluded — on a subject-star
#: every pattern subset is connected, so enumeration is exponential in
#: the query size and drowns the throughput signal
WORKLOADS = {
    "full": [
        (QueryShape.CHAIN, (10, 20, 30, 40)),
        (QueryShape.CYCLE, (10, 20, 30, 40)),
        (QueryShape.TREE, (10, 12, 14, 16)),
    ],
    "quick": [
        (QueryShape.CHAIN, (10, 14)),
        (QueryShape.CYCLE, (10, 14)),
        (QueryShape.TREE, (10, 12)),
    ],
}
ALGORITHM = "td-cmdp"


def build_workload(mode: str, seed: int = 2017):
    """The benchmark's query/statistics pairs, deterministically seeded."""
    rng = random.Random(seed)
    items = []
    for shape, sizes in WORKLOADS[mode]:
        for size in sizes:
            query = generate_query(shape, size, random.Random(rng.randrange(2**31)))
            statistics = StatisticsCatalog.from_random(
                query, random.Random(rng.randrange(2**31))
            )
            items.append((query, statistics))
    return items


def bench_batch(items, jobs: int):
    """optimize_many with 1 worker vs. *jobs* workers."""
    started = time.perf_counter()
    serial = optimize_many(items, algorithm=ALGORITHM, jobs=1)
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    pooled = optimize_many(items, algorithm=ALGORITHM, jobs=jobs)
    pooled_wall = time.perf_counter() - started

    for a, b in zip(serial, pooled):
        assert a.cost == b.cost, "batch parallel result diverged from serial"
    return {
        "queries": len(items),
        "jobs": jobs,
        "serial_wall_seconds": serial_wall,
        "pooled_wall_seconds": pooled_wall,
        "speedup": serial_wall / pooled_wall if pooled_wall > 0 else 0.0,
        "serial_throughput_qps": len(items) / serial_wall,
        "pooled_throughput_qps": len(items) / pooled_wall,
    }


def bench_intra_query(mode: str, jobs: int):
    """Serial vs. root-sliced parallel search on one larger query."""
    size = 16 if mode == "full" else 12
    query = generate_query(QueryShape.TREE, size, random.Random(7))
    serial = optimize(query, algorithm=ALGORITHM, seed=7)
    parallel = optimize_query_parallel(query, algorithm=ALGORITHM, jobs=jobs, seed=7)
    assert parallel.cost == serial.cost, "parallel search cost diverged from serial"
    return {
        "query": query.name,
        "patterns": len(query),
        "jobs": parallel.stats.workers,
        "serial_seconds": serial.elapsed_seconds,
        "parallel_seconds": parallel.elapsed_seconds,
        "wall_speedup": (
            serial.elapsed_seconds / parallel.elapsed_seconds
            if parallel.elapsed_seconds > 0
            else 0.0
        ),
        "worker_speedup": parallel.stats.speedup,
        "per_worker_subqueries": parallel.stats.per_worker_subqueries,
        "cost": serial.cost,
        "plans_considered": serial.stats.plans_considered,
    }


def bench_cache(items):
    """Cold enumeration vs. warm cache hits over the same workload."""
    cache = PlanCache(capacity=len(items) + 8)
    cold_times = []
    for query, statistics in items:
        started = time.perf_counter()
        optimize(
            query, algorithm=ALGORITHM, statistics=statistics, plan_cache=cache
        )
        cold_times.append(time.perf_counter() - started)
    hit_times = []
    for query, statistics in items:
        started = time.perf_counter()
        result = optimize(
            query, algorithm=ALGORITHM, statistics=statistics, plan_cache=cache
        )
        hit_times.append(time.perf_counter() - started)
        assert result.algorithm.endswith("+cache"), "expected a cache hit"
    cold_mean = sum(cold_times) / len(cold_times)
    hit_mean = sum(hit_times) / len(hit_times)
    return {
        "queries": len(items),
        "cold_mean_seconds": cold_mean,
        "hit_mean_seconds": hit_mean,
        "hit_speedup": cold_mean / hit_mean if hit_mean > 0 else 0.0,
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
    }


def check_baseline(report: dict, baseline_path: Path) -> int:
    """Gate: the cache speedup ratio must not regress >2x vs. baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_speedup = baseline["cache"]["hit_speedup"]
    current_speedup = report["cache"]["hit_speedup"]
    floor = base_speedup / 2.0
    print(
        f"baseline gate: cache hit speedup {current_speedup:.1f}x "
        f"(baseline {base_speedup:.1f}x, floor {floor:.1f}x)"
    )
    if current_speedup < floor:
        print(
            "FAIL: cached-path latency regressed more than 2x relative "
            "to the committed baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI workload")
    parser.add_argument("--jobs", type=int, default=4, help="pool size (default 4)")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--output", default="BENCH_parallel_opt.json")
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline JSON; exit non-zero if the cache-hit "
        "speedup drops below half the baseline's",
    )
    args = parser.parse_args(argv)
    mode = "quick" if args.quick else "full"

    items = build_workload(mode, seed=args.seed)
    print(f"mode={mode} queries={len(items)} jobs={args.jobs}")

    report = {
        "mode": mode,
        "algorithm": ALGORITHM,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "affinity_cpus": (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count()
        ),
        "python": sys.version.split()[0],
    }
    report["batch"] = bench_batch(items, args.jobs)
    print(
        f"batch: {report['batch']['serial_wall_seconds']:.2f}s serial vs "
        f"{report['batch']['pooled_wall_seconds']:.2f}s x{args.jobs} "
        f"(speedup {report['batch']['speedup']:.2f})"
    )
    report["intra_query"] = bench_intra_query(mode, args.jobs)
    print(
        f"intra-query: {report['intra_query']['serial_seconds']:.2f}s serial vs "
        f"{report['intra_query']['parallel_seconds']:.2f}s parallel "
        f"(cost identical: {report['intra_query']['cost']:.2f})"
    )
    report["cache"] = bench_cache(items)
    print(
        f"cache: cold {report['cache']['cold_mean_seconds'] * 1000:.1f}ms vs "
        f"hit {report['cache']['hit_mean_seconds'] * 1000:.2f}ms "
        f"({report['cache']['hit_speedup']:.0f}x)"
    )

    Path(args.output).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    if args.baseline:
        return check_baseline(report, Path(args.baseline))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
