#!/usr/bin/env python
"""Throughput benchmark: batch optimization, parallel search, plan cache.

Four sections, written to ``BENCH_parallel_opt.json``:

* **batch** — a Table IV-style workload of random chain/cycle/tree
  queries (10–40 patterns) pushed through :func:`optimize_many` with 1
  worker vs. N workers; reports wall-clock throughput and the speedup.
* **intra_query** — one larger query optimized serially vs. with the
  root division space split across workers; asserts the two costs are
  bit-identical (the correctness contract of the parallel search).
* **cache** — the same workload run cold and then repeated against a
  warm :class:`~repro.core.plan_cache.PlanCache`; reports mean cold
  optimization latency, mean cache-hit latency, and their ratio.
* **scaling** — the Table-7-style dense section (also emitted on its
  own to ``BENCH_parallel_scaling.json``): 30+-pattern chain/cycle
  queries plus dense/tree queries, memo-sharded across workers ∈
  {1, 2, 4, 8} and root-sliced at 4.  The reported numbers are
  *work units* (DP subqueries solved per worker), not wall time:
  ``scaling_efficiency`` = serial subqueries / max per-worker
  subqueries (the critical-path shrinkage an ideal machine would see),
  and ``work_ratio_vs_root_slice`` = total root-slice work / total
  memo-shard work (the redundancy the sharding removes).  Both are
  deterministic properties of the scheduler, so the gates hold on any
  runner regardless of core count or oversubscription.

The ``--baseline`` gate compares the *cache speedup ratio* (cold mean /
hit mean) against a committed baseline and fails if the cached path has
regressed more than 2× relative to it; ``--scaling-baseline`` gates the
scaling section — every query must reach a 4-worker scaling efficiency
of ≥ 2.5× over serial and beat root-slicing by ≥ 1.3× in total work,
and must not regress below half its committed baseline efficiency.
The ratios are properties of the code, not of the machine, so the
gates are stable across runner hardware; absolute times and
``cpu_count`` are recorded for context only.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_opt.py --quick \
        --output BENCH_parallel_opt.json \
        --baseline benchmarks/baseline_parallel_opt.json \
        --scaling-baseline benchmarks/baseline_parallel_scaling.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import VerificationContext, verify_result
from repro.core import optimize, optimize_many, optimize_query_parallel
from repro.core.cardinality import StatisticsCatalog
from repro.core.join_graph import QueryShape
from repro.core.plan_cache import PlanCache
from repro.workloads.generators import generate_query

#: (shape, sizes) sweep per mode; star is excluded — on a subject-star
#: every pattern subset is connected, so enumeration is exponential in
#: the query size and drowns the throughput signal
WORKLOADS = {
    "full": [
        (QueryShape.CHAIN, (10, 20, 30, 40)),
        (QueryShape.CYCLE, (10, 20, 30, 40)),
        (QueryShape.TREE, (10, 12, 14, 16)),
    ],
    "quick": [
        (QueryShape.CHAIN, (10, 14)),
        (QueryShape.CYCLE, (10, 14)),
        (QueryShape.TREE, (10, 12)),
    ],
}
ALGORITHM = "td-cmdp"


def build_workload(mode: str, seed: int = 2017):
    """The benchmark's query/statistics pairs, deterministically seeded."""
    rng = random.Random(seed)
    items = []
    for shape, sizes in WORKLOADS[mode]:
        for size in sizes:
            query = generate_query(shape, size, random.Random(rng.randrange(2**31)))
            statistics = StatisticsCatalog.from_random(
                query, random.Random(rng.randrange(2**31))
            )
            items.append((query, statistics))
    return items


def bench_batch(items, jobs: int):
    """optimize_many with 1 worker vs. *jobs* workers."""
    started = time.perf_counter()
    serial = optimize_many(items, algorithm=ALGORITHM, jobs=1)
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    pooled = optimize_many(items, algorithm=ALGORITHM, jobs=jobs)
    pooled_wall = time.perf_counter() - started

    for a, b in zip(serial, pooled):
        assert a.cost == b.cost, "batch parallel result diverged from serial"
    return {
        "queries": len(items),
        "jobs": jobs,
        "serial_wall_seconds": serial_wall,
        "pooled_wall_seconds": pooled_wall,
        "speedup": serial_wall / pooled_wall if pooled_wall > 0 else 0.0,
        "serial_throughput_qps": len(items) / serial_wall,
        "pooled_throughput_qps": len(items) / pooled_wall,
    }


def bench_intra_query(mode: str, jobs: int):
    """Serial vs. root-sliced parallel search on one larger query."""
    size = 16 if mode == "full" else 12
    query = generate_query(QueryShape.TREE, size, random.Random(7))
    serial = optimize(query, algorithm=ALGORITHM, seed=7)
    parallel = optimize_query_parallel(query, algorithm=ALGORITHM, jobs=jobs, seed=7)
    assert parallel.cost == serial.cost, "parallel search cost diverged from serial"
    return {
        "query": query.name,
        "patterns": len(query),
        "jobs": parallel.stats.workers,
        "serial_seconds": serial.elapsed_seconds,
        "parallel_seconds": parallel.elapsed_seconds,
        "wall_speedup": (
            serial.elapsed_seconds / parallel.elapsed_seconds
            if parallel.elapsed_seconds > 0
            else 0.0
        ),
        "worker_speedup": parallel.stats.speedup,
        "per_worker_subqueries": parallel.stats.per_worker_subqueries,
        "cost": serial.cost,
        "plans_considered": serial.stats.plans_considered,
    }


def bench_cache(items):
    """Cold enumeration vs. warm cache hits over the same workload."""
    cache = PlanCache(capacity=len(items) + 8)
    cold_times = []
    for query, statistics in items:
        started = time.perf_counter()
        optimize(
            query, algorithm=ALGORITHM, statistics=statistics, plan_cache=cache
        )
        cold_times.append(time.perf_counter() - started)
    hit_times = []
    for query, statistics in items:
        started = time.perf_counter()
        result = optimize(
            query, algorithm=ALGORITHM, statistics=statistics, plan_cache=cache
        )
        hit_times.append(time.perf_counter() - started)
        assert result.algorithm.endswith("+cache"), "expected a cache hit"
    cold_mean = sum(cold_times) / len(cold_times)
    hit_mean = sum(hit_times) / len(hit_times)
    return {
        "queries": len(items),
        "cold_mean_seconds": cold_mean,
        "hit_mean_seconds": hit_mean,
        "hit_speedup": cold_mean / hit_mean if hit_mean > 0 else 0.0,
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
    }


#: (name, shape, size) per mode for the dense scaling section; dense
#: sizes stay moderate because TD-CMDP on a dense query enumerates all
#: 2^n subqueries — the 30+-pattern chains/cycles supply the query
#: *size* axis, the dense/tree entries the search-space *density* axis
SCALING_WORKLOADS = {
    "full": [
        ("chain-30", QueryShape.CHAIN, 30),
        ("cycle-30", QueryShape.CYCLE, 30),
        ("dense-14", QueryShape.DENSE, 14),
        ("tree-16", QueryShape.TREE, 16),
    ],
    "quick": [
        ("chain-30", QueryShape.CHAIN, 30),
        ("cycle-30", QueryShape.CYCLE, 30),
        ("dense-12", QueryShape.DENSE, 12),
    ],
}
SCALING_WORKERS = (1, 2, 4, 8)
SCALING_SEED = 7


def bench_scaling(mode: str):
    """Memo-shard vs. root-slice vs. serial in deterministic work units."""
    queries = []
    for name, shape, size in SCALING_WORKLOADS[mode]:
        query = generate_query(shape, size, random.Random(SCALING_SEED))
        queries.append((name, query))
    rows = []
    for name, query in queries:
        serial = optimize(query, algorithm=ALGORITHM, seed=SCALING_SEED)
        context = VerificationContext.for_query(
            query, seed=SCALING_SEED, algorithm=ALGORITHM
        )
        row = {
            "query": name,
            "patterns": len(query),
            "serial_subqueries": serial.stats.subqueries_expanded,
            "serial_seconds": serial.elapsed_seconds,
            "cost": serial.cost,
            "memo_shard": {},
        }
        for jobs in SCALING_WORKERS:
            result = optimize_query_parallel(
                query,
                algorithm=ALGORITHM,
                jobs=jobs,
                seed=SCALING_SEED,
                strategy="memo-shard",
            )
            assert result.cost == serial.cost, (
                f"{name} x{jobs}: memo-shard cost diverged from serial"
            )
            verify_result(result, context).raise_if_failed()
            shares = result.stats.per_worker_subqueries or [
                result.stats.subqueries_expanded
            ]
            row["memo_shard"][str(jobs)] = {
                "workers": result.stats.workers,
                "wall_seconds": result.elapsed_seconds,
                "per_worker_subqueries": shares,
                "scaling_efficiency": serial.stats.subqueries_expanded
                / max(max(shares), 1),
                "worker_balance": result.stats.worker_balance,
                "steals": result.stats.steals,
                "pool_startup_seconds": result.stats.pool_startup_seconds,
            }
        sliced = optimize_query_parallel(
            query,
            algorithm=ALGORITHM,
            jobs=4,
            seed=SCALING_SEED,
            strategy="root-slice",
        )
        assert sliced.cost == serial.cost, (
            f"{name}: root-slice cost diverged from serial"
        )
        verify_result(sliced, context).raise_if_failed()
        memo_work = sum(row["memo_shard"]["4"]["per_worker_subqueries"])
        slice_work = sum(sliced.stats.per_worker_subqueries)
        row["root_slice_4"] = {
            "wall_seconds": sliced.elapsed_seconds,
            "per_worker_subqueries": sliced.stats.per_worker_subqueries,
            "total_subqueries": slice_work,
        }
        row["work_ratio_vs_root_slice"] = slice_work / max(memo_work, 1)
        rows.append(row)
        print(
            f"scaling {name}: eff4="
            f"{row['memo_shard']['4']['scaling_efficiency']:.2f} "
            f"work_ratio={row['work_ratio_vs_root_slice']:.2f} "
            f"steals={row['memo_shard']['4']['steals']} "
            f"balance={row['memo_shard']['4']['worker_balance']:.2f}"
        )
    return {
        "algorithm": ALGORITHM,
        "seed": SCALING_SEED,
        "workers": list(SCALING_WORKERS),
        "queries": rows,
    }


#: absolute gates from the acceptance criteria; the committed baseline
#: additionally guards against relative regressions
MIN_SCALING_EFFICIENCY = 2.5
MIN_WORK_RATIO = 1.3


def check_scaling_baseline(scaling: dict, baseline_path: Path) -> int:
    """Gate the scaling section on work-unit ratios (machine-independent)."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_by_query = {row["query"]: row for row in baseline["queries"]}
    failures = 0
    for row in scaling["queries"]:
        efficiency = row["memo_shard"]["4"]["scaling_efficiency"]
        ratio = row["work_ratio_vs_root_slice"]
        floor = MIN_SCALING_EFFICIENCY
        base = base_by_query.get(row["query"])
        if base is not None:
            floor = max(
                floor, base["memo_shard"]["4"]["scaling_efficiency"] / 2.0
            )
        print(
            f"scaling gate {row['query']}: efficiency {efficiency:.2f} "
            f"(floor {floor:.2f}), work ratio {ratio:.2f} "
            f"(floor {MIN_WORK_RATIO:.2f})"
        )
        if efficiency < floor:
            print(
                f"FAIL: {row['query']} 4-worker scaling efficiency "
                f"{efficiency:.2f} below floor {floor:.2f}",
                file=sys.stderr,
            )
            failures += 1
        if ratio < MIN_WORK_RATIO:
            print(
                f"FAIL: {row['query']} memo-shard does not beat root-slice "
                f"by {MIN_WORK_RATIO}x in total work (got {ratio:.2f}x)",
                file=sys.stderr,
            )
            failures += 1
    return 1 if failures else 0


def check_baseline(report: dict, baseline_path: Path) -> int:
    """Gate: the cache speedup ratio must not regress >2x vs. baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    base_speedup = baseline["cache"]["hit_speedup"]
    current_speedup = report["cache"]["hit_speedup"]
    floor = base_speedup / 2.0
    print(
        f"baseline gate: cache hit speedup {current_speedup:.1f}x "
        f"(baseline {base_speedup:.1f}x, floor {floor:.1f}x)"
    )
    if current_speedup < floor:
        print(
            "FAIL: cached-path latency regressed more than 2x relative "
            "to the committed baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI workload")
    parser.add_argument("--jobs", type=int, default=4, help="pool size (default 4)")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--output", default="BENCH_parallel_opt.json")
    parser.add_argument(
        "--scaling-output",
        default="BENCH_parallel_scaling.json",
        help="where to write the dense scaling section on its own",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline JSON; exit non-zero if the cache-hit "
        "speedup drops below half the baseline's",
    )
    parser.add_argument(
        "--scaling-baseline",
        default=None,
        help="committed scaling baseline JSON; exit non-zero if any "
        "query misses the 2.5x efficiency / 1.3x work-ratio floors or "
        "regresses below half its baseline efficiency",
    )
    args = parser.parse_args(argv)
    mode = "quick" if args.quick else "full"

    items = build_workload(mode, seed=args.seed)
    print(f"mode={mode} queries={len(items)} jobs={args.jobs}")

    report = {
        "mode": mode,
        "algorithm": ALGORITHM,
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "affinity_cpus": (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count()
        ),
        "python": sys.version.split()[0],
    }
    report["batch"] = bench_batch(items, args.jobs)
    print(
        f"batch: {report['batch']['serial_wall_seconds']:.2f}s serial vs "
        f"{report['batch']['pooled_wall_seconds']:.2f}s x{args.jobs} "
        f"(speedup {report['batch']['speedup']:.2f})"
    )
    report["intra_query"] = bench_intra_query(mode, args.jobs)
    print(
        f"intra-query: {report['intra_query']['serial_seconds']:.2f}s serial vs "
        f"{report['intra_query']['parallel_seconds']:.2f}s parallel "
        f"(cost identical: {report['intra_query']['cost']:.2f})"
    )
    report["cache"] = bench_cache(items)
    print(
        f"cache: cold {report['cache']['cold_mean_seconds'] * 1000:.1f}ms vs "
        f"hit {report['cache']['hit_mean_seconds'] * 1000:.2f}ms "
        f"({report['cache']['hit_speedup']:.0f}x)"
    )

    report["scaling"] = bench_scaling(mode)

    Path(args.output).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    scaling_report = {"mode": mode, **report["scaling"]}
    Path(args.scaling_output).write_text(
        json.dumps(scaling_report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.scaling_output}")
    status = 0
    if args.baseline:
        status |= check_baseline(report, Path(args.baseline))
    if args.scaling_baseline:
        status |= check_scaling_baseline(
            report["scaling"], Path(args.scaling_baseline)
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
