#!/usr/bin/env python
"""Resilience benchmark: the governance layer under a seeded chaos sweep.

Standalone script (stdlib only) mirroring ``bench_engine.py``'s shape.
It drives the same episode space as ``tests/test_chaos.py`` — engines ×
LUBM queries × governance scenarios × seeds — and writes
``BENCH_resilience.json``:

* per-scenario outcome counts (``completed`` / ``degraded-anytime`` /
  ``aborted:<cause>``), with every episode classified and every
  completed episode bit-identical to the ``evaluate_reference`` oracle;
* abort-cause coverage (all four ``AbortCause`` values must appear);
* the zero-cost-off check: wall time of ungoverned execution vs the
  same execution under a generous (never-breached) budget, reported as
  an overhead ratio.

The ``--baseline`` gate is machine-independent where it can be: it
requires full classification coverage and zero correctness failures,
and bounds the governance overhead ratio by
``max(1.5, baseline_ratio * 2)``.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py --quick \
        --output BENCH_resilience.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    AbortCause,
    Deadline,
    OptimizeOptions,
    Optimizer,
    QueryAborted,
    QueryBudget,
    SteppingClock,
)
from repro.core import StatisticsCatalog
from repro.engine import (
    ENGINES,
    CircuitBreaker,
    Cluster,
    Executor,
    FailStop,
    FaultInjector,
    RetryPolicy,
    Straggler,
    Transient,
    evaluate_reference,
)
from repro.partitioning import HashSubjectObject
from repro.workloads import generate_lubm, lubm_query

ALGORITHMS = ("td-cmd", "td-cmdp", "hgr-td-cmd", "td-auto")
QUERIES = ("L2", "L7")
SCENARIOS = (
    "baseline",
    "anytime",
    "row-budget",
    "retry-budget",
    "exec-deadline",
)
PATIENT = RetryPolicy(max_retries=64)


def build_world(scale: float, cluster_size: int):
    dataset = generate_lubm(scale=scale)
    method = HashSubjectObject()
    cluster = Cluster.build(dataset, method, cluster_size=cluster_size)
    queries = {}
    for name in QUERIES:
        query = lubm_query(name)
        statistics = StatisticsCatalog.from_dataset(query, dataset)
        plan = (
            Optimizer(OptimizeOptions(statistics=statistics, partitioning=method))
            .optimize(query)
            .plan
        )
        oracle = evaluate_reference(query, dataset.graph)
        queries[name] = (query, statistics, plan, oracle)
    return method, cluster, queries


def _injector(rng, rate):
    if rate == 0.0:
        return None
    models = rng.choice([None, (FailStop(),), (Transient(),), (Straggler(),)])
    return FaultInjector(rate, seed=rng.randrange(2**16), models=models)


def run_episode(world, engine, qname, scenario, seed):
    """One lifecycle episode; returns (outcome, correct: bool)."""
    method, cluster, queries = world
    query, statistics, plan, oracle = queries[qname]
    rng = random.Random(f"{engine}|{qname}|{scenario}|{seed}")
    cluster.heal()

    def execute(run_plan, budget=None, rate=0.0, breaker=None):
        executor = Executor(
            cluster,
            fault_injector=_injector(rng, rate),
            retry_policy=PATIENT,
            engine=engine,
            circuit_breaker=breaker,
        )
        return executor.execute(run_plan, query, budget=budget)

    try:
        if scenario == "baseline":
            rate = rng.choice([0.0, 0.3, 0.6])
            breaker = CircuitBreaker() if rng.random() < 0.5 else None
            relation, _ = execute(plan, rate=rate, breaker=breaker)
            return "completed", relation.rows == oracle.rows
        if scenario == "anytime":
            ticks = rng.choice([0, 5, 20, 80, 320])
            budget = QueryBudget(
                deadline=Deadline.after(float(ticks), SteppingClock(step=1.0)),
                anytime=True,
                query_id=qname,
            )
            session = Optimizer(
                OptimizeOptions(
                    algorithm=rng.choice(ALGORITHMS),
                    statistics=statistics,
                    partitioning=method,
                )
            )
            result = session.optimize(query, budget=budget)
            relation, _ = execute(result.plan)
            outcome = (
                "degraded-anytime" if result.stats.degraded else "completed"
            )
            return outcome, relation.rows == oracle.rows
        if scenario == "row-budget":
            budget = QueryBudget(
                row_budget=rng.choice([1, 25, 500, 10**9]), query_id=qname
            )
            relation, _ = execute(
                plan, budget=budget, rate=rng.choice([0.0, 0.4])
            )
            return "completed", relation.rows == oracle.rows
        if scenario == "retry-budget":
            budget = QueryBudget(retry_budget=rng.randint(0, 4), query_id=qname)
            relation, _ = execute(plan, budget=budget, rate=0.8)
            return "completed", relation.rows == oracle.rows
        budget = QueryBudget(
            deadline=Deadline.after(
                float(rng.choice([0, 2, 5, 9, 14])), SteppingClock(step=1.0)
            ),
            query_id=qname,
        )
        relation, _ = execute(plan, budget=budget, rate=rng.choice([0.0, 0.4]))
        return "completed", relation.rows == oracle.rows
    except QueryAborted as abort:
        return f"aborted:{abort.cause.value}", True


def bench_episodes(world, seeds):
    outcomes: Counter = Counter()
    per_scenario = {scenario: Counter() for scenario in SCENARIOS}
    failures = 0
    started = time.perf_counter()
    for engine in ENGINES:
        for qname in QUERIES:
            for scenario in SCENARIOS:
                for seed in range(seeds):
                    outcome, correct = run_episode(
                        world, engine, qname, scenario, seed
                    )
                    outcomes[outcome] += 1
                    per_scenario[scenario][outcome] += 1
                    if not correct:
                        failures += 1
    causes = sorted(
        key.split(":", 1)[1] for key in outcomes if key.startswith("aborted:")
    )
    return {
        "episodes": sum(outcomes.values()),
        "wall_seconds": time.perf_counter() - started,
        "outcomes": dict(sorted(outcomes.items())),
        "per_scenario": {
            scenario: dict(sorted(counts.items()))
            for scenario, counts in per_scenario.items()
        },
        "abort_causes_observed": causes,
        "correctness_failures": failures,
    }


def bench_overhead(world, repetitions):
    """Zero-cost-off: ungoverned vs generous-budget execution wall time."""
    method, cluster, queries = world
    query, _, plan, oracle = queries["L7"]

    def timed(budget_factory):
        best = float("inf")
        for _ in range(repetitions):
            cluster.heal()
            executor = Executor(cluster)
            started = time.perf_counter()
            relation, _ = executor.execute(plan, query, budget=budget_factory())
            best = min(best, time.perf_counter() - started)
            assert relation.rows == oracle.rows
        return best

    plain = timed(lambda: None)
    governed = timed(
        lambda: QueryBudget(
            deadline=Deadline.after(3600.0),
            row_budget=10**9,
            retry_budget=10**6,
        )
    )
    return {
        "plain_seconds": plain,
        "governed_seconds": governed,
        "overhead_ratio": governed / plain if plain else 1.0,
    }


def check_baseline(report, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    ratio = report["overhead"]["overhead_ratio"]
    allowed = max(1.5, baseline["overhead"]["overhead_ratio"] * 2)
    if ratio > allowed:
        print(f"FAIL: governance overhead {ratio:.3f}x > allowed {allowed:.3f}x")
        return 1
    print(f"baseline ok: overhead {ratio:.3f}x <= {allowed:.3f}x")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="fewer seeds (CI smoke)"
    )
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--cluster-size", type=int, default=4)
    parser.add_argument("--output", default="BENCH_resilience.json")
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed baseline JSON; exit non-zero if the governance "
        "overhead ratio exceeds max(1.5, baseline * 2)",
    )
    args = parser.parse_args(argv)
    seeds = 5 if args.quick else 15
    repetitions = 3 if args.quick else 7

    world = build_world(args.scale, args.cluster_size)
    report = {
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "chaos": bench_episodes(world, seeds),
        "overhead": bench_overhead(world, repetitions),
    }

    chaos = report["chaos"]
    print(
        f"{chaos['episodes']} episodes in {chaos['wall_seconds']:.1f}s, "
        f"{chaos['correctness_failures']} correctness failures"
    )
    for outcome, count in chaos["outcomes"].items():
        print(f"  {outcome:>24s}: {count}")
    print(
        f"governance overhead: plain={report['overhead']['plain_seconds'] * 1000:.2f}ms "
        f"governed={report['overhead']['governed_seconds'] * 1000:.2f}ms "
        f"ratio={report['overhead']['overhead_ratio']:.3f}x"
    )

    Path(args.output).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")

    if chaos["correctness_failures"]:
        print("FAIL: completed episodes diverged from the oracle")
        return 1
    expected_causes = {cause.value for cause in AbortCause} - {"cancelled"}
    missing = expected_causes - set(chaos["abort_causes_observed"])
    if missing:
        print(f"FAIL: abort causes never exercised: {sorted(missing)}")
        return 1
    if args.baseline:
        return check_baseline(report, Path(args.baseline))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
