"""Table III — benchmark-query inventory (types, sizes) + parser throughput."""

import pytest

from repro.core import JoinGraph
from repro.experiments import table3
from repro.workloads.lubm import _PREFIXES, _QUERY_TEXTS  # noqa: SLF001 (bench-only)
from repro.sparql import parse_query


@pytest.mark.report
def test_table3_report(benchmark):
    """Regenerate Table III and write results/table3_queries.txt."""
    content = benchmark.pedantic(table3.report, rounds=1, iterations=1)
    assert "L10" in content
    print()
    print(content)


@pytest.mark.parametrize("name", ["L5", "L9", "L10"])
def test_parse_benchmark_query(benchmark, name):
    """SPARQL parsing throughput on the larger benchmark queries."""
    text = _PREFIXES + _QUERY_TEXTS[name]
    query = benchmark(parse_query, text, name)
    assert len(query) >= 8


def test_join_graph_construction(benchmark, bench_queries):
    """Join-graph construction cost for the largest query (L10)."""
    query = bench_queries["L10"].query
    join_graph = benchmark(JoinGraph, query)
    assert join_graph.size == 14
