"""Table IV — query optimization time (TD-Auto vs MSC vs DP-Bushy).

Per-(query, algorithm) micro-benchmarks plus the full-table report.
Pairs that exceed ``REPRO_TIMEOUT`` are skipped with a note — those are
the paper's N/A entries (MSC needs 432 s for L9 and >10 h for L10 in
the original evaluation; our MSC reproduction times out there too).
"""

import pytest

from repro.experiments import table4
from repro.experiments.benchmark_queries import QUERY_ORDER
from repro.experiments.harness import PAPER_TRIO, default_timeout, run_algorithm
from repro.partitioning import HashSubjectObject

#: pairs the paper itself reports as (near-)timeouts — skip their
#: micro-benchmarks up front instead of burning a timeout each
KNOWN_EXPLOSIVE = {("MSC", "L9"), ("MSC", "L10")}


@pytest.mark.parametrize("algorithm", PAPER_TRIO)
@pytest.mark.parametrize("query_name", QUERY_ORDER)
def test_optimization_time(benchmark, bench_queries, algorithm, query_name):
    if (algorithm, query_name) in KNOWN_EXPLOSIVE:
        pytest.skip(f"{algorithm} on {query_name}: exponential (paper: ≥432s)")
    bench = bench_queries[query_name]
    partitioning = HashSubjectObject()

    probe = run_algorithm(
        algorithm,
        bench.query,
        statistics=bench.statistics,
        partitioning=partitioning,
    )
    if probe.timed_out:
        pytest.skip(f"{algorithm} timed out on {query_name} (>{default_timeout()}s)")

    def optimize_once():
        return run_algorithm(
            algorithm,
            bench.query,
            statistics=bench.statistics,
            partitioning=partitioning,
        )

    result = benchmark.pedantic(optimize_once, rounds=1, iterations=1)
    assert not result.timed_out
    assert result.cost is not None and result.cost >= 0


@pytest.mark.report
def test_table4_report(benchmark):
    """Regenerate Table IV and write results/table4_optimization_time.txt."""
    content = benchmark.pedantic(table4.report, rounds=1, iterations=1)
    print()
    print(content)
    # the paper's headline shape: MSC must NOT be the fastest on dense queries
    lines = {row.split()[0]: row for row in content.splitlines() if row[:1] == "L"}
    assert "L9" in lines and "L10" in lines
