"""Table V — query processing time on the simulated 10-worker cluster.

Micro-benchmarks execute TD-Auto plans under each partitioning method
(Hash-SO / 2f / Path-BMC); the report regenerates the full table with
the MSC and DP-Bushy rows and verifies every executed result against
the single-node reference evaluation.
"""

import pytest

from repro.engine import Cluster, Executor, evaluate_reference
from repro.experiments import table5
from repro.experiments.harness import run_algorithm
from repro.partitioning import HashSubjectObject, PathBMC, SemanticHash

PARTITIONINGS = {
    "Hash-SO": HashSubjectObject,
    "2f": SemanticHash,
    "Path-BMC": PathBMC,
}

#: a representative spread: star, chain, tree, dense
MICRO_QUERIES = ("L1", "U2", "L5", "L8")


@pytest.mark.parametrize("part_name", list(PARTITIONINGS))
@pytest.mark.parametrize("query_name", MICRO_QUERIES)
def test_execution_time(benchmark, bench_queries, part_name, query_name):
    bench = bench_queries[query_name]
    method = PARTITIONINGS[part_name]()
    run = run_algorithm(
        "TD-Auto",
        bench.query,
        statistics=bench.statistics,
        partitioning=method,
    )
    assert not run.timed_out
    cluster = Cluster.build(bench.dataset, method, cluster_size=10)
    executor = Executor(cluster)
    reference = evaluate_reference(bench.query, bench.dataset.graph)

    relation, metrics = benchmark.pedantic(
        lambda: executor.execute(run.result.plan, bench.query),
        rounds=1,
        iterations=1,
    )
    assert relation.rows == reference.rows
    assert metrics.critical_path_cost >= 0


def test_path_bmc_makes_queries_local(bench_queries):
    """The Table V headline: under Path-BMC every acyclic benchmark
    query is a local query, so TD-Auto plans ship zero tuples."""
    bench = bench_queries["U2"]
    method = PathBMC()
    run = run_algorithm(
        "TD-Auto", bench.query, statistics=bench.statistics, partitioning=method
    )
    cluster = Cluster.build(bench.dataset, method, cluster_size=10)
    _, metrics = Executor(cluster).execute(run.result.plan, bench.query)
    assert metrics.total_tuples_shipped == 0


@pytest.mark.report
def test_table5_report(benchmark):
    """Regenerate Table V and write results/table5_processing_time.txt."""
    content = benchmark.pedantic(table5.report, rounds=1, iterations=1)
    print()
    print(content)
    assert "ALL RESULTS MATCH" in content
