"""Table VI — estimated cost of the query plans each optimizer picks."""

import pytest

from repro.experiments import table6
from repro.experiments.harness import run_algorithm
from repro.partitioning import HashSubjectObject


@pytest.mark.parametrize("query_name", ("L5", "L7", "U4"))
def test_td_auto_cost_at_most_baselines(bench_queries, query_name):
    """The table's claim: TD-Auto's estimated cost ≤ MSC and DP-Bushy."""
    bench = bench_queries[query_name]
    partitioning = HashSubjectObject()
    runs = {
        algorithm: run_algorithm(
            algorithm,
            bench.query,
            statistics=bench.statistics,
            partitioning=partitioning,
        )
        for algorithm in ("TD-Auto", "MSC", "DP-Bushy")
    }
    td = runs["TD-Auto"]
    assert not td.timed_out
    for other in ("MSC", "DP-Bushy"):
        if not runs[other].timed_out:
            assert td.cost <= runs[other].cost * (1 + 1e-9)


@pytest.mark.report
def test_table6_report(benchmark):
    """Regenerate Table VI and write results/table6_plan_cost.txt."""
    content = benchmark.pedantic(table6.report, rounds=1, iterations=1)
    print()
    print(content)
    assert "HOLDS on all queries." in content
