"""Table VII — size of the search space (#plans considered).

The report sweeps the paper's grid (chain/cycle/tree/dense × 8/16/30);
entries whose run exceeds ``REPRO_TIMEOUT`` print N/A, as in the paper.
Micro-benchmarks cover the size-8 column where every algorithm
completes, plus the analytic T(Q) cross-check on the TD-CMD counters.
"""

import random

import pytest

from repro.core.counting import t_chain, t_cycle
from repro.core.join_graph import QueryShape
from repro.experiments import table7
from repro.experiments.harness import FIGURE_SET, run_algorithm
from repro.workloads.generators import generate_query


@pytest.mark.parametrize("algorithm", FIGURE_SET)
@pytest.mark.parametrize(
    "shape", [QueryShape.CHAIN, QueryShape.CYCLE, QueryShape.TREE, QueryShape.DENSE]
)
def test_search_space_size8(benchmark, algorithm, shape):
    query = generate_query(shape, 8, random.Random(11))

    def run_once():
        return run_algorithm(algorithm, query, seed=11)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    if result.timed_out:
        pytest.skip(f"{algorithm} timed out on {shape.value}-8")
    assert result.plans_considered > 0


def test_tdcmd_counters_equal_analytic_t():
    """TD-CMD's division counter equals T(Q) on chains and cycles."""
    for shape, formula in ((QueryShape.CHAIN, t_chain), (QueryShape.CYCLE, t_cycle)):
        query = generate_query(shape, 8, random.Random(11))
        result = run_algorithm("TD-CMD", query, seed=11)
        assert result.result.stats.divisions_enumerated == formula(8)


@pytest.mark.report
def test_table7_report(benchmark):
    """Regenerate Table VII and write results/table7_search_space.txt."""
    content = benchmark.pedantic(table7.report, rounds=1, iterations=1)
    print()
    print(content)
    assert "TD-CMD" in content
