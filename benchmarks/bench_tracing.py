#!/usr/bin/env python
"""Tracer overhead benchmark: what does ``trace=True`` cost?

Runs the paper's 15-query sweep (LUBM L1–L10, UniProt U1–U5, exact
dataset statistics) three ways and writes ``BENCH_tracing.json``:

* **disabled** — a plain session (``trace=False``); instrumentation
  sites hit the no-op path (one context-variable read per phase);
* **enabled** — a traced session; every call records the full span
  tree plus the metrics registry;
* **gate** — aggregate minimum-of-repetitions wall-clock enabled vs
  disabled must stay under ``--max-overhead`` (default 5%).

Per-query timing takes the *minimum* over ``--reps`` repetitions (the
standard way to strip scheduler noise from a microbenchmark); the gate
compares the sums of those minima so fast queries cannot dominate
through timer granularity.

Usage::

    PYTHONPATH=src python benchmarks/bench_tracing.py --quick \
        --output BENCH_tracing.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import OptimizeOptions, Optimizer
from repro.experiments import ordered_benchmark_queries
from repro.partitioning import HashSubjectObject

ALGORITHM = "td-cmdp"
#: quick mode keeps one query per shape family (mirrors bench_verifier)
QUICK_QUERIES = ("L1", "L2", "L3", "U1", "U2", "L7")


def build_workload(mode: str):
    """The benchmark queries (name, query, exact statistics) to sweep."""
    queries = ordered_benchmark_queries()
    if mode == "quick":
        queries = [bq for bq in queries if bq.name in QUICK_QUERIES]
    return queries


def time_sweep(workload, reps: int, trace: bool):
    """Min-of-*reps* optimize seconds per query for one tracer setting."""
    method = HashSubjectObject()
    per_query = {}
    spans = 0
    for bq in workload:
        options = OptimizeOptions(
            algorithm=ALGORITHM,
            statistics=bq.statistics,
            partitioning=method,
            trace=trace,
        )
        best = float("inf")
        for _ in range(reps):
            session = Optimizer(options)
            started = time.perf_counter()
            session.optimize(bq.query)
            best = min(best, time.perf_counter() - started)
            if session.tracer is not None:
                spans = max(spans, len(session.tracer))
        per_query[bq.name] = best
    return per_query, spans


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI workload")
    parser.add_argument("--reps", type=int, default=5, help="repetitions per query")
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        help="fail when enabled/disabled - 1 exceeds this fraction",
    )
    parser.add_argument("--output", default="BENCH_tracing.json")
    args = parser.parse_args(argv)
    mode = "quick" if args.quick else "full"

    workload = build_workload(mode)
    print(f"mode={mode} queries={len(workload)} algorithm={ALGORITHM} reps={args.reps}")

    # warm up imports and the benchmark-query caches before timing
    warm = Optimizer(OptimizeOptions(algorithm=ALGORITHM, statistics=workload[0].statistics))
    warm.optimize(workload[0].query)

    disabled, _ = time_sweep(workload, args.reps, trace=False)
    enabled, spans_per_query = time_sweep(workload, args.reps, trace=True)

    total_disabled = sum(disabled.values())
    total_enabled = sum(enabled.values())
    overhead = total_enabled / total_disabled - 1.0 if total_disabled > 0 else 0.0
    passed = overhead <= args.max_overhead

    report = {
        "mode": mode,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "algorithm": ALGORITHM,
        "reps": args.reps,
        "per_query": {
            name: {
                "disabled_seconds": disabled[name],
                "enabled_seconds": enabled[name],
                "overhead": (
                    enabled[name] / disabled[name] - 1.0
                    if disabled[name] > 0
                    else 0.0
                ),
            }
            for name in disabled
        },
        "gate": {
            "total_disabled_seconds": total_disabled,
            "total_enabled_seconds": total_enabled,
            "overhead": overhead,
            "max_overhead": args.max_overhead,
            "max_spans_per_query": spans_per_query,
            "passed": passed,
        },
    }
    Path(args.output).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(
        f"disabled {total_disabled * 1000:.2f}ms, enabled "
        f"{total_enabled * 1000:.2f}ms, overhead {overhead * 100:+.2f}% "
        f"(gate {args.max_overhead * 100:.0f}%)"
    )
    print(f"wrote {args.output}")
    if not passed:
        print(
            f"FAIL: tracing overhead {overhead * 100:.2f}% exceeds the "
            f"{args.max_overhead * 100:.0f}% gate",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
