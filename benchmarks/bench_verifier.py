#!/usr/bin/env python
"""Verifier overhead benchmark: what does ``--verify`` cost?

Three sections, written to ``BENCH_verifier.json``:

* **per_query** — all four algorithms over the paper's benchmark
  queries (LUBM L1–L10, UniProt U1–U5, exact dataset statistics);
  every emitted plan must be verifier-clean, and the report records
  optimization time, verification time, and their ratio per run.
* **cache** — the workload repeated against a warm plan cache with
  ``verify=True``: every hit re-checks the rebuilt plan, so this is
  the worst case for relative overhead (verification cost against a
  near-zero lookup cost).
* **parallel** — the parallelizable algorithms with ``jobs=2`` and
  ``verify=True``: merged multi-worker results must verify too.

The headline number is ``overhead.verify_over_optimize_ratio`` —
total verification wall-clock as a fraction of total optimization
wall-clock.  Verification is a linear tree walk against exponential
enumeration, so the ratio is expected to be well under 1.

Usage::

    PYTHONPATH=src python benchmarks/bench_verifier.py --quick \
        --output BENCH_verifier.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import VerificationContext, verify_result
from repro.core import PlanCache, optimize
from repro.experiments import ordered_benchmark_queries
from repro.partitioning import HashSubjectObject

ALGORITHMS = ("td-cmd", "td-cmdp", "hgr-td-cmd", "td-auto")
PARALLEL_ALGORITHMS = ("td-cmd", "td-cmdp")
#: quick mode keeps one query per shape family
QUICK_QUERIES = ("L1", "L2", "L3", "U1", "U2", "L7")


def build_workload(mode: str):
    queries = ordered_benchmark_queries()
    if mode == "quick":
        queries = [bq for bq in queries if bq.name in QUICK_QUERIES]
    method = HashSubjectObject()
    return [
        (
            bq,
            method,
            VerificationContext.for_query(
                bq.query, statistics=bq.statistics, partitioning=method
            ),
        )
        for bq in queries
    ]


def bench_per_query(workload):
    """Optimize + verify every query under every algorithm."""
    runs = []
    for bq, method, context in workload:
        for algorithm in ALGORITHMS:
            started = time.perf_counter()
            result = optimize(
                bq.query,
                algorithm=algorithm,
                statistics=bq.statistics,
                partitioning=method,
            )
            optimize_seconds = time.perf_counter() - started
            report = verify_result(result, context)
            assert report.ok, f"{bq.name}/{algorithm}: {report.render()}"
            runs.append(
                {
                    "query": bq.name,
                    "shape": bq.shape,
                    "algorithm": result.algorithm,
                    "patterns": len(bq.query),
                    "cost": result.plan.cost,
                    "optimize_seconds": optimize_seconds,
                    "verify_seconds": report.elapsed_seconds,
                    "verify_nodes": report.nodes_checked,
                    "verify_checks": report.checks_run,
                    "overhead_ratio": (
                        report.elapsed_seconds / optimize_seconds
                        if optimize_seconds > 0
                        else 0.0
                    ),
                }
            )
    return runs


def bench_cache(workload):
    """Verified cache hits: the worst case for relative overhead."""
    cache = PlanCache(capacity=4 * len(workload) + 8)
    algorithm = "td-cmdp"
    for bq, method, _ in workload:
        optimize(
            bq.query,
            algorithm=algorithm,
            statistics=bq.statistics,
            partitioning=method,
            plan_cache=cache,
        )
    plain_times = []
    for bq, method, _ in workload:
        started = time.perf_counter()
        result = optimize(
            bq.query,
            algorithm=algorithm,
            statistics=bq.statistics,
            partitioning=method,
            plan_cache=cache,
        )
        plain_times.append(time.perf_counter() - started)
        assert result.algorithm.endswith("+cache"), "expected a cache hit"
    verified_times = []
    for bq, method, _ in workload:
        started = time.perf_counter()
        result = optimize(
            bq.query,
            algorithm=algorithm,
            statistics=bq.statistics,
            partitioning=method,
            plan_cache=cache,
            verify=True,
        )
        verified_times.append(time.perf_counter() - started)
        assert result.algorithm.endswith("+cache"), "verified hit fell through"
    plain_mean = sum(plain_times) / len(plain_times)
    verified_mean = sum(verified_times) / len(verified_times)
    return {
        "queries": len(workload),
        "algorithm": algorithm,
        "hit_mean_seconds": plain_mean,
        "verified_hit_mean_seconds": verified_mean,
        "verified_hit_overhead": (
            verified_mean / plain_mean if plain_mean > 0 else 0.0
        ),
        "invalidations": cache.stats.invalidations,
    }


def bench_parallel(workload, jobs: int):
    """Multi-worker plan search with verification of merged results."""
    runs = []
    for bq, method, context in workload:
        for algorithm in PARALLEL_ALGORITHMS:
            started = time.perf_counter()
            result = optimize(
                bq.query,
                algorithm=algorithm,
                statistics=bq.statistics,
                partitioning=method,
                jobs=jobs,
                verify=True,
            )
            wall = time.perf_counter() - started
            report = verify_result(result, context)
            assert report.ok, f"{bq.name}/{algorithm} x{jobs}: {report.render()}"
            runs.append(
                {
                    "query": bq.name,
                    "algorithm": result.algorithm,
                    "jobs": jobs,
                    "wall_seconds": wall,
                    "verify_seconds": report.elapsed_seconds,
                    "cost": result.plan.cost,
                }
            )
    return runs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI workload")
    parser.add_argument("--jobs", type=int, default=2, help="parallel-search pool")
    parser.add_argument("--output", default="BENCH_verifier.json")
    args = parser.parse_args(argv)
    mode = "quick" if args.quick else "full"

    workload = build_workload(mode)
    print(f"mode={mode} queries={len(workload)} algorithms={len(ALGORITHMS)}")

    report = {
        "mode": mode,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    runs = bench_per_query(workload)
    report["per_query"] = runs
    total_optimize = sum(r["optimize_seconds"] for r in runs)
    total_verify = sum(r["verify_seconds"] for r in runs)
    report["overhead"] = {
        "runs": len(runs),
        "total_optimize_seconds": total_optimize,
        "total_verify_seconds": total_verify,
        "verify_over_optimize_ratio": (
            total_verify / total_optimize if total_optimize > 0 else 0.0
        ),
    }
    print(
        f"per-query: {len(runs)} runs, optimize {total_optimize:.3f}s, "
        f"verify {total_verify:.3f}s "
        f"(ratio {report['overhead']['verify_over_optimize_ratio']:.4f})"
    )
    report["cache"] = bench_cache(workload)
    print(
        f"cache: hit {report['cache']['hit_mean_seconds'] * 1000:.2f}ms vs "
        f"verified hit "
        f"{report['cache']['verified_hit_mean_seconds'] * 1000:.2f}ms "
        f"({report['cache']['verified_hit_overhead']:.2f}x)"
    )
    report["parallel"] = bench_parallel(workload, args.jobs)
    print(f"parallel: {len(report['parallel'])} verified runs at jobs={args.jobs}")

    Path(args.output).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
