"""Benchmark configuration.

Timeouts and workload scale are environment-tunable so the full bench
suite stays laptop-friendly by default:

* ``REPRO_TIMEOUT``      — per-optimizer-run timeout in seconds (default 15;
  the paper used 600 s on Java)
* ``REPRO_BENCH_SCALE``  — multiplies workload sizes where applicable

Timed-out (algorithm, query) pairs are skipped with an explanatory
message, matching how the paper reports N/A entries.
"""

from __future__ import annotations

import pytest

from repro.experiments.benchmark_queries import (
    benchmark_queries,
    ordered_benchmark_queries,
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "report: benchmark that regenerates a paper table/figure"
    )


@pytest.fixture(scope="session")
def bench_queries():
    """The 15 benchmark queries with datasets and statistics (cached)."""
    return benchmark_queries()


@pytest.fixture(scope="session")
def bench_query_list():
    return ordered_benchmark_queries()
