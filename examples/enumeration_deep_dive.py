#!/usr/bin/env python3
"""Enumeration deep dive: Algorithms 2 & 3 on the paper's Figure 1 query.

Shows the machinery underneath the optimizer: the join graph, the
connected components around a join variable (indivisible vs divisible),
every connected binary-division on ?a, a sample of the multi-divisions,
and the T(Q) accounting against the closed forms of Eqs. 7–9.

Run:  python examples/enumeration_deep_dive.py
"""

from repro import parse_query
from repro.core import JoinGraph
from repro.core import bitset as bs
from repro.core.cmd import enumerate_cbds, enumerate_cmds
from repro.core.counting import measured_t, t_chain, t_cycle, t_star
from repro.rdf.terms import Variable
from repro.workloads.generators import chain_query, cycle_query, star_query

FIG1 = """
PREFIX p: <http://example.org/>
SELECT * WHERE {
  ?b p:p1 ?a .
  ?c p:p2 ?a .
  ?a p:p3 ?e .
  ?e p:p4 ?g .
  ?b p:p5 ?f .
  ?c p:p6 ?d .
  ?a p:p7 ?d .
}
"""


def fmt(join_graph: JoinGraph, bits: int) -> str:
    return "{" + ",".join(f"tp{i + 1}" for i in bs.to_indices(bits)) + "}"


def main() -> None:
    query = parse_query(FIG1, name="fig1")
    join_graph = JoinGraph(query)
    print(f"join graph: {join_graph}")
    for i, tp in enumerate(join_graph.patterns):
        print(f"  tp{i + 1}: {tp}")

    a = Variable("a")
    print(f"\nNtp(?a) = {fmt(join_graph, join_graph.ntp(a))}, degree = "
          f"{join_graph.degree(a)}")

    print("\ncomponents after removing ?a (Algorithm 2, line 1):")
    for component in join_graph.connected_components(join_graph.full, exclude=a):
        adjacent = component & join_graph.ntp(a)
        kind = "indivisible" if bs.popcount(adjacent) == 1 else "divisible"
        print(f"  {fmt(join_graph, component)}  ({kind})")

    print("\nconnected binary-divisions on ?a (Algorithm 2):")
    for left, right in enumerate_cbds(join_graph, join_graph.full, a):
        print(f"  ({fmt(join_graph, left)}, {fmt(join_graph, right)})")

    cmds = list(enumerate_cmds(join_graph, join_graph.full))
    print(f"\ntotal connected multi-divisions of the full query: {len(cmds)}")
    k_way = [c for c in cmds if len(c[0]) > 2]
    print(f"of which k-way (k > 2): {len(k_way)}; the Example 4 cmd:")
    for parts, variable in k_way:
        if len(parts) == 4 and variable == a:
            print("  (" + ", ".join(fmt(join_graph, p) for p in parts) + f", {variable})")
            break

    print("\nT(Q) accounting (Eqs. 7–9):")
    for name, builder, formula, n in (
        ("chain", chain_query, t_chain, 8),
        ("cycle", cycle_query, t_cycle, 8),
        ("star", star_query, t_star, 8),
    ):
        measured = measured_t(JoinGraph(builder(n)))
        print(f"  {name}-{n}: measured T = {measured}, closed form = {formula(n)} "
              f"{'✓' if measured == formula(n) else '✗'}")


if __name__ == "__main__":
    main()
