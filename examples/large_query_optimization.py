#!/usr/bin/env python3
"""Large-query optimization: how the heuristics keep big queries tractable.

Sweeps random tree and dense queries from 6 to 22 triple patterns and
races TD-CMD (exhaustive) against TD-CMDP, HGR-TD-CMD, and TD-Auto,
reporting optimization time, search-space size, and plan cost relative
to the optimum — Figures 7/8 of the paper in miniature, plus the
Figure 5 decision tree's choices made visible.

Run:  python examples/large_query_optimization.py [--max-size 22] [--timeout 5]
"""

import argparse
import random

from repro.core import JoinGraph, choose_algorithm
from repro.experiments.harness import run_algorithm
from repro.workloads.generators import dense_query, tree_query


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-size", type=int, default=18)
    parser.add_argument("--timeout", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    algorithms = ("TD-CMD", "TD-CMDP", "HGR-TD-CMD", "TD-Auto")
    for label, build in (("tree", tree_query), ("dense", dense_query)):
        print(f"\n=== {label} queries ===")
        header = (
            f"{'n':>3s} {'auto picks':12s} "
            + " ".join(f"{a:>12s}" for a in algorithms)
            + f" {'cost vs opt':>24s}"
        )
        print(header)
        print("-" * len(header))
        for size in range(6, args.max_size + 1, 4):
            rng = random.Random(args.seed + size)
            query = build(size, rng)
            choice = choose_algorithm(JoinGraph(query))
            runs = {}
            for algorithm in algorithms:
                runs[algorithm] = run_algorithm(
                    algorithm, query, timeout_seconds=args.timeout, seed=args.seed
                )
            cells = []
            for algorithm in algorithms:
                run = runs[algorithm]
                cells.append(
                    f"{'>' + format(args.timeout, '.0f') + 's':>12s}"
                    if run.timed_out
                    else f"{run.elapsed_seconds * 1000:10.1f}ms"
                )
            optimum = runs["TD-CMD"]
            if optimum.timed_out:
                ratio_text = "opt timed out"
            else:
                ratios = []
                for algorithm in ("TD-CMDP", "HGR-TD-CMD", "TD-Auto"):
                    run = runs[algorithm]
                    ratios.append(
                        "-" if run.timed_out else f"{run.cost / optimum.cost:.2f}"
                    )
                ratio_text = "/".join(ratios)
            print(
                f"{size:>3d} {choice:12s} " + " ".join(cells) + f" {ratio_text:>24s}"
            )
    print(
        "\nreading the table: TD-CMD times out as size grows; TD-CMDP and "
        "HGR-TD-CMD keep finishing, staying close to the optimal cost where "
        "it is known; TD-Auto tracks whichever variant its decision tree "
        "picked (second column)."
    )


if __name__ == "__main__":
    main()
