#!/usr/bin/env python3
"""LUBM analytics: the paper's benchmark queries end to end.

Generates the LUBM-like university dataset, then for each of L1–L10:
optimizes with TD-Auto, MSC, and DP-Bushy, executes all three plans on
a simulated 10-worker cluster, and compares estimated cost vs. actual
(simulated) processing time — the Table IV/V/VI story in one script.

Run:  python examples/lubm_analytics.py [--queries L5,L7] [--timeout 10]
"""

import argparse

from repro.engine import Cluster, Executor, evaluate_reference
from repro.experiments.harness import run_algorithm
from repro.partitioning import HashSubjectObject
from repro.core import StatisticsCatalog
from repro.workloads import generate_lubm, lubm_queries


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--queries",
        default="L1,L2,L3,L4,L5,L6,L7,L8",
        help="comma-separated query names (L1..L10)",
    )
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument("--workers", type=int, default=10)
    args = parser.parse_args()

    dataset = generate_lubm()
    print(f"LUBM-like dataset: {dataset.triple_count} triples")
    partitioning = HashSubjectObject()
    cluster = Cluster.build(dataset, partitioning, cluster_size=args.workers)
    print(f"cluster: {cluster}\n")

    queries = lubm_queries()
    names = [n.strip() for n in args.queries.split(",") if n.strip()]
    header = f"{'query':6s} {'algorithm':10s} {'opt time':>10s} {'est. cost':>12s} {'sim time':>10s} {'rows':>6s} {'ok':>3s}"
    print(header)
    print("-" * len(header))
    for name in names:
        query = queries[name]
        statistics = StatisticsCatalog.from_dataset(query, dataset)
        reference = evaluate_reference(query, dataset.graph)
        for algorithm in ("TD-Auto", "MSC", "DP-Bushy"):
            run = run_algorithm(
                algorithm,
                query,
                statistics=statistics,
                partitioning=partitioning,
                timeout_seconds=args.timeout,
            )
            if run.timed_out:
                print(f"{name:6s} {algorithm:10s} {'>' + str(args.timeout) + 's':>10s}"
                      f" {'N/A':>12s} {'N/A':>10s} {'N/A':>6s}")
                continue
            relation, metrics = Executor(cluster).execute(run.result.plan, query)
            ok = "✓" if relation.rows == reference.rows else "✗"
            print(
                f"{name:6s} {algorithm:10s} {run.elapsed_seconds:9.3f}s "
                f"{run.cost:12.2f} {metrics.critical_path_cost:10.2f} "
                f"{len(relation):6d} {ok:>3s}"
            )
        print()


if __name__ == "__main__":
    main()
