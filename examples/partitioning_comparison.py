#!/usr/bin/env python3
"""Partitioning comparison: the paper's core 'partition-aware' claim.

The same UniProt-like query is optimized and executed under all four
partitioning methods (Hash-SO, 2f, Path-BMC, un-1-hop).  Because the
optimizer consumes the generic combine/distribute model, plans shift
automatically: methods with richer locality (Path-BMC) turn distributed
joins into local ones and the network traffic drops to zero.

Also reports the storage side of the trade-off: replication factor and
load balance per method — locality is bought with duplicated triples.

Run:  python examples/partitioning_comparison.py
"""

from repro.core import JoinGraph, LocalQueryIndex, StatisticsCatalog, optimize
from repro.core import bitset as bs
from repro.engine import Cluster, Executor, evaluate_reference
from repro.partitioning import (
    HashSubjectObject,
    PathBMC,
    SemanticHash,
    UndirectedOneHop,
)
from repro.workloads import generate_uniprot, uniprot_query

METHODS = [HashSubjectObject(), SemanticHash(2), PathBMC(), UndirectedOneHop()]


def main() -> None:
    dataset = generate_uniprot()
    query = uniprot_query("U2")  # the 5-pattern replacement chain
    print(f"dataset: {dataset}")
    print(f"query U2 ({JoinGraph(query).shape().value}):\n{query}\n")

    statistics = StatisticsCatalog.from_dataset(query, dataset)
    reference = evaluate_reference(query, dataset.graph)
    join_graph = JoinGraph(query)

    header = (
        f"{'partitioning':12s} {'repl.':>6s} {'imbal.':>7s} {'max MLQ':>8s} "
        f"{'est. cost':>10s} {'shipped':>8s} {'sim time':>9s} {'ok':>3s}"
    )
    print(header)
    print("-" * len(header))
    for method in METHODS:
        partitioning = method.partition(dataset, cluster_size=10)
        cluster = Cluster(partitioning)
        index = LocalQueryIndex(join_graph, method)
        largest_mlq = max(
            (bs.popcount(m) for m in index.maximal_local_queries), default=1
        )
        result = optimize(
            query, statistics=statistics, partitioning=method, algorithm="td-auto"
        )
        relation, metrics = Executor(cluster).execute(result.plan, query)
        ok = "✓" if relation.rows == reference.rows else "✗"
        print(
            f"{method.name:12s} "
            f"{partitioning.replication_factor(dataset.triple_count):6.2f} "
            f"{partitioning.imbalance():7.2f} "
            f"{largest_mlq:8d} "
            f"{result.cost:10.2f} "
            f"{metrics.total_tuples_shipped:8d} "
            f"{metrics.critical_path_cost:9.2f} {ok:>3s}"
        )

    print(
        "\nreading the table: Path-BMC covers the whole chain with one "
        "maximal local query, so TD-Auto plans a single local join and "
        "nothing crosses the network — the paper's Table V effect."
    )


if __name__ == "__main__":
    main()
