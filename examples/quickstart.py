#!/usr/bin/env python3
"""Quickstart: parse a SPARQL query, optimize it, execute the plan.

Walks the full pipeline on a tiny social-network dataset:

1. build an RDF dataset,
2. parse a BGP query,
3. inspect its join graph,
4. optimize with TD-Auto under hash partitioning,
5. execute the plan on a simulated 4-worker cluster,
6. check the result against single-node evaluation.

Run:  python examples/quickstart.py
"""

from repro import Dataset, optimize, parse_query, triple
from repro.core import JoinGraph, StatisticsCatalog
from repro.engine import Cluster, Executor, evaluate_reference
from repro.partitioning import HashSubjectObject


def build_dataset() -> Dataset:
    """A small 'people and projects' graph."""
    ns = "http://example.org/"
    triples = []
    people = [f"{ns}person/{i}" for i in range(12)]
    for i, person in enumerate(people):
        triples.append(triple(person, f"{ns}worksOn", f"{ns}project/{i % 3}"))
        triples.append(triple(person, f"{ns}locatedIn", f"{ns}city/{i % 4}"))
        # i and i+3 work on the same project (i % 3 == (i + 3) % 3), so
        # some 'knows' edges connect colleagues and the query has matches
        triples.append(triple(person, f"{ns}knows", people[(i + 3) % len(people)]))
        triples.append(triple(person, f"{ns}knows", people[(i + 5) % len(people)]))
    for p in range(3):
        triples.append(triple(f"{ns}project/{p}", f"{ns}fundedBy", f"{ns}org/{p % 2}"))
    return Dataset.from_triples(triples, name="quickstart")


QUERY = """
PREFIX ex: <http://example.org/>
SELECT ?a ?b ?proj WHERE {
  ?a ex:knows ?b .
  ?a ex:worksOn ?proj .
  ?b ex:worksOn ?proj .
  ?proj ex:fundedBy <http://example.org/org/0> .
}
"""


def main() -> None:
    dataset = build_dataset()
    print(f"dataset: {dataset}")

    query = parse_query(QUERY, name="colleagues")
    join_graph = JoinGraph(query)
    print(f"query: {len(query)} triple patterns, shape = {join_graph.shape().value}")
    print(f"join variables: {[str(v) for v in join_graph.join_variables]}")

    # optimize: statistics come straight from the dataset, locality from
    # the partitioning method
    partitioning = HashSubjectObject()
    statistics = StatisticsCatalog.from_dataset(query, dataset)
    result = optimize(
        query,
        algorithm="td-auto",
        statistics=statistics,
        partitioning=partitioning,
    )
    print(f"\noptimized with {result.algorithm} "
          f"in {result.elapsed_seconds * 1000:.2f} ms "
          f"({result.stats.plans_considered} plans considered)")
    print(f"estimated cost: {result.cost:.2f}")
    print("\nplan:")
    print(result.plan.describe())

    # execute on a simulated cluster
    cluster = Cluster.build(dataset, partitioning, cluster_size=4)
    print(f"\ncluster: {cluster}")
    relation, metrics = Executor(cluster).execute(result.plan, query)
    print(f"result rows: {len(relation)}")
    print(f"tuples shipped over the network: {metrics.total_tuples_shipped}")
    print(f"simulated time (cost-model units): {metrics.critical_path_cost:.2f}")

    # sanity: distributed execution == single-node evaluation
    reference = evaluate_reference(query, dataset.graph)
    assert relation.rows == reference.rows, "distributed result mismatch!"
    print("\ndistributed result verified against single-node evaluation ✓")

    for binding in sorted(relation.bindings(), key=str)[:5]:
        print("  " + ", ".join(f"{k}={v}" for k, v in sorted(binding.items(), key=str)))


if __name__ == "__main__":
    main()
