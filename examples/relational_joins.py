#!/usr/bin/env python3
"""Relational join optimization with the same enumerator.

Section I of the paper: "Our optimization algorithms are generic enough
to be applied to relational query optimization."  This example takes a
TPC-H-flavoured star/snowflake join query — tables joined on key
columns — encodes each table as a pattern whose 'variables' are its
join columns, and runs TD-CMD / TD-CMDP over the resulting join graph.
The k-ary bushy enumeration, the cost model, and the heuristics all
apply unchanged; only the leaf statistics differ.

Run:  python examples/relational_joins.py
"""

from dataclasses import dataclass
from typing import FrozenSet

from repro.core import (
    CardinalityEstimator,
    JoinGraph,
    PatternStatistics,
    PlanBuilder,
    PrunedTopDownEnumerator,
    StatisticsCatalog,
    TopDownEnumerator,
)
from repro.rdf.terms import Variable
from repro.sparql.ast import BGPQuery


@dataclass(frozen=True)
class Table:
    """A relation, duck-typing the pattern interface the core needs."""

    table_name: str
    columns: FrozenSet[Variable]
    rows: float

    def variables(self) -> FrozenSet[Variable]:
        return self.columns

    def __str__(self) -> str:
        return self.table_name


def column(name: str) -> Variable:
    return Variable(name)


def main() -> None:
    # a TPC-H-ish snowflake: lineitem at the center
    orderkey = column("orderkey")
    partkey = column("partkey")
    suppkey = column("suppkey")
    custkey = column("custkey")
    nationkey = column("nationkey")

    tables = [
        Table("lineitem", frozenset({orderkey, partkey, suppkey}), 6_000_000),
        Table("orders", frozenset({orderkey, custkey}), 1_500_000),
        Table("customer", frozenset({custkey, nationkey}), 150_000),
        Table("part", frozenset({partkey}), 200_000),
        Table("supplier", frozenset({suppkey, nationkey}), 10_000),
        Table("nation", frozenset({nationkey}), 25),
    ]
    query = BGPQuery(tables, name="tpch-snowflake")
    join_graph = JoinGraph(query)
    print(f"relational join graph: {join_graph}")
    print(f"join columns: {[str(v) for v in join_graph.join_variables]}")

    # distinct-value statistics per join column
    distinct = {
        "lineitem": {orderkey: 1_500_000, partkey: 200_000, suppkey: 10_000},
        "orders": {orderkey: 1_500_000, custkey: 100_000},
        "customer": {custkey: 150_000, nationkey: 25},
        "part": {partkey: 200_000},
        "supplier": {suppkey: 10_000, nationkey: 25},
        "nation": {nationkey: 25},
    }
    catalog = StatisticsCatalog(
        query,
        [
            PatternStatistics(
                cardinality=t.rows,
                bindings={v: float(c) for v, c in distinct[t.table_name].items()},
            )
            for t in tables
        ],
    )
    builder = PlanBuilder(join_graph, CardinalityEstimator(join_graph, catalog))

    for optimizer_class in (TopDownEnumerator, PrunedTopDownEnumerator):
        result = optimizer_class(join_graph, builder).optimize()
        print(
            f"\n{result.algorithm}: cost={result.cost:,.0f} "
            f"({result.stats.plans_considered} plans, "
            f"{result.elapsed_seconds * 1000:.1f} ms)"
        )
        print(result.plan.describe())

    print(
        "\nreading the output: the enumerator produces a k-ary bushy plan "
        "over relations exactly as over triple patterns — small dimension "
        "tables are broadcast, the big fact-table joins are repartitioned."
    )


if __name__ == "__main__":
    main()
