"""repro — reproduction of "Parallel SPARQL Query Optimization" (ICDE 2017).

The package implements the paper's partition-aware optimizer for
parallel SPARQL engines (TD-CMD / TD-CMDP / HGR-TD-CMD / TD-Auto), the
baselines it compares against (MSC, DP-Bushy, a TriAD-style binary DP),
the generic RDF data partitioning model with four concrete methods, a
simulated parallel execution engine, and the paper's workloads.

Quickstart::

    from repro import parse_query, optimize
    from repro.partitioning import HashSubjectObject

    query = parse_query(\"\"\"
        SELECT ?x ?y WHERE {
            ?x <http://example.org/worksFor> ?y .
            ?y <http://example.org/partOf> <http://example.org/u0> .
        }
    \"\"\")
    result = optimize(query, partitioning=HashSubjectObject())
    print(result.plan.describe())
"""

from .core import (
    AbortCause,
    CancellationToken,
    CostParameters,
    Deadline,
    JoinAlgorithm,
    JoinGraph,
    ManualClock,
    OptimizationResult,
    OptimizationTimeout,
    OptimizeOptions,
    Optimizer,
    PlanCache,
    QueryAborted,
    QueryBudget,
    QueryShape,
    StatisticsCatalog,
    SteppingClock,
    optimize,
    optimize_many,
    optimize_query_parallel,
)
from .rdf import Dataset, IRI, Literal, RDFGraph, Triple, Variable, triple
from .sparql import BGPQuery, QueryGraph, TriplePattern, parse_query

__version__ = "1.0.0"

__all__ = [
    "optimize",
    "OptimizeOptions",
    "Optimizer",
    "optimize_many",
    "optimize_query_parallel",
    "PlanCache",
    "parse_query",
    "BGPQuery",
    "TriplePattern",
    "QueryGraph",
    "JoinGraph",
    "QueryShape",
    "JoinAlgorithm",
    "OptimizationResult",
    "OptimizationTimeout",
    "QueryBudget",
    "Deadline",
    "CancellationToken",
    "QueryAborted",
    "AbortCause",
    "ManualClock",
    "SteppingClock",
    "StatisticsCatalog",
    "CostParameters",
    "Dataset",
    "RDFGraph",
    "Triple",
    "triple",
    "IRI",
    "Literal",
    "Variable",
    "__version__",
]
