"""Command-line interface: optimize and run SPARQL queries.

Usage::

    python -m repro optimize query.sparql --data data.nt --algorithm td-auto
    python -m repro run query.sparql --data data.nt --partitioning path-bmc
    python -m repro experiments table4
    python -m repro demo

``optimize`` prints the chosen plan (text, ``--json``, or ``--dot``);
``run`` also executes it on a simulated cluster and prints bindings;
``experiments`` regenerates one of the paper's tables/figures;
``demo`` runs the whole pipeline on the built-in LUBM-like workload.

Throughput flags: ``--jobs N`` splits the td-cmd/td-cmdp root division
space across N worker processes; ``optimize --plan-cache PATH`` keeps a
persistent cross-query plan cache at PATH, so repeating a query
short-circuits enumeration entirely.

Static analysis (see ``docs/ANALYSIS.md``)::

    python -m repro lint src/repro
    python -m repro verify-plan plan.json query.sparql
    python -m repro optimize query.sparql --verify
    python -m repro run query.sparql --data data.nt --verify

``--verify`` runs the plan-invariant verifier on every emitted plan
(including plan-cache hits, which are invalidated and re-optimized if
the rebuilt plan fails) and, for ``run``, gates execution on it.

Observability (see ``docs/OBSERVABILITY.md``)::

    python -m repro trace examples
    python -m repro trace L3 --run --output l3.json
    python -m repro optimize query.sparql --trace trace.json
    python -m repro run query.sparql --data data.nt --trace trace.json

``trace`` optimizes (and with ``--run`` executes) a query with tracing
on and exports the span tree — Chrome trace-event JSON by default
(loadable in Perfetto / ``chrome://tracing``), ``--format jsonl`` or
``--format flame`` otherwise — plus a terminal flame summary.  The
``--trace PATH`` flag on ``optimize`` / ``run`` / ``demo`` does the
same export for those commands.

Lifecycle governance (see ``docs/RESILIENCE.md``)::

    python -m repro run query.sparql --data data.nt --deadline 5
    python -m repro run query.sparql --data data.nt --row-budget 100000
    python -m repro optimize query.sparql --deadline 1 --anytime

``--deadline`` bounds the whole query lifecycle in seconds and
``--row-budget`` caps the intermediate rows execution may produce; a
breach prints a structured abort report and exits with status 4.  With
``--anytime``, an optimizer deadline degrades to the best complete
plan found so far instead of failing.  ``--timeout`` remains as a
deprecated alias for ``--deadline``.

Adaptive repartitioning (see ``docs/PERFORMANCE.md``)::

    python -m repro run query.sparql --data data.nt --adapt --adapt-every 1

``--adapt`` turns the run into a feedback loop: execution metrics feed
a :class:`~repro.partitioning.adaptive.RepartitioningAdvisor`, and
every ``--adapt-every`` observations the session migrates/replicates
hot fragments on the cluster under ``--replication-budget`` (a
fraction of the dataset's triples), printing an ``# adaptive:`` footer
when a round ran.

Every subcommand funnels its flags through one
:class:`~repro.core.session.OptimizeOptions` builder (see
``docs/API.md`` for the flag-to-field mapping), so the CLI and the
session API cannot drift apart.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis import InvariantViolation
from .core import QueryAborted, StatisticsCatalog
from .core.serialize import plan_to_dot, plan_to_json
from .core.session import OptimizeOptions, Optimizer
from .engine import Cluster, Executor, engine_specs
from .partitioning import (
    HashSubjectObject,
    PathBMC,
    SemanticHash,
    UndirectedOneHop,
)
from .rdf import Dataset, load_ntriples
from .sparql import parse_query

PARTITIONINGS = {
    "hash-so": HashSubjectObject,
    "2f": lambda: SemanticHash(2),
    "path-bmc": PathBMC,
    "un-1-hop": UndirectedOneHop,
}


def _load_query(path: str):
    text = Path(path).read_text(encoding="utf-8")
    return parse_query(text, name=Path(path).stem)


def _load_dataset(path: str | None) -> Dataset | None:
    if path is None:
        return None
    return Dataset(load_ntriples(path), name=Path(path).stem)


def _partitioning(name: str | None):
    if name is None:
        return None
    try:
        return PARTITIONINGS[name]()
    except KeyError:
        raise SystemExit(
            f"unknown partitioning {name!r}; choose from {sorted(PARTITIONINGS)}"
        )


def build_options(args: argparse.Namespace, **overrides) -> OptimizeOptions:
    """The one flag-to-:class:`OptimizeOptions` mapping every command uses.

    Flags a subcommand does not define fall back to the option defaults;
    *overrides* win over flags (e.g. ``run`` forces a partitioning and
    explicit statistics).  The full mapping is documented in
    ``docs/API.md``.
    """
    fields = dict(
        algorithm=getattr(args, "algorithm", None) or "td-auto",
        partitioning=_partitioning(getattr(args, "partitioning", None)),
        # --timeout is the deprecated alias; OptimizeOptions folds it
        # into deadline_seconds (and warns once) when --deadline is unset
        timeout_seconds=getattr(args, "timeout", None),
        deadline_seconds=getattr(args, "deadline", None),
        row_budget=getattr(args, "row_budget", None),
        anytime=getattr(args, "anytime", False),
        seed=getattr(args, "seed", 0),
        jobs=getattr(args, "jobs", 1),
        parallel_strategy=getattr(args, "parallel_strategy", None) or "memo-shard",
        verify=getattr(args, "verify", False),
        trace=getattr(args, "trace", None) is not None,
        engine=getattr(args, "engine", "reference"),
        adapt=getattr(args, "adapt", False),
        adapt_every=getattr(args, "adapt_every", 16),
        replication_budget=getattr(args, "replication_budget", 0.1),
    )
    fields.update(overrides)
    return OptimizeOptions(**fields)


def _make_session(args: argparse.Namespace, **overrides) -> Optimizer:
    """Build the :class:`Optimizer` session for one CLI invocation.

    An unknown algorithm raises :class:`ValueError` from the session
    constructor, exactly as the legacy facade did per call.
    """
    return Optimizer(build_options(args, **overrides))


def _export_trace(session: Optimizer, path: str | None) -> None:
    """Write the session's trace as Chrome trace-event JSON to *path*."""
    if path is None or session.tracer is None:
        return
    from .observability import export

    data = export.to_chrome_trace(session.tracer)
    Path(path).write_text(json.dumps(data), encoding="utf-8")
    print(
        f"# trace: {len(session.tracer)} spans -> {path}",
        file=sys.stderr,
    )


def cmd_optimize(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    dataset = _load_dataset(args.data)
    cache = None
    cache_path = None
    if args.plan_cache:
        from .core import PlanCache

        cache_path = Path(args.plan_cache)
        cache = PlanCache.load(cache_path) if cache_path.exists() else PlanCache()
    session = _make_session(args, dataset=dataset, plan_cache=cache)
    try:
        result = session.optimize(query)
    except InvariantViolation as violation:
        raise SystemExit(f"plan verification failed: {violation.describe()}")
    if args.verify:
        print("# verify: plan passed invariant verification", file=sys.stderr)
    print(
        f"# {result.algorithm}: cost={result.cost:.2f} "
        f"plans={result.stats.plans_considered} "
        f"time={result.elapsed_seconds * 1000:.1f}ms",
        file=sys.stderr,
    )
    if result.stats.workers > 1:
        print(
            f"# workers={result.stats.workers} "
            f"speedup={result.stats.speedup:.2f} "
            f"balance={result.stats.worker_balance:.2f} "
            f"steals={result.stats.steals} "
            f"per_worker_subqueries={result.stats.per_worker_subqueries}",
            file=sys.stderr,
        )
    if cache is not None and cache_path is not None:
        cache.save(cache_path)
        print(
            f"# plan-cache: {'hit' if cache.stats.hits else 'miss'} "
            f"({len(cache)} entries at {cache_path})",
            file=sys.stderr,
        )
    if args.json:
        print(plan_to_json(result.plan, indent=2))
    elif args.dot:
        print(plan_to_dot(result.plan, name=query.name or "plan"))
    else:
        print(result.plan.describe())
    _export_trace(session, args.trace)
    return 0


def _fault_setup(args: argparse.Namespace):
    """Build (injector, policy) from the run subcommand's fault flags."""
    from .engine import DEFAULT_RETRY_POLICY, FaultInjector, RetryPolicy

    policy = DEFAULT_RETRY_POLICY
    if args.max_retries is not None:
        policy = RetryPolicy(max_retries=args.max_retries)
    if args.fault_rate <= 0:
        return None, policy
    return FaultInjector(args.fault_rate, seed=args.fault_seed), policy


def cmd_run(args: argparse.Namespace) -> int:
    query = _load_query(args.query)
    dataset = _load_dataset(args.data)
    if dataset is None:
        raise SystemExit("run requires --data")
    method = _partitioning(args.partitioning) or HashSubjectObject()
    statistics = StatisticsCatalog.from_dataset(query, dataset)
    session = _make_session(args, statistics=statistics, partitioning=method)
    # one budget spans the whole lifecycle: the optimizer and the
    # executor charge the same envelope
    budget = session.budget_for(query)
    try:
        result = session.optimize(query, budget=budget)
    except InvariantViolation as violation:
        raise SystemExit(f"plan verification failed: {violation.describe()}")
    except QueryAborted as abort:
        print(abort.describe(), file=sys.stderr)
        return 4
    if result.stats.degraded:
        print(
            f"# degraded: {result.algorithm} ({result.stats.degradation_reason})",
            file=sys.stderr,
        )
    verifier = None
    if args.verify:
        from .analysis import PlanVerifier, VerificationContext, profile_for_algorithm

        context = VerificationContext.for_query(
            query, statistics=statistics, partitioning=method
        )
        verifier = PlanVerifier(
            context.with_profile(profile_for_algorithm(result.algorithm))
        )
        print("# verify: plan passed invariant verification", file=sys.stderr)
    if session.options.adapt:
        from .partitioning import AdaptiveCluster

        cluster: Cluster = AdaptiveCluster.build(
            dataset, method, cluster_size=args.workers
        )
        session.bind_cluster(cluster)
    else:
        cluster = Cluster.build(dataset, method, cluster_size=args.workers)
    injector, policy = _fault_setup(args)
    if args.explain:
        from .engine import explain

        relation, report = explain(
            result.plan,
            cluster,
            query,
            fault_injector=injector,
            retry_policy=policy,
            engine=session.options.engine,
            limit=args.limit,
        )
        print(report.render(), file=sys.stderr)
    else:
        executor = Executor(
            cluster,
            fault_injector=injector,
            retry_policy=policy,
            plan_verifier=verifier,
            engine=session.options.engine,
        )
        try:
            with session.tracing():
                relation, metrics = executor.execute(
                    result.plan, query, budget=budget, limit=args.limit
                )
        except QueryAborted as abort:
            print(abort.describe(), file=sys.stderr)
            _export_trace(session, args.trace)
            return 4
        for key, value in metrics.summary().items():
            if key == "shipped_by_predicate":
                breakdown = ", ".join(
                    f"{predicate}={count}" for predicate, count in value.items()
                )
                print(f"# {key}: {breakdown}", file=sys.stderr)
            else:
                print(f"# {key}: {value}", file=sys.stderr)
        report = session.observe_execution(query, metrics, budget=budget)
        if report is not None:
            print(
                f"# adaptive: applied={len(report.applied)} "
                f"skipped={len(report.skipped)} "
                f"migrations={report.migrations} "
                f"replicated_triples={report.replicated_triples} "
                f"epoch={report.epoch}",
                file=sys.stderr,
            )
        if metrics.limit_pushdown:
            print(
                f"# limit-pushdown: stream stopped after {len(relation)} "
                f"row(s)",
                file=sys.stderr,
            )
        if metrics.fault_injection_enabled and cluster.failed_workers:
            print(f"# failed_workers: {cluster.failed_workers}", file=sys.stderr)
    variables = list(relation.variables)
    print("\t".join(str(v) for v in variables))
    # --limit caps execution above; the print cap below only limits
    # terminal output when no explicit limit was requested
    print_cap = args.limit if args.limit is not None else 20
    for row in sorted(relation.rows, key=str)[:print_cap]:
        print("\t".join(str(term) for term in row))
    if len(relation) > print_cap:
        print(f"# ... {len(relation) - print_cap} more rows", file=sys.stderr)
    _export_trace(session, args.trace)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.lint import main as lint_main

    return lint_main(args.paths, select=args.select)


def cmd_check_concurrency(args: argparse.Namespace) -> int:
    from .analysis.concurrency import main as concurrency_main

    return concurrency_main(args.paths, select=args.select)


def cmd_verify_plan(args: argparse.Namespace) -> int:
    from .analysis import PlanVerifier, VerificationContext
    from .core.serialize import plan_from_dict

    query = _load_query(args.query)
    data = json.loads(Path(args.plan).read_text(encoding="utf-8"))
    try:
        plan = plan_from_dict(data, query)
    except (KeyError, ValueError, TypeError) as error:
        raise SystemExit(f"cannot rebuild plan from {args.plan}: {error}")
    options = build_options(args, dataset=_load_dataset(args.data))
    context = VerificationContext.for_query(
        query,
        dataset=options.dataset,
        partitioning=options.partitioning,
        algorithm=args.algorithm,
        seed=options.seed,
        structure_only=args.structure_only,
    )
    report = PlanVerifier(context).verify(plan)
    print(report.render())
    return 0 if report.ok else 1


#: the queries ``trace examples`` sweeps: one star, one tree, one dense
#: (all LUBM, so one generated dataset serves all three)
EXAMPLE_QUERIES = ("L1", "L4", "L7")


def _trace_targets(args: argparse.Namespace):
    """Resolve the trace target into (name, query, statistics, dataset).

    Accepted targets: ``examples`` (the built-in LUBM sweep), a
    benchmark query name (``L1``–``L10``, ``U1``–``U5``), or a path to
    a SPARQL file (statistics from ``--data`` or the seed).
    """
    from .experiments.benchmark_queries import benchmark_queries

    target = args.target
    if target == "examples":
        queries = benchmark_queries()
        return [
            (name, queries[name].query, queries[name].statistics,
             queries[name].dataset)
            for name in EXAMPLE_QUERIES
        ]
    if target in benchmark_queries():
        bq = benchmark_queries()[target]
        return [(bq.name, bq.query, bq.statistics, bq.dataset)]
    if Path(target).exists():
        query = _load_query(target)
        return [(query.name or target, query, None, _load_dataset(args.data))]
    raise SystemExit(
        f"unknown trace target {target!r}: expected 'examples', a benchmark "
        f"query name (L1-L10, U1-U5), or a SPARQL file path"
    )


def cmd_trace(args: argparse.Namespace) -> int:
    from .observability import export

    targets = _trace_targets(args)
    method = _partitioning(args.partitioning) or HashSubjectObject()
    session = _make_session(args, trace=True, partitioning=method)
    for name, query, statistics, dataset in targets:
        if statistics is not None:
            session.prime_statistics(query, statistics)
        try:
            result = session.optimize(query)
        except InvariantViolation as violation:
            raise SystemExit(f"plan verification failed: {violation.describe()}")
        print(
            f"# {name}: {result.algorithm} cost={result.cost:.2f} "
            f"plans={result.stats.plans_considered} "
            f"time={result.elapsed_seconds * 1000:.1f}ms",
            file=sys.stderr,
        )
        if args.run:
            if dataset is None:
                raise SystemExit("trace --run on a query file requires --data")
            cluster = Cluster.build(dataset, method, cluster_size=args.workers)
            with session.tracing():
                relation, metrics = Executor(
                    cluster, engine=session.options.engine
                ).execute(result.plan, query)
            print(
                f"# {name}: rows={len(relation)} "
                f"shipped={metrics.total_tuples_shipped} "
                f"simulated_time={metrics.critical_path_cost:.2f}",
                file=sys.stderr,
            )
    tracer = session.tracer
    assert tracer is not None  # trace=True above
    optimize_roots = [sp for sp in tracer.roots() if sp.name == "optimize"]
    total = sum(root.duration for root in optimize_roots)
    if optimize_roots and total > 0:
        covered = sum(
            export.span_coverage(tracer, root) * root.duration
            for root in optimize_roots
        )
        print(
            f"# coverage: {covered / total * 100:.1f}% of optimize wall-clock "
            f"spanned ({len(optimize_roots)} queries)",
            file=sys.stderr,
        )
    output = Path(args.output)
    if args.format == "chrome":
        output.write_text(
            json.dumps(export.to_chrome_trace(tracer)), encoding="utf-8"
        )
    elif args.format == "jsonl":
        output.write_text(export.to_jsonl(tracer) + "\n", encoding="utf-8")
    else:
        output.write_text(export.flame_summary(tracer) + "\n", encoding="utf-8")
    print(
        f"# trace: {len(tracer)} spans ({args.format}) -> {output}",
        file=sys.stderr,
    )
    print(export.flame_summary(tracer))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from . import experiments

    drivers = {
        "table3": experiments.table3,
        "table4": experiments.table4,
        "table5": experiments.table5,
        "table6": experiments.table6,
        "table7": experiments.table7,
        "fig6": experiments.fig6,
        "fig7": experiments.fig7,
        "fig8": experiments.fig8,
    }
    if args.name not in drivers:
        raise SystemExit(f"unknown experiment; choose from {sorted(drivers)}")
    print(drivers[args.name].report())
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from .workloads import generate_lubm, lubm_query

    dataset = generate_lubm()
    query = lubm_query(args.query)
    method = _partitioning(args.partitioning) or HashSubjectObject()
    session = _make_session(
        args,
        statistics=StatisticsCatalog.from_dataset(query, dataset),
        partitioning=method,
    )
    result = session.optimize(query)
    print(f"# dataset: {dataset}", file=sys.stderr)
    print(result.plan.describe())
    cluster = Cluster.build(dataset, method, cluster_size=args.workers)
    with session.tracing():
        relation, metrics = Executor(
            cluster, engine=session.options.engine
        ).execute(result.plan, query)
    print(f"# rows={len(relation)} shipped={metrics.total_tuples_shipped} "
          f"simulated_time={metrics.critical_path_cost:.2f}", file=sys.stderr)
    _export_trace(session, args.trace)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Parallel SPARQL query optimization (ICDE 2017)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--algorithm", default="td-auto")
    common.add_argument("--partitioning", choices=sorted(PARTITIONINGS), default=None)
    common.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="DEPRECATED alias for --deadline, removed in 2.0 "
        "(optimizer-only in older releases; now folds into the "
        "lifecycle deadline)",
    )
    common.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds for the whole query lifecycle "
        "(optimization and execution); a breach aborts with a structured "
        "report (exit status 4)",
    )
    common.add_argument(
        "--row-budget",
        type=int,
        default=None,
        dest="row_budget",
        help="ceiling on intermediate rows execution may produce; a "
        "breach aborts with a structured report (exit status 4)",
    )
    common.add_argument(
        "--anytime",
        action="store_true",
        help="degrade gracefully when the deadline fires during "
        "optimization: return the best complete plan found so far "
        "(greedy fallback if none) instead of failing",
    )
    common.add_argument("--workers", type=int, default=10)
    common.add_argument("--seed", type=int, default=0)
    common.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="optimizer worker processes (td-cmd/td-cmdp shard their "
        "DP search across them; other algorithms run serially)",
    )
    common.add_argument(
        "--parallel-strategy",
        choices=("memo-shard", "root-slice"),
        default="memo-shard",
        help="intra-query parallel scheme for --jobs > 1: 'memo-shard' "
        "(popcount-tiered memo sharding with work stealing) or "
        "'root-slice' (legacy root-division round-robin)",
    )
    common.add_argument(
        "--verify",
        action="store_true",
        help="run the plan-invariant verifier on every emitted plan "
        "(cache hits are re-checked; corrupt entries become misses)",
    )
    common.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="collect spans + metrics and export a Chrome trace-event "
        "JSON file (Perfetto-loadable) to PATH",
    )
    # choices and help are generated from the engine registry, so a
    # newly registered backend shows up here without CLI edits
    common.add_argument(
        "--engine",
        choices=tuple(spec.name for spec in engine_specs()),
        default="reference",
        help="execution engine for plan execution: "
        + "; ".join(
            f"'{spec.name}' ({spec.description})" for spec in engine_specs()
        ),
    )

    p_opt = sub.add_parser("optimize", parents=[common], help="optimize a query file")
    p_opt.add_argument("query")
    p_opt.add_argument("--data", help="N-Triples file for statistics")
    p_opt.add_argument("--json", action="store_true", help="emit the plan as JSON")
    p_opt.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p_opt.add_argument(
        "--plan-cache",
        metavar="PATH",
        default=None,
        help="persistent cross-query plan cache file; a repeated query "
        "skips enumeration entirely",
    )
    p_opt.set_defaults(func=cmd_optimize)

    p_run = sub.add_parser("run", parents=[common], help="optimize and execute")
    p_run.add_argument("query")
    p_run.add_argument("--data", required=True, help="N-Triples file")
    p_run.add_argument(
        "--limit",
        type=int,
        default=None,
        help="cap the result at N rows: the pipelined engine pushes the "
        "limit into the stream and stops executing early; materialized "
        "engines truncate the final result (unset: no execution limit, "
        "20 rows printed)",
    )
    p_run.add_argument(
        "--explain",
        action="store_true",
        help="print estimated-vs-measured per operator",
    )
    p_run.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-operator-attempt fault probability (0 disables injection)",
    )
    p_run.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault injector",
    )
    p_run.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retry budget per operator before the run aborts (default 3)",
    )
    p_run.add_argument(
        "--adapt",
        action="store_true",
        help="enable workload-adaptive repartitioning: the session mines "
        "hot predicates and recurring join shapes from execution metrics "
        "and migrates/replicates fragments under the replication budget",
    )
    p_run.add_argument(
        "--adapt-every",
        type=int,
        default=16,
        dest="adapt_every",
        help="run an adaptation round every N observed executions "
        "(default 16; use 1 to adapt after every query)",
    )
    p_run.add_argument(
        "--replication-budget",
        type=float,
        default=0.1,
        dest="replication_budget",
        help="ceiling on adaptive replication as a fraction of the "
        "dataset's triples (default 0.1)",
    )
    p_run.set_defaults(func=cmd_run)

    p_lint = sub.add_parser(
        "lint", help="run the repo's determinism/correctness lint"
    )
    p_lint.add_argument("paths", nargs="+", help="files or directories to lint")
    p_lint.add_argument(
        "--select",
        nargs="+",
        metavar="CODE",
        default=None,
        help="restrict to specific rules (e.g. LINT001 LINT003)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_conc = sub.add_parser(
        "check-concurrency",
        help="run the interprocedural concurrency/process-safety "
        "analyzer (lock discipline, pickle safety, poll reachability)",
    )
    p_conc.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    p_conc.add_argument(
        "--select",
        nargs="+",
        metavar="CODE",
        default=None,
        help="restrict to specific rules (e.g. LINT010 LINT014)",
    )
    p_conc.set_defaults(func=cmd_check_concurrency)

    p_verify = sub.add_parser(
        "verify-plan", help="check a serialized plan against the paper invariants"
    )
    p_verify.add_argument("plan", help="plan JSON file (from optimize --json)")
    p_verify.add_argument("query", help="the query the plan was optimized for")
    p_verify.add_argument("--data", help="N-Triples file for statistics")
    p_verify.add_argument(
        "--partitioning", choices=sorted(PARTITIONINGS), default=None
    )
    p_verify.add_argument(
        "--algorithm",
        default=None,
        help="algorithm label the plan came from (enables Rule-2 checks "
        "for td-cmdp)",
    )
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument(
        "--structure-only",
        action="store_true",
        help="skip cost-model re-derivation (no statistics needed)",
    )
    p_verify.set_defaults(func=cmd_verify_plan)

    p_trace = sub.add_parser(
        "trace",
        parents=[common],
        help="optimize (and optionally execute) with tracing on; "
        "export the span tree",
    )
    p_trace.add_argument(
        "target",
        help="'examples' (built-in LUBM sweep), a benchmark query name "
        "(L1-L10, U1-U5), or a SPARQL file path",
    )
    p_trace.add_argument("--data", help="N-Triples file (file targets only)")
    p_trace.add_argument(
        "--output",
        default="trace.json",
        help="output file (default: trace.json)",
    )
    p_trace.add_argument(
        "--format",
        choices=("chrome", "jsonl", "flame"),
        default="chrome",
        help="export format (default: chrome trace-event JSON)",
    )
    p_trace.add_argument(
        "--run",
        action="store_true",
        help="also execute the plan on the simulated cluster "
        "(execution spans join the trace)",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_exp = sub.add_parser("experiments", help="regenerate a paper table/figure")
    p_exp.add_argument("name")
    p_exp.set_defaults(func=cmd_experiments)

    p_demo = sub.add_parser("demo", parents=[common], help="built-in LUBM demo")
    p_demo.add_argument("--query", default="L7")
    p_demo.set_defaults(func=cmd_demo)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
