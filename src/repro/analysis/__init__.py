"""Static analysis for the optimizer and the codebase.

Two halves, both *beside* the engine rather than inside it (the
shaclAPI pattern):

* :mod:`.plan_verifier` / :mod:`.invariants` — a plan-invariant
  verifier that walks any emitted plan tree and asserts the paper's
  structural guarantees (cbd/cmd connectivity of Algorithms 2–3, Rules
  1–3 of TD-CMDP, partition-aware local queries, cost-model agreement)
  without executing the plan.
* :mod:`.lint` — an AST-based lint with repo-specific determinism and
  correctness rules (LINT001–LINT004), catching the bug class that PR 2
  shipped and had to fix (hash-seed-ordered ``frozenset`` iteration).
"""

from .invariants import (
    ChildCoverageGap,
    CostMismatch,
    DisconnectedDivision,
    InvariantViolation,
    KAryBroadcast,
    MalformedPlanNode,
    NonCoLocatedLocalQuery,
    OverlappingChildBitsets,
    VariableBindingViolation,
    VerificationReport,
)
from .plan_verifier import (
    PlanVerifier,
    VerificationContext,
    profile_for_algorithm,
    verify_result,
)

__all__ = [
    "InvariantViolation",
    "MalformedPlanNode",
    "DisconnectedDivision",
    "OverlappingChildBitsets",
    "ChildCoverageGap",
    "KAryBroadcast",
    "NonCoLocatedLocalQuery",
    "CostMismatch",
    "VariableBindingViolation",
    "VerificationReport",
    "PlanVerifier",
    "VerificationContext",
    "verify_result",
    "profile_for_algorithm",
]
