"""Interprocedural concurrency & process-safety analyzer.

Four passes over the whole ``src/repro`` tree (not per-file like the
determinism lint — lock discipline and poll reachability are
cross-function properties):

======== ==============================================================
Code     Property
======== ==============================================================
LINT010  ``#: guarded-by:`` fields only touched under their lock
LINT011  no blocking call (``.result``/``.recv``/``queue.get``/…)
         while holding a lock
LINT012  nothing unpicklable reaches a process boundary
LINT013  worker entry code does not read mutated module globals
LINT014  every hot loop reachable from ``Optimizer.optimize`` /
         ``Executor.execute`` polls the query budget
======== ==============================================================

CLI: ``python -m repro check-concurrency [paths]``.  Suppression uses
the same per-line grammar as the determinism lint:
``# lint: disable=LINT010 <justification>``.

The dynamic lock-order race detector lives in :mod:`.runtime` and is
imported lazily — production code must never import this package.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..lint.diagnostics import (
    Diagnostic,
    Severity,
    is_suppressed,
    parse_suppressions,
    render_all,
    sort_key,
)
from ..lint.runner import iter_python_files
from .callgraph import build_call_graph
from .cancellation import check_cancellation_polls
from .guards import check_lock_discipline
from .model import Project, build_project
from .pickle_safety import check_pickle_safety, check_worker_globals

#: code → one-line summary (docs + ``--select`` validation)
CONCURRENCY_RULES: Dict[str, str] = {
    "LINT010": "guarded-by field accessed without holding its declared lock",
    "LINT011": "potentially blocking call while holding a lock",
    "LINT012": "unpicklable value reaches a process boundary",
    "LINT013": "worker entry path reads a mutated module global",
    "LINT014": "hot loop reachable from optimize/execute never polls the budget",
}


def analyze_files(
    files: Sequence[Tuple[str, str]], select: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    """Analyze ``(path, source)`` pairs; suppressions honored per file.

    This is the unit-test surface: fixtures hand in a tiny multi-file
    project under pretend paths, exactly like the determinism lint's
    ``check_source``.
    """
    wanted = set(select) if select is not None else None
    findings: List[Diagnostic] = []
    # a file that does not parse is one finding, not a crash
    parsed: List[Tuple[str, str]] = []
    for path, source in files:
        try:
            ast.parse(source, filename=path)
        except SyntaxError as error:
            findings.append(
                Diagnostic(
                    path=path,
                    line=error.lineno or 1,
                    column=error.offset or 1,
                    code="LINT000",
                    severity=Severity.ERROR,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        parsed.append((path, source))

    project = build_project(parsed)
    graph = build_call_graph(project)
    for pass_findings in (
        check_lock_discipline(project),
        check_pickle_safety(project),
        check_worker_globals(project),
        check_cancellation_polls(project, graph),
    ):
        findings.extend(pass_findings)

    if wanted is not None:
        findings = [f for f in findings if f.code in wanted or f.code == "LINT000"]

    suppressions_by_path = {
        path: parse_suppressions(source) for path, source in parsed
    }
    kept = [
        f
        for f in findings
        if not is_suppressed(f, suppressions_by_path.get(f.path, {}))
    ]
    return sorted(kept, key=sort_key)


def check_concurrency_paths(
    paths: Sequence[Union[str, Path]], select: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    """Analyze every ``.py`` file under *paths* as one project."""
    files = [
        (str(file), file.read_text(encoding="utf-8"))
        for file in iter_python_files(paths)
    ]
    return analyze_files(files, select)


def main(paths: Sequence[str], select: Optional[Iterable[str]] = None) -> int:
    """CLI entry: print findings, return 0 (clean) or 1 (findings)."""
    findings = check_concurrency_paths(paths, select)
    if findings:
        print(render_all(findings))
        errors = sum(1 for f in findings if f.severity is Severity.ERROR)
        warnings = len(findings) - errors
        print(f"check-concurrency: {errors} error(s), {warnings} warning(s)")
        return 1
    files = len(iter_python_files(paths))
    print(f"check-concurrency: {files} file(s) clean")
    return 0
