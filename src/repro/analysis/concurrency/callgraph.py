"""May-call graph over a :class:`~.model.Project`.

Resolution is deliberately *may*-biased: a call we cannot pin to one
target resolves to every plausible definer (same-name methods across
the project).  For reachability properties (LINT014: "every loop on a
path from ``optimize`` must poll") over-approximating callees means we
check more loops, never fewer — the safe direction for an analyzer
whose job is to stop hot loops from silently escaping the deadline
contract.

Resolved call kinds:

* ``f(...)``            → same-module function, ``from m import f``
  target, or a known class's ``__init__``
* ``self.m(...)``       → ``m`` across the enclosing class hierarchy
* ``mod.f(...)``        → ``f`` in the imported module
* ``obj.m(...)``        → every project method named ``m`` (fallback)
* ``pool.submit(f, …)`` / ``Process(target=f)`` → ``f`` (the callable
  escapes into a worker; treated as a call edge)
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .model import ClassInfo, FunctionInfo, ModuleInfo, Project

FuncKey = Tuple[str, str]

#: call-sites whose first argument (or ``target=``) is a callable that
#: will run elsewhere — still an edge for reachability purposes
_CALLABLE_SINKS = frozenset({"submit", "map", "Process", "Thread", "apply_async"})


@dataclass
class CallGraph:
    """Adjacency over function keys plus reverse reachability helpers."""

    project: Project
    edges: Dict[FuncKey, Set[FuncKey]] = field(default_factory=dict)

    def callees(self, key: FuncKey) -> Set[FuncKey]:
        """The resolved may-call targets of one function (empty if leaf)."""
        return self.edges.get(key, set())

    def reachable_from(self, roots: List[FuncKey]) -> Set[FuncKey]:
        """Every function transitively callable from *roots* (inclusive)."""
        seen: Set[FuncKey] = set()
        frontier = [r for r in roots]
        while frontier:
            key = frontier.pop()
            if key in seen:
                continue
            seen.add(key)
            frontier.extend(self.edges.get(key, ()))
        return seen

    def transitive_closure_of(self, predicate_keys: Set[FuncKey]) -> Set[FuncKey]:
        """Functions that reach a key in *predicate_keys* (inclusive).

        Fixed point over the reversed graph: used to compute "polls the
        budget transitively" for LINT014.
        """
        closure = set(predicate_keys)
        changed = True
        while changed:
            changed = False
            for caller, callees in self.edges.items():
                if caller not in closure and callees & closure:
                    closure.add(caller)
                    changed = True
        return closure


def _resolve_name_call(
    name: str, module: ModuleInfo, project: Project
) -> List[FuncKey]:
    """Resolve a bare-name call/reference inside *module*."""
    # same-module function
    if name in module.functions:
        return [(module.modname, name)]
    # same-module class instantiation → __init__
    if name in module.classes:
        cls = module.classes[name]
        if "__init__" in cls.methods:
            return [(module.modname, f"{name}.__init__")]
        return []
    # from-import: resolve in the source module (absolute or package-relative)
    if name in module.from_imports:
        source_mod, original = module.from_imports[name]
        for candidate in _candidate_modules(source_mod, module.modname, project):
            resolved = _resolve_name_call(original, candidate, project)
            if resolved:
                return resolved
        # fall back to any project class/function with the original name
        for cls in project.classes_by_name.get(original, []):
            if "__init__" in cls.methods:
                return [(cls.module, f"{cls.name}.__init__")]
    return []


def _candidate_modules(
    source_mod: str, importer: str, project: Project
) -> List[ModuleInfo]:
    """Modules that ``from source_mod import ...`` may refer to."""
    candidates = []
    if source_mod in project.modules:
        candidates.append(project.modules[source_mod])
    # relative imports arrive as the bare tail ("optimizer" for
    # ``from .optimizer import x``); try siblings of the importer
    package = importer.rsplit(".", 1)[0] if "." in importer else ""
    for prefix in (package, "repro." + source_mod.split(".")[0]):
        dotted = f"{package}.{source_mod}" if prefix == package else prefix
        if dotted in project.modules:
            candidates.append(project.modules[dotted])
    # suffix match as a last resort (pretend test paths)
    for modname, module in project.modules.items():
        if modname.endswith("." + source_mod.split(".")[-1]):
            candidates.append(module)
    return candidates


def _resolve_attribute_call(
    node: ast.Attribute,
    owner: Optional[ClassInfo],
    module: ModuleInfo,
    project: Project,
) -> List[FuncKey]:
    attr = node.attr
    value = node.value
    # self.m() → the enclosing class hierarchy's m
    if isinstance(value, ast.Name) and value.id == "self" and owner is not None:
        keys = [
            (cls.module, f"{cls.name}.{attr}")
            for cls in project.class_hierarchy(owner)
            if attr in cls.methods
        ]
        if keys:
            return keys
    # mod.f() → imported module's function
    if isinstance(value, ast.Name) and value.id in module.module_aliases:
        target_mod = module.module_aliases[value.id]
        for candidate in _candidate_modules(target_mod, module.modname, project):
            if attr in candidate.functions:
                return [(candidate.modname, attr)]
    # obj.m() → every project method named m (may-call fallback)
    return [m.key for m in project.methods_by_name.get(attr, [])]


def _callable_argument_keys(
    call: ast.Call, module: ModuleInfo, project: Project
) -> List[FuncKey]:
    """Edges for callables escaping into pools/processes/threads."""
    sink_name = (
        call.func.attr
        if isinstance(call.func, ast.Attribute)
        else call.func.id
        if isinstance(call.func, ast.Name)
        else ""
    )
    if sink_name not in _CALLABLE_SINKS:
        return []
    candidates: List[ast.expr] = []
    if call.args:
        candidates.append(call.args[0])
    for keyword in call.keywords:
        if keyword.arg in ("target", "func", "fn"):
            candidates.append(keyword.value)
    keys: List[FuncKey] = []
    for candidate in candidates:
        if isinstance(candidate, ast.Name):
            keys.extend(_resolve_name_call(candidate.id, module, project))
    return keys


def build_call_graph(project: Project) -> CallGraph:
    """One pass over every function body, resolving each call site."""
    graph = CallGraph(project=project)
    for func in project.functions():
        module = project.modules[func.module]
        owner = (
            module.classes.get(func.class_name) if func.class_name else None
        )
        targets: Set[FuncKey] = set()
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name):
                targets.update(_resolve_name_call(node.func.id, module, project))
            elif isinstance(node.func, ast.Attribute):
                targets.update(
                    _resolve_attribute_call(node.func, owner, module, project)
                )
            targets.update(_callable_argument_keys(node, module, project))
        graph.edges[func.key] = targets
    return graph
