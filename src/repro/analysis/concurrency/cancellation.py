"""Cancellation-poll reachability: LINT014.

PR 6 made every query live inside a :class:`QueryBudget` envelope —
deadlines and cancellation are *cooperative*, so the guarantee only
holds if every hot loop polls.  This pass keeps that true as code
evolves: every loop in enumeration/pruning/join code reachable from
``Optimizer.optimize`` or ``Executor.execute`` must reach a budget
poll (``budget.check_*``, ``charge_rows``, ``_check_deadline``,
``_govern``, a ``.expired`` probe) within its body — directly or
through a call chain.

Exemptions (each is a bounded-cadence argument, documented in
``docs/ANALYSIS.md``):

* loops containing a ``yield`` — control returns to the consumer every
  iteration, so the *consumer's* loop carries the polling obligation;
* loops lexically inside a polling loop in the same function — the
  enclosing loop bounds the cadence;
* small bounded for-loops: iterating a name/attribute (not a call),
  no nested loops, a short body, and no calls into project functions
  that themselves loop — per-iteration work is O(1)-ish and the
  iterable is an in-memory sequence.

Everything else needs a poll or a per-line
``# lint: disable=LINT014 <why the cadence is bounded>``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..lint.diagnostics import Diagnostic, Severity
from .callgraph import CallGraph, FuncKey, build_call_graph
from .model import FunctionInfo, ModuleInfo, Project, _terminal_name

#: entry points: the governed public surfaces (qualname match).
#: ``observe_execution`` drives adaptive repartitioning — its fragment
#: migration loops run under the same budget envelope as the query.
ENTRY_QUALNAMES = frozenset(
    {"Optimizer.optimize", "Executor.execute", "Optimizer.observe_execution"}
)

#: enumeration/pruning/join code — path suffixes under src/repro
HOT_SUFFIXES = (
    "core/enumeration.py",
    "core/pruning.py",
    "core/cmd.py",
    "core/reduction.py",
    "core/counting.py",
    "core/memo_shard.py",
    "core/parallel.py",
    "engine/executor.py",
    "engine/relations.py",
    "engine/columnar.py",
    "engine/mapreduce.py",
    "engine/base.py",
    "engine/pipelined.py",
    "partitioning/adaptive.py",
)

#: calls/reads that constitute a budget poll
POLL_ATTRS = frozenset(
    {
        "check_cancelled",
        "check_deadline",
        "charge_rows",
        "charge_retry",
        "_check_deadline",
        "_check_budget",
        "_govern",
        "tick",
    }
)
_POLL_PROBES = frozenset({"expired"})

#: builtins whose calls never hide a loop we care about
_BOUNDED_BUILTINS = frozenset(
    {
        "len",
        "min",
        "max",
        "abs",
        "int",
        "float",
        "str",
        "repr",
        "bool",
        "isinstance",
        "getattr",
        "setattr",
        "hasattr",
        "id",
        "range",
        "enumerate",
        "zip",
        "iter",
        "next",
        "print",
    }
)

#: project calls whose results are bounded by the bitset width (≤ 64
#: elements) — iterating them is bounded regardless of data size
_BOUNDED_ITERABLE_CALLS = frozenset(
    {"iter_bits", "to_indices", "connected_components"}
)

#: container-method calls that never loop over user data structures in
#: a way that matters (the may-call fallback would otherwise resolve
#: ``candidates.add`` to every project method named ``add``)
_CONTAINER_METHODS = frozenset(
    {
        "add",
        "append",
        "extend",
        "update",
        "discard",
        "remove",
        "pop",
        "get",
        "setdefault",
        "clear",
        "sort",
        "items",
        "keys",
        "values",
        "copy",
        "bit",
        "popcount",
        "lowest_bit",
        "lowest_index",
    }
)

_SMALL_BODY_STATEMENTS = 6


def _is_hot_module(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in HOT_SUFFIXES)


def _has_direct_poll(node: ast.AST) -> bool:
    """A poll call or probe anywhere under *node* (nested defs excluded)."""
    for sub in _walk_same_function(node):
        if isinstance(sub, ast.Call):
            name = _terminal_name(sub.func)
            if name in POLL_ATTRS:
                return True
        elif isinstance(sub, ast.Attribute) and sub.attr in _POLL_PROBES:
            return True
        elif isinstance(sub, ast.Raise):
            # a loop that raises unconditionally on its hot path is a
            # poll-equivalent exit only when guarded; keep it simple:
            # raises do not count.
            continue
    return False


def _walk_same_function(node: ast.AST) -> List[ast.AST]:
    """ast.walk that does not descend into nested function/class defs."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        out.append(current)
        stack.extend(ast.iter_child_nodes(current))
    return out


def _loop_calls(loop: Union[ast.For, ast.While]) -> List[ast.Call]:
    return [n for n in _walk_same_function(loop) if isinstance(n, ast.Call)]


def _contains_yield(loop: Union[ast.For, ast.While]) -> bool:
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _walk_same_function(loop)
    )


def _contains_loop(node: ast.AST) -> bool:
    return any(
        isinstance(n, (ast.For, ast.While, ast.AsyncFor))
        for n in _walk_same_function(node)
    )


class _FunctionLoops:
    """Loops of one function with their nesting relationships."""

    def __init__(self, func: FunctionInfo) -> None:
        self.func = func
        self.loops: List[Union[ast.For, ast.While]] = [
            n
            for n in _walk_same_function(func.node)
            if isinstance(n, (ast.For, ast.While))
        ]
        #: loop → its lexically enclosing loops
        self.enclosing: Dict[ast.AST, List[ast.AST]] = {}
        for outer in self.loops:
            for inner in _walk_same_function(outer):
                if inner is not outer and isinstance(inner, (ast.For, ast.While)):
                    self.enclosing.setdefault(inner, []).append(outer)


def _call_keys(
    call: ast.Call,
    func: FunctionInfo,
    module: ModuleInfo,
    project: Project,
    graph: CallGraph,
) -> Set[FuncKey]:
    """Resolve one call site using the already-built graph's resolver."""
    from .callgraph import _resolve_attribute_call, _resolve_name_call

    owner = module.classes.get(func.class_name) if func.class_name else None
    if isinstance(call.func, ast.Name):
        return set(_resolve_name_call(call.func.id, module, project))
    if isinstance(call.func, ast.Attribute):
        return set(_resolve_attribute_call(call.func, owner, module, project))
    return set()


def _loop_polls(
    loop: Union[ast.For, ast.While],
    func: FunctionInfo,
    module: ModuleInfo,
    project: Project,
    graph: CallGraph,
    polling_funcs: Set[FuncKey],
) -> bool:
    """Whether the loop body reaches a poll directly or via a callee."""
    if _has_direct_poll(loop):
        return True
    for call in _loop_calls(loop):
        if _call_keys(call, func, module, project, graph) & polling_funcs:
            return True
    return False


def _is_small_bounded(
    loop: Union[ast.For, ast.While],
    func: FunctionInfo,
    module: ModuleInfo,
    project: Project,
    graph: CallGraph,
    looping_funcs: Set[FuncKey],
) -> bool:
    """The small-bounded-for exemption (see module docstring)."""
    if not isinstance(loop, ast.For):
        return False
    iterable = loop.iter
    # iterating a call's result means unknown (possibly huge) extent,
    # except the bounded builtins (range/enumerate/zip over names)
    if isinstance(iterable, ast.Call):
        name = _terminal_name(iterable.func)
        if name not in _BOUNDED_BUILTINS and name not in _BOUNDED_ITERABLE_CALLS:
            return False
    if len(loop.body) > _SMALL_BODY_STATEMENTS:
        return False
    if any(
        isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)) or _contains_loop(stmt)
        for stmt in loop.body
    ):
        return False
    for call in _loop_calls(loop):
        name = _terminal_name(call.func)
        if name in _BOUNDED_BUILTINS or name in _CONTAINER_METHODS:
            continue
        if name in _BOUNDED_ITERABLE_CALLS:
            continue
        # a callee that itself loops voids the O(1)-per-iteration claim
        if _call_keys(call, func, module, project, graph) & looping_funcs:
            return False
    return True


def check_cancellation_polls(
    project: Project, graph: Optional[CallGraph] = None
) -> List[Diagnostic]:
    """Run LINT014 over the project."""
    if graph is None:
        graph = build_call_graph(project)

    entry_keys: List[FuncKey] = [
        f.key for f in project.functions() if f.qualname in ENTRY_QUALNAMES
    ]
    if not entry_keys:
        return []
    reachable = graph.reachable_from(entry_keys)

    # functions that poll directly, then the transitive may-poll closure
    direct_pollers: Set[FuncKey] = set()
    looping_funcs: Set[FuncKey] = set()
    for func in project.functions():
        if _has_direct_poll(func.node):
            direct_pollers.add(func.key)
        if _contains_loop(func.node):
            looping_funcs.add(func.key)
    polling_funcs = graph.transitive_closure_of(direct_pollers)

    findings: List[Diagnostic] = []
    for func in project.functions():
        if func.key not in reachable:
            continue
        module = project.modules[func.module]
        if not _is_hot_module(module.path):
            continue
        analysis = _FunctionLoops(func)
        polling_loops: Set[ast.AST] = set()
        for loop in analysis.loops:
            if _loop_polls(loop, func, module, project, graph, polling_funcs):
                polling_loops.add(loop)
        for loop in analysis.loops:
            if loop in polling_loops:
                continue
            if _contains_yield(loop):
                continue  # consumer-driven: the consuming loop polls
            if any(e in polling_loops for e in analysis.enclosing.get(loop, [])):
                continue  # an enclosing loop bounds the cadence
            if _is_small_bounded(loop, func, module, project, graph, looping_funcs):
                continue
            kind = "for" if isinstance(loop, ast.For) else "while"
            findings.append(
                Diagnostic(
                    path=module.path,
                    line=loop.lineno,
                    column=loop.col_offset + 1,
                    code="LINT014",
                    severity=Severity.ERROR,
                    message=(
                        f"{kind}-loop in '{func.qualname}' is reachable from "
                        f"a governed entry point but never polls the budget "
                        f"(no check_cancelled/check_deadline/charge_* on any "
                        f"path through its body) — a deadline cannot "
                        f"interrupt it"
                    ),
                )
            )
    return findings
