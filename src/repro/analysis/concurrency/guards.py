"""Lock discipline: LINT010 (guarded-by) and LINT011 (blocking under lock).

LINT010 — every read/write of an attribute declared
``#: guarded-by: <lock>`` must happen inside a ``with self.<lock>:``
scope.  ``__init__`` is exempt (the object is not yet published).  The
check is interprocedural through self-method calls: a *private* helper
(leading underscore) whose every intra-class call site holds the lock
is analyzed as holding it on entry — the classic
``_locked``-helper pattern needs no suppression.  Public methods never
inherit a lock: they can be called from anywhere.

LINT011 — a call that can block indefinitely (``future.result``,
``pipe.recv``, ``queue.get``, ``.join``/``.wait``/``.acquire``,
``time.sleep``) inside a ``with <lock>:`` body stalls every other
thread contending for that lock; flag it.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple, Union

from ..lint.diagnostics import Diagnostic, Severity
from .model import ClassInfo, FunctionInfo, Project, _terminal_name

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: attribute calls that block regardless of receiver
_BLOCKING_ALWAYS = frozenset({"result", "recv", "wait", "acquire"})
#: attribute calls that block only on concurrency-ish receivers
_BLOCKING_RECEIVER = {
    "get": re.compile(r"(^|_)(q|qs|queue|queues)($|_|s$)|queue", re.IGNORECASE),
    "join": re.compile(r"thread|proc|worker|pool|queue|(^|_)q($|_)", re.IGNORECASE),
}
_LOCKISH_NAME = re.compile(r"lock|mutex", re.IGNORECASE)


def _with_lock_names(node: Union[ast.With, ast.AsyncWith], cls: Optional[ClassInfo]) -> Set[str]:
    """Lock attribute names acquired by this ``with`` statement."""
    names: Set[str] = set()
    for item in node.items:
        expr = item.context_expr
        # with self._lock:  /  with self._lock.acquire_timeout(...):
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self":
                if cls is not None and (
                    expr.attr in cls.lock_attrs or _LOCKISH_NAME.search(expr.attr)
                ):
                    names.add(expr.attr)
        elif isinstance(expr, ast.Name) and _LOCKISH_NAME.search(expr.id):
            names.add(expr.id)
    return names


def _is_lockish(expr: ast.expr, cls: Optional[ClassInfo]) -> bool:
    """Whether a with-context expression looks like a lock acquisition."""
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.value.id == "self" and cls is not None and expr.attr in cls.lock_attrs:
            return True
    name = _terminal_name(expr)
    return bool(name and _LOCKISH_NAME.search(name))


class _MethodScanner(ast.NodeVisitor):
    """Walks one method tracking lexically-held locks."""

    def __init__(
        self,
        cls: Optional[ClassInfo],
        entry_locks: Set[str],
        path: str,
    ) -> None:
        self.cls = cls
        self.held: List[str] = sorted(entry_locks)
        self.path = path
        #: (lock, line) for each self.<guarded> access without its lock
        self.violations: List[Tuple[str, str, int, int, str]] = []
        #: guarded accesses seen while each lock was held (for stats)
        self.call_sites: List[Tuple[ast.Call, Set[str]]] = []
        self.blocking: List[Tuple[int, int, str, str]] = []

    # -- with-statement scoping -------------------------------------
    def _visit_with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        acquired = _with_lock_names(node, self.cls)
        lockish = [
            item.context_expr
            for item in node.items
            if _is_lockish(item.context_expr, self.cls)
        ]
        self.held.extend(sorted(acquired))
        if lockish:
            self._scan_blocking(node, acquired or {_terminal_name(lockish[0])})
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    # nested defs get their own analysis pass; don't descend
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- guarded accesses and call sites -----------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self.cls is not None
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            lock = self.cls.guarded.get(node.attr)
            if lock is not None and lock not in self.held:
                self.violations.append(
                    (node.attr, lock, node.lineno, node.col_offset, "")
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            self.call_sites.append((node, set(self.held)))
        self.generic_visit(node)

    # -- LINT011: blocking calls inside a lock scope ------------------
    def _scan_blocking(self, node: Union[ast.With, ast.AsyncWith], locks: Set[str]) -> None:
        lock_label = ", ".join(sorted(locks)) or "lock"
        seen = {(line, col) for line, col, _, _ in self.blocking}
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                if (sub.lineno, sub.col_offset) in seen:
                    continue  # already flagged under an enclosing lock
                reason = _blocking_reason(sub)
                if reason:
                    self.blocking.append(
                        (sub.lineno, sub.col_offset, reason, lock_label)
                    )


def _blocking_reason(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        attr = func.attr
        receiver = _terminal_name(func.value)
        if attr == "sleep":
            return "time.sleep"
        if attr in _BLOCKING_ALWAYS:
            # str constants like ", ".join are not receivers at all
            if isinstance(func.value, ast.Constant):
                return None
            return f"{receiver or '<expr>'}.{attr}"
        pattern = _BLOCKING_RECEIVER.get(attr)
        if pattern and receiver and pattern.search(receiver):
            return f"{receiver}.{attr}"
    elif isinstance(func, ast.Name) and func.id == "sleep":
        return "sleep"
    return None


def _entry_lock_fixed_point(
    cls: ClassInfo, path: str
) -> Dict[str, Set[str]]:
    """Locks each *private* method provably holds on entry.

    Monotone fixed point: a private method holds lock L on entry when
    it has at least one intra-class call site and every such site runs
    with L held (lexically, or inherited by the calling method).
    """
    entry: Dict[str, Set[str]] = {name: set() for name in cls.methods}
    all_locks = set(cls.guarded.values()) | cls.lock_attrs
    if not all_locks:
        return entry
    for _ in range(len(cls.methods) + 1):
        # collect the held-set at every self.m() call site
        sites: Dict[str, List[Set[str]]] = {}
        for name, method in cls.methods.items():
            scanner = _MethodScanner(cls, entry[name], path)
            for stmt in method.node.body:
                scanner.visit(stmt)
            for call, held in scanner.call_sites:
                func = call.func
                assert isinstance(func, ast.Attribute)
                sites.setdefault(func.attr, []).append(held)
        changed = False
        for name in cls.methods:
            if not name.startswith("_") or name.startswith("__"):
                continue  # public/dunder methods are externally callable
            callee_sites = sites.get(name)
            if not callee_sites:
                continue
            held_everywhere = set.intersection(*callee_sites) & all_locks
            if held_everywhere - entry[name]:
                entry[name] |= held_everywhere
                changed = True
        if not changed:
            break
    return entry


def check_lock_discipline(project: Project) -> List[Diagnostic]:
    """Run LINT010 + LINT011 over every class in the project."""
    findings: List[Diagnostic] = []
    for module in project.modules.values():
        # module-level functions: only the blocking-under-lock check
        for func in module.functions.values():
            scanner = _MethodScanner(None, set(), module.path)
            for stmt in func.node.body:
                scanner.visit(stmt)
            for line, col, reason, lock_label in scanner.blocking:
                findings.append(
                    Diagnostic(
                        path=module.path,
                        line=line,
                        column=col + 1,
                        code="LINT011",
                        severity=Severity.ERROR,
                        message=(
                            f"potentially blocking call '{reason}' while "
                            f"holding '{lock_label}' in '{func.name}' "
                            f"stalls every contending thread"
                        ),
                    )
                )
        for cls in module.classes.values():
            has_guards = bool(cls.guarded)
            has_locks = bool(cls.lock_attrs)
            if not has_guards and not has_locks:
                continue
            entry = _entry_lock_fixed_point(cls, module.path)
            for name, method in cls.methods.items():
                scanner = _MethodScanner(cls, entry.get(name, set()), module.path)
                if name != "__init__":
                    for stmt in method.node.body:
                        scanner.visit(stmt)
                else:
                    # __init__ publishes nothing yet: only LINT011 applies
                    only_blocking = _MethodScanner(cls, set(), module.path)
                    for stmt in method.node.body:
                        only_blocking.visit(stmt)
                    scanner.blocking = only_blocking.blocking
                if has_guards:
                    for attr, lock, line, col, _ in scanner.violations:
                        findings.append(
                            Diagnostic(
                                path=module.path,
                                line=line,
                                column=col + 1,
                                code="LINT010",
                                severity=Severity.ERROR,
                                message=(
                                    f"'{cls.name}.{attr}' is declared guarded-by "
                                    f"'{lock}' but is accessed in '{name}' without "
                                    f"holding 'self.{lock}'"
                                ),
                            )
                        )
                for line, col, reason, lock_label in scanner.blocking:
                    findings.append(
                        Diagnostic(
                            path=module.path,
                            line=line,
                            column=col + 1,
                            code="LINT011",
                            severity=Severity.ERROR,
                            message=(
                                f"potentially blocking call '{reason}' while "
                                f"holding '{lock_label}' in '{cls.name}.{name}' "
                                f"stalls every contending thread"
                            ),
                        )
                    )
    return findings
