"""Shared program model for the concurrency analyzer.

Parses a set of source files into a :class:`Project`: modules, classes,
methods, imports, and the ``#: guarded-by: <lock>`` declarations that
drive the lock-discipline pass (LINT010) and the runtime detector.

Annotation grammar
------------------
A field is declared lock-protected with a comment of the form::

    #: guarded-by: _lock

either trailing the assignment that introduces the field (a
``self.x = ...`` statement in ``__init__`` or an ``AnnAssign`` in the
class body) or on its own line directly above it.  The lock name must
be an attribute of the same instance (``self._lock``).  Declarations
are parsed from the token stream, so they survive reformatting.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

#: ``#: guarded-by: <lockname>`` — the declaration comment grammar
GUARDED_BY_RE = re.compile(r"#:?\s*guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")

#: threading constructors whose instances act as locks at runtime
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})


def parse_guard_comments(source: str) -> Dict[int, str]:
    """Map *code* line number → lock name for ``guarded-by`` comments.

    A trailing comment declares the assignment on its own line; a
    standalone comment (nothing but whitespace before it) declares the
    assignment on the following line.  The distinction matters: the
    trailing declaration of one field must not leak onto the next.
    """
    guards: Dict[int, str] = {}
    lines = source.splitlines()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = GUARDED_BY_RE.search(token.string)
            if not match:
                continue
            line, column = token.start
            prefix = lines[line - 1][:column] if line <= len(lines) else ""
            standalone = not prefix.strip()
            guards[line + 1 if standalone else line] = match.group("lock")
    except tokenize.TokenError:
        pass
    return guards


@dataclass
class FunctionInfo:
    """One function or method, addressable by (module, qualname)."""

    module: str
    qualname: str  #: ``name`` or ``Class.name``
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    class_name: Optional[str] = None

    @property
    def key(self) -> Tuple[str, str]:
        """The (module, qualname) pair identifying this function."""
        return (self.module, self.qualname)

    @property
    def name(self) -> str:
        """The bare function name (last qualname segment)."""
        return self.node.name


@dataclass
class ClassInfo:
    """One class: methods, declared guards, and lock-typed attributes."""

    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attr → lock attr name, from ``#: guarded-by:`` declarations
    guarded: Dict[str, str] = field(default_factory=dict)
    #: attrs assigned from threading lock factories (``self.x = Lock()``)
    lock_attrs: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str
    modname: str
    tree: ast.Module
    source: str
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: local alias → imported module name (``import x.y as z``)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name → (module, original name) for ``from m import n``
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: module-level names bound to mutable literals/constructors
    mutable_globals: Set[str] = field(default_factory=set)
    #: module-level names mutated somewhere in the module
    mutated_globals: Set[str] = field(default_factory=set)


def module_name_for(path: str) -> str:
    """Dotted module name for *path* (``repro.core.x`` when under src)."""
    parts = list(Path(path).with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        # keep a stable tail so pretend test paths still resolve
        parts = parts[-3:] if len(parts) > 3 else parts
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "bytearray", "OrderedDict", "Counter"}
)
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "extend",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "appendleft",
    }
)


def _is_mutable_binding(value: ast.expr) -> bool:
    """Whether a module-level binding's value is a mutable container."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in _MUTABLE_FACTORIES
    return False


def _terminal_name(expr: ast.expr) -> str:
    """The last identifier of a Name/Attribute chain ('' otherwise)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def _root_name(expr: ast.expr) -> str:
    """The first identifier of a Name/Attribute/Subscript chain."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return ""


def _is_lock_factory_call(value: ast.expr) -> bool:
    """``threading.Lock()`` / ``Lock()`` / ``mp.RLock()``-shaped calls."""
    return (
        isinstance(value, ast.Call)
        and _terminal_name(value.func) in LOCK_FACTORIES
    )


def _collect_global_mutations(tree: ast.Module, globals_: Set[str]) -> Set[str]:
    """Module-level names that are mutated anywhere in the module."""
    mutated: Set[str] = set()
    for node in ast.walk(tree):
        # obj.append(...), obj.update(...) — mutator method on a global
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS:
                root = _root_name(node.func.value)
                if root in globals_:
                    mutated.add(root)
        # obj[k] = v / obj.attr = v / del obj[k] — store through a global
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
                if isinstance(node, ast.AugAssign)
                else node.targets
            )
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = _root_name(target)
                    if root in globals_:
                        mutated.add(root)
        # `global X` inside a function followed by rebinding
        elif isinstance(node, ast.Global):
            mutated.update(n for n in node.names if n in globals_)
    return mutated


def parse_module(source: str, path: str) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    info = ModuleInfo(
        path=path, modname=module_name_for(path), tree=tree, source=source
    )
    guard_comments = parse_guard_comments(source)

    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                info.from_imports[alias.asname or alias.name] = (node.module, alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(
                module=info.modname, qualname=node.name, node=node
            )
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = _parse_class(node, info.modname, guard_comments)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and _is_mutable_binding(node.value):
                    info.mutable_globals.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.value is not None
                and _is_mutable_binding(node.value)
            ):
                info.mutable_globals.add(node.target.id)

    info.mutated_globals = _collect_global_mutations(tree, info.mutable_globals)
    return info


def _parse_class(
    node: ast.ClassDef, modname: str, guard_comments: Dict[int, str]
) -> ClassInfo:
    cls = ClassInfo(
        module=modname,
        name=node.name,
        node=node,
        bases=[_terminal_name(b) for b in node.bases if _terminal_name(b)],
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[stmt.name] = FunctionInfo(
                module=modname,
                qualname=f"{node.name}.{stmt.name}",
                node=stmt,
                class_name=node.name,
            )
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            lock = guard_comments.get(stmt.lineno)
            if lock:
                cls.guarded[stmt.target.id] = lock

    # `self.x = ...` assignments anywhere in the class body (usually
    # __init__) carry guard declarations and reveal lock-typed attrs
    for method in cls.methods.values():
        for stmt in ast.walk(method.node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    lock = guard_comments.get(stmt.lineno)
                    if lock:
                        cls.guarded[target.attr] = lock
                    if value is not None and _is_lock_factory_call(value):
                        cls.lock_attrs.add(target.attr)
    # every declared guard names a lock attribute even if we could not
    # see its construction (e.g. the lock is injected)
    cls.lock_attrs.update(cls.guarded.values())
    return cls


@dataclass
class Project:
    """A parsed source tree: the unit the interprocedural passes run on."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)

    #: method name → every FunctionInfo with that name (may-call fallback)
    methods_by_name: Dict[str, List[FunctionInfo]] = field(default_factory=dict)
    #: class name → every ClassInfo with that name
    classes_by_name: Dict[str, List[ClassInfo]] = field(default_factory=dict)

    def add(self, module: ModuleInfo) -> None:
        """Register one parsed module and index its classes/methods."""
        self.modules[module.modname] = module
        for cls in module.classes.values():
            self.classes_by_name.setdefault(cls.name, []).append(cls)
            for method in cls.methods.values():
                self.methods_by_name.setdefault(method.name, []).append(method)

    def functions(self) -> List[FunctionInfo]:
        """Every function and method in the project, stable order."""
        out: List[FunctionInfo] = []
        for modname in sorted(self.modules):
            module = self.modules[modname]
            out.extend(module.functions[n] for n in sorted(module.functions))
            for cls_name in sorted(module.classes):
                cls = module.classes[cls_name]
                out.extend(cls.methods[n] for n in sorted(cls.methods))
        return out

    def lookup(self, key: Tuple[str, str]) -> Optional[FunctionInfo]:
        """Resolve a (module, qualname) key back to its FunctionInfo."""
        module = self.modules.get(key[0])
        if module is None:
            return None
        qualname = key[1]
        if "." in qualname:
            cls_name, meth = qualname.split(".", 1)
            cls = module.classes.get(cls_name)
            return cls.methods.get(meth) if cls else None
        return module.functions.get(qualname)

    def class_hierarchy(self, cls: ClassInfo) -> List[ClassInfo]:
        """*cls* plus every project class related by a base-name chain."""
        related: Dict[Tuple[str, str], ClassInfo] = {}
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            key = (current.module, current.name)
            if key in related:
                continue
            related[key] = current
            # superclasses by name
            for base in current.bases:
                frontier.extend(self.classes_by_name.get(base, []))
            # subclasses by name
            for candidates in self.classes_by_name.values():
                for other in candidates:
                    if current.name in other.bases:
                        frontier.append(other)
        return list(related.values())


def build_project(files: Sequence[Tuple[str, str]]) -> Project:
    """Build a :class:`Project` from ``(path, source)`` pairs.

    Files that fail to parse are skipped here — the driver reports them
    separately so one syntax error does not hide all other findings.
    """
    project = Project()
    for path, source in files:
        try:
            project.add(parse_module(source, path))
        except SyntaxError:
            continue
    return project
