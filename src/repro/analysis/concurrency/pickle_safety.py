"""Fork/pickle safety: LINT012 (unpicklable captures) and LINT013
(mutated module globals read in worker entry functions).

LINT012 — anything shipped across a process boundary
(``pool.submit(...)`` / ``pool.map(...)`` on a process pool,
``Process(target=..., args=...)``, ``task_q.put(...)`` on a
multiprocessing queue) must pickle deterministically.  The pass taints
locals bound to known-unpicklable values — lambdas, threading locks,
tracers/metric registries, ``open(...)`` handles, bound methods of
lock-holding classes — propagates the taint through assignments and
container literals within the function, and flags tainted expressions
reaching a submission site.

LINT013 — a fork-based worker inherits a *snapshot* of module globals.
A module-level mutable container that the module also mutates is a
nondeterminism hazard when read inside a worker entry function (the
snapshot depends on fork timing).  Entry functions are the module-level
callables referenced at submission sites; the check follows their
same-module callees transitively.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..lint.diagnostics import Diagnostic, Severity
from .model import (
    ClassInfo,
    FunctionInfo,
    LOCK_FACTORIES,
    ModuleInfo,
    Project,
    _terminal_name,
)

#: constructors whose instances never survive pickling to a fresh process
_UNPICKLABLE_FACTORIES: Dict[str, str] = {
    **{name: "a threading primitive" for name in LOCK_FACTORIES},
    "Event": "a threading primitive",
    "Tracer": "a tracer (holds a lock and open span state)",
    "MetricsRegistry": "a metrics registry (holds a lock)",
    "current_tracer": "the active tracer (holds a lock)",
    "open": "an open file handle",
    "TextIOWrapper": "an open file handle",
    "socket": "a socket",
}

_POOLISH = re.compile(r"pool|executor", re.IGNORECASE)
_QUEUEISH = re.compile(r"(^|_)(q|qs|queue|queues)($|_|s$)|queue", re.IGNORECASE)


def _taint_of_expr(
    expr: ast.expr,
    taints: Dict[str, str],
    cls: Optional[ClassInfo],
) -> Optional[str]:
    """Why *expr* is unpicklable, or None if it looks safe.

    Containers are tainted when any element is; names look up the
    function-local taint map; ``self.<lock-attr>`` and bound methods of
    lock-holding classes taint directly.
    """
    if isinstance(expr, ast.Lambda):
        return "a lambda (pickles by reference, never by value)"
    if isinstance(expr, (ast.GeneratorExp,)):
        return "a generator (not picklable)"
    if isinstance(expr, ast.Name):
        return taints.get(expr.id)
    if isinstance(expr, ast.Call):
        factory = _terminal_name(expr.func)
        if factory in _UNPICKLABLE_FACTORIES:
            return _UNPICKLABLE_FACTORIES[factory]
        return None
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self" and cls is not None:
            if expr.attr in cls.lock_attrs:
                return f"'self.{expr.attr}' (a lock)"
            if expr.attr in ("tracer", "_tracer"):
                return f"'self.{expr.attr}' (a tracer)"
            if expr.attr in cls.methods:
                locked = bool(cls.lock_attrs)
                if locked:
                    return (
                        f"bound method 'self.{expr.attr}' of lock-holding "
                        f"class '{cls.name}'"
                    )
        return None
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for element in expr.elts:
            reason = _taint_of_expr(element, taints, cls)
            if reason:
                return reason
        return None
    if isinstance(expr, ast.Dict):
        for value in expr.values:
            if value is None:
                continue
            reason = _taint_of_expr(value, taints, cls)
            if reason:
                return reason
        return None
    return None


def _collect_taints(
    func: FunctionInfo, cls: Optional[ClassInfo]
) -> Dict[str, str]:
    """Two fixed-point passes over assignments: name → unpicklable reason."""
    taints: Dict[str, str] = {}
    for _ in range(2):
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign):
                reason = _taint_of_expr(node.value, taints, cls)
                if reason:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            taints[target.id] = reason
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is None or not isinstance(
                        item.optional_vars, ast.Name
                    ):
                        continue
                    reason = _taint_of_expr(item.context_expr, taints, cls)
                    if reason:
                        taints[item.optional_vars.id] = reason
    return taints


def _pool_bindings(func: FunctionInfo) -> Set[str]:
    """Names bound to a process pool in this function."""
    pools: Set[str] = set()
    for node in ast.walk(func.node):
        value: Optional[ast.expr] = None
        target: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            value, target = node.value, node.targets[0]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None and isinstance(
                    item.context_expr, ast.Call
                ):
                    if "ProcessPoolExecutor" in _terminal_name(item.context_expr.func):
                        if isinstance(item.optional_vars, ast.Name):
                            pools.add(item.optional_vars.id)
            continue
        if (
            value is not None
            and isinstance(value, ast.Call)
            and "ProcessPoolExecutor" in _terminal_name(value.func)
            and isinstance(target, ast.Name)
        ):
            pools.add(target.id)
    return pools


def _submission_payloads(
    call: ast.Call, pools: Set[str]
) -> Optional[Tuple[str, List[ast.expr]]]:
    """(site kind, payload exprs) when *call* ships work to a process."""
    func = call.func
    if isinstance(func, ast.Attribute):
        receiver = _terminal_name(func.value)
        if func.attr in ("submit", "map") and (
            receiver in pools or _POOLISH.search(receiver or "")
        ):
            return (f"{receiver}.{func.attr}", list(call.args) +
                    [k.value for k in call.keywords])
        if func.attr == "put" and receiver and _QUEUEISH.search(receiver):
            return (f"{receiver}.put", list(call.args))
    name = _terminal_name(func)
    if name == "Process":
        payload: List[ast.expr] = []
        for keyword in call.keywords:
            if keyword.arg in ("target", "args", "kwargs"):
                payload.append(keyword.value)
        return ("Process", payload)
    return None


def check_pickle_safety(project: Project) -> List[Diagnostic]:
    """LINT012: unpicklable values reaching a process boundary."""
    findings: List[Diagnostic] = []
    for module in project.modules.values():
        for func in _all_functions(module):
            cls = module.classes.get(func.class_name) if func.class_name else None
            taints = _collect_taints(func, cls)
            pools = _pool_bindings(func)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                site = _submission_payloads(node, pools)
                if site is None:
                    continue
                kind, payload = site
                for expr in payload:
                    reason = _taint_of_expr(expr, taints, cls)
                    if reason:
                        findings.append(
                            Diagnostic(
                                path=module.path,
                                line=expr.lineno,
                                column=expr.col_offset + 1,
                                code="LINT012",
                                severity=Severity.ERROR,
                                message=(
                                    f"{reason} reaches the process boundary "
                                    f"at '{kind}' in '{func.qualname}' — it "
                                    f"will not pickle (or pickles "
                                    f"nondeterministically)"
                                ),
                            )
                        )
    return findings


def _all_functions(module: ModuleInfo) -> List[FunctionInfo]:
    out = [module.functions[n] for n in sorted(module.functions)]
    for cls_name in sorted(module.classes):
        cls = module.classes[cls_name]
        out.extend(cls.methods[n] for n in sorted(cls.methods))
    return out


def _entry_function_names(module: ModuleInfo) -> Set[str]:
    """Module-level functions referenced at submission sites."""
    entries: Set[str] = set()
    for func in _all_functions(module):
        pools = _pool_bindings(func)
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            site = _submission_payloads(node, pools)
            if site is None:
                continue
            candidates: List[ast.expr] = []
            if node.args:
                candidates.append(node.args[0])
            for keyword in node.keywords:
                if keyword.arg == "target":
                    candidates.append(keyword.value)
            for candidate in candidates:
                if isinstance(candidate, ast.Name) and candidate.id in module.functions:
                    entries.add(candidate.id)
    return entries


def check_worker_globals(project: Project) -> List[Diagnostic]:
    """LINT013: mutated module globals read inside worker entry code."""
    findings: List[Diagnostic] = []
    for module in project.modules.values():
        hazards = module.mutable_globals & module.mutated_globals
        if not hazards:
            continue
        entries = _entry_function_names(module)
        if not entries:
            continue
        # transitive same-module callees of the entry functions
        worker_funcs: Set[str] = set()
        frontier = sorted(entries)
        while frontier:
            name = frontier.pop()
            if name in worker_funcs or name not in module.functions:
                continue
            worker_funcs.add(name)
            for node in ast.walk(module.functions[name].node):
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    frontier.append(node.func.id)
        for name in sorted(worker_funcs):
            func = module.functions[name]
            for node in ast.walk(func.node):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in hazards
                ):
                    findings.append(
                        Diagnostic(
                            path=module.path,
                            line=node.lineno,
                            column=node.col_offset + 1,
                            code="LINT013",
                            severity=Severity.ERROR,
                            message=(
                                f"worker entry path '{name}' reads module "
                                f"global '{node.id}', a mutable container "
                                f"also mutated in this module — its forked "
                                f"snapshot depends on submission timing"
                            ),
                        )
                    )
    return findings
