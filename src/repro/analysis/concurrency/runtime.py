"""Dynamic lock-order race detector (opt-in, test-only).

Static lock discipline (LINT010) proves *which* lock guards a field;
it cannot see the *order* two threads acquire two locks in.  This
module records that order at runtime: :class:`TrackedLock` wraps a
``threading.Lock`` and, on every acquisition, adds a ``held → acquiring``
edge to a global lock-order graph (per-thread held stacks live in a
:class:`~contextvars.ContextVar`).  A cycle in that graph is a
potential deadlock — two threads that interleave the cyclic orders
block forever.  :func:`instrument` additionally watches the
``#: guarded-by:`` fields of an instance and records a violation when
one is touched without its declared lock held.

Opt-in and test-only: production code never imports this module.  The
test suite enables it with ``REPRO_LOCK_DETECTOR=1`` (see
``tests/conftest.py``); ``REPRO_LOCK_GRAPH_OUT=<path>`` additionally
writes the observed graph as JSON — CI uploads it as an artifact.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
from typing import Any, Dict, List, Optional, Set, Tuple, Type

#: per-thread (well, per-context) stack of TrackedLocks currently held
_HELD: "contextvars.ContextVar[Tuple[TrackedLock, ...]]" = contextvars.ContextVar(
    "repro_held_locks", default=()
)

_ENV_FLAG = "REPRO_LOCK_DETECTOR"
_ENV_GRAPH_OUT = "REPRO_LOCK_GRAPH_OUT"


def detector_enabled() -> bool:
    """Whether the env flag opts this process into the detector."""
    return os.environ.get(_ENV_FLAG, "") == "1"


def held_locks() -> Tuple["TrackedLock", ...]:
    """The TrackedLocks held by the current thread, acquisition order."""
    return _HELD.get()


class LockOrderRegistry:
    """The global lock-order graph plus guarded-field violations.

    Internally synchronized with a *plain* lock (never a TrackedLock —
    the registry must not observe itself).
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: Dict[Tuple[str, str], int] = {}
        self._violations: List[str] = []

    # -- recording ------------------------------------------------------
    def record_edge(self, held: str, acquiring: str) -> None:
        """Record one held → acquiring order observation."""
        if held == acquiring:
            return  # re-entrant acquisition of the same label
        with self._mutex:
            self._edges[(held, acquiring)] = self._edges.get((held, acquiring), 0) + 1

    def record_violation(self, message: str) -> None:
        """Record one guarded-field-without-lock violation."""
        with self._mutex:
            self._violations.append(message)

    def clear(self) -> None:
        """Forget every recorded edge and violation."""
        with self._mutex:
            self._edges.clear()
            self._violations.clear()

    # -- reporting ------------------------------------------------------
    @property
    def violations(self) -> List[str]:
        """Snapshot of the recorded violations."""
        with self._mutex:
            return list(self._violations)

    def edges(self) -> Dict[Tuple[str, str], int]:
        """Snapshot of the order graph: (held, acquiring) → count."""
        with self._mutex:
            return dict(self._edges)

    def cycles(self) -> List[List[str]]:
        """Every elementary cycle reachable in the order graph (DFS).

        Deterministic: nodes and successors are visited sorted.
        """
        edges = self.edges()
        adjacency: Dict[str, List[str]] = {}
        for (source, target), _ in sorted(edges.items()):
            adjacency.setdefault(source, []).append(target)
        cycles: List[List[str]] = []
        seen_cycles = set()

        def dfs(node: str, path: List[str], on_path: Set[str]) -> None:
            for successor in adjacency.get(node, ()):
                if successor in on_path:
                    start = path.index(successor)
                    cycle = path[start:] + [successor]
                    # canonicalize: rotate so the smallest label leads
                    body = cycle[:-1]
                    pivot = body.index(min(body))
                    canonical = tuple(body[pivot:] + body[:pivot])
                    if canonical not in seen_cycles:
                        seen_cycles.add(canonical)
                        cycles.append(list(canonical) + [canonical[0]])
                else:
                    on_path.add(successor)
                    path.append(successor)
                    dfs(successor, path, on_path)
                    path.pop()
                    on_path.discard(successor)

        for node in sorted(adjacency):
            dfs(node, [node], {node})
        return cycles

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable dump of the graph (the CI artifact)."""
        edges = self.edges()
        return {
            "edges": [
                {"from": source, "to": target, "count": count}
                for (source, target), count in sorted(edges.items())
            ],
            "cycles": self.cycles(),
            "violations": self.violations,
        }

    def write_graph(self, path: Optional[str] = None) -> Optional[str]:
        """Write :meth:`to_payload` to *path* (or the env-var path)."""
        target = path or os.environ.get(_ENV_GRAPH_OUT)
        if not target:
            return None
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target

    def assert_clean(self) -> None:
        """Raise AssertionError on any cycle or guarded-field violation."""
        cycles = self.cycles()
        violations = self.violations
        problems = []
        if cycles:
            rendered = ["  " + " -> ".join(c) for c in cycles]
            problems.append("lock-order cycles (potential deadlocks):\n" + "\n".join(rendered))
        if violations:
            problems.append(
                "guarded-field accesses without the declared lock:\n"
                + "\n".join("  " + v for v in violations)
            )
        if problems:
            raise AssertionError("\n".join(problems))


#: the process-wide registry the test suite inspects
GLOBAL_REGISTRY = LockOrderRegistry()


class TrackedLock:
    """Drop-in ``threading.Lock`` wrapper that records acquisition order.

    ``label`` aggregates edges across instances (``Tracer._lock`` is one
    graph node no matter how many tracers exist); identity still
    distinguishes instances for guarded-field checks.
    """

    def __init__(
        self,
        label: str,
        registry: Optional[LockOrderRegistry] = None,
        inner: Optional[Any] = None,
    ) -> None:
        self.label = label
        self.registry = registry if registry is not None else GLOBAL_REGISTRY
        self._inner = inner if inner is not None else threading.Lock()

    # -- lock protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Record order edges against every held lock, then acquire."""
        held = _HELD.get()
        for lock in held:
            self.registry.record_edge(lock.label, self.label)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _HELD.set(held + (self,))
        return acquired

    def release(self) -> None:
        """Release and pop this lock from the per-thread held stack."""
        held = list(_HELD.get())
        # remove the most recent occurrence of self (LIFO discipline)
        for index in range(len(held) - 1, -1, -1):
            if held[index] is self:
                del held[index]
                break
        _HELD.set(tuple(held))
        self._inner.release()

    def locked(self) -> bool:
        """Whether the underlying lock is currently held (by anyone)."""
        return bool(self._inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def is_held_by_current_thread(self) -> bool:
        """Whether this exact instance is in the current held stack."""
        return any(lock is self for lock in _HELD.get())

    def __repr__(self) -> str:
        return f"TrackedLock({self.label!r}, locked={self.locked()})"

    def __reduce__(self) -> Any:
        raise TypeError(
            f"TrackedLock {self.label!r} cannot be pickled — a lock "
            f"reached a process boundary (see LINT012)"
        )


def guarded_fields_of(cls: Type[Any]) -> Dict[str, str]:
    """``#: guarded-by:`` declarations of *cls*, parsed from its source.

    Reuses the static analyzer's declaration parser so the runtime
    detector and LINT010 can never disagree about the grammar.
    """
    import inspect

    from .model import parse_module

    try:
        module = inspect.getmodule(cls)
        if module is None:
            return {}
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return {}
    info = parse_module(source, getattr(module, "__file__", "<module>") or "<module>")
    cls_info = info.classes.get(cls.__name__)
    return dict(cls_info.guarded) if cls_info is not None else {}


_WATCHED_CACHE: Dict[Type[Any], Type[Any]] = {}


def _watched_class(cls: Type[Any], guarded: Dict[str, str]) -> Type[Any]:
    """A dynamic subclass recording unguarded access to guarded fields."""
    cached = _WATCHED_CACHE.get(cls)
    if cached is not None:
        return cached
    guard_map = dict(guarded)

    def _check(self: Any, name: str, action: str) -> None:
        lock_name = guard_map.get(name)
        if lock_name is None:
            return
        lock = object.__getattribute__(self, "__dict__").get(lock_name)
        if isinstance(lock, TrackedLock) and not lock.is_held_by_current_thread():
            lock.registry.record_violation(
                f"{cls.__name__}.{name} {action} without holding "
                f"{cls.__name__}.{lock_name}"
            )

    class Watched(cls):  # type: ignore[valid-type, misc]
        def __getattribute__(self, name: str) -> Any:
            if name in guard_map:
                _check(self, name, "read")
            return super().__getattribute__(name)

        def __setattr__(self, name: str, value: Any) -> None:
            if name in guard_map:
                _check(self, name, "written")
            super().__setattr__(name, value)

    Watched.__name__ = cls.__name__
    Watched.__qualname__ = cls.__qualname__
    _WATCHED_CACHE[cls] = Watched
    return Watched


_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()))


def instrument(
    obj: Any, registry: Optional[LockOrderRegistry] = None
) -> Any:
    """Instrument one instance in place; returns the same object.

    * every plain-lock attribute becomes a :class:`TrackedLock` whose
      label is ``ClassName.attr`` (order edges aggregate per class);
    * if the class declares ``#: guarded-by:`` fields, the instance is
      re-classed to a watching subclass that records unguarded access.

    Safe to call twice (idempotent); silently does nothing for classes
    without locks.  Must be applied *after* ``__init__`` ran — fields
    written during construction are unpublished and exempt, matching
    LINT010.
    """
    cls: Type[Any] = type(obj)
    if cls in _WATCHED_CACHE.values():
        base = cls.__bases__[0]
    else:
        base = cls
    reg = registry if registry is not None else GLOBAL_REGISTRY
    guarded = guarded_fields_of(base)
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict is None:
        return obj
    wrapped_any = False
    for name, value in list(instance_dict.items()):
        if isinstance(value, _LOCK_TYPES):
            instance_dict[name] = TrackedLock(
                f"{base.__name__}.{name}", reg, inner=value
            )
            wrapped_any = True
    if guarded and (wrapped_any or any(
        isinstance(v, TrackedLock) for v in instance_dict.values()
    )):
        if type(obj) is base:
            try:
                obj.__class__ = _watched_class(base, guarded)
            except TypeError:
                pass  # __slots__/extension classes: skip field watching
    return obj
