"""The plan-invariant taxonomy: one named violation class per invariant.

Every invariant the verifier checks encodes a specific guarantee of the
paper (see ``docs/ANALYSIS.md`` for the full mapping):

=========================  ======  ==============================================
violation                  code    paper guarantee it encodes
=========================  ======  ==============================================
MalformedPlanNode          PV000   plans are labeled k-ary trees (Section II-D)
DisconnectedDivision       PV001   every division part is connected
                                   (Definition 3, Algorithms 2–3)
OverlappingChildBitsets    PV002   division parts are a *partition*: disjoint
                                   (Definition 3)
ChildCoverageGap           PV003   division parts cover the parent exactly
                                   (Definition 3)
KAryBroadcast              PV004   broadcast joins are binary under TD-CMDP
                                   (Rule 2, Section IV-A)
NonCoLocatedLocalQuery     PV005   local joins only over subqueries contained in
                                   a maximal local query (Theorem 5, Appendix A)
CostMismatch               PV006   annotated cost/cardinality equal the cost
                                   model re-derived from the tree (Eq. 3,
                                   Tables I–II)
VariableBindingViolation   PV007   the join variable binds consistently
                                   bottom-up: every part of a distributed
                                   division contains a pattern of Ntp(v_j)
=========================  ======  ==============================================

Violations are exceptions (so ``PlanVerifier.check`` can raise the
first one found) but are normally *collected* into a
:class:`VerificationReport`, which keeps all findings with node
locations for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class InvariantViolation(Exception):
    """Base class: a plan node breaking a structural invariant.

    ``code`` identifies the invariant; ``bits`` locates the offending
    node (the subquery bitset it claims to compute).
    """

    code: str = "PV???"
    invariant: str = "unspecified plan invariant"

    def __init__(self, message: str, bits: Optional[int] = None) -> None:
        super().__init__(message)
        self.bits = bits

    def describe(self) -> str:
        """``code [bits]: message`` — the report line for this finding."""
        location = f" [bits={self.bits:#x}]" if self.bits is not None else ""
        return f"{self.code}{location}: {self}"


class MalformedPlanNode(InvariantViolation):
    """Not a labeled k-ary tree: bad arity, bad scan, unknown node type."""

    code = "PV000"
    invariant = "plans are labeled k-ary trees of scans and joins (Section II-D)"


class DisconnectedDivision(InvariantViolation):
    """A node's pattern bitset is not connected in the join graph."""

    code = "PV001"
    invariant = "every division part is connected (Definition 3, Algorithms 2-3)"


class OverlappingChildBitsets(InvariantViolation):
    """Two children of a join compute overlapping subqueries."""

    code = "PV002"
    invariant = "division parts are pairwise disjoint (Definition 3)"


class ChildCoverageGap(InvariantViolation):
    """A join's children do not cover its bitset exactly."""

    code = "PV003"
    invariant = "division parts cover the parent subquery exactly (Definition 3)"


class KAryBroadcast(InvariantViolation):
    """A k-ary (k > 2) broadcast join in a Rule-2 plan."""

    code = "PV004"
    invariant = "broadcast joins are binary under TD-CMDP (Rule 2, Section IV-A)"


class NonCoLocatedLocalQuery(InvariantViolation):
    """A local join over patterns the partitioning does not co-locate."""

    code = "PV005"
    invariant = (
        "local joins only over subqueries contained in a maximal local "
        "query of the configured partitioning (Theorem 5, Appendix A)"
    )


class CostMismatch(InvariantViolation):
    """Annotated cost or cardinality disagrees with the cost model."""

    code = "PV006"
    invariant = (
        "annotated cost/cardinality equal the Eq. 3 re-derivation from "
        "the tree (Tables I-II)"
    )


class VariableBindingViolation(InvariantViolation):
    """The join variable does not bind consistently bottom-up."""

    code = "PV007"
    invariant = (
        "every part of a distributed division contains a pattern "
        "adjacent to the join variable (Definition 3)"
    )


@dataclass
class VerificationReport:
    """All violations found in one plan, plus check bookkeeping."""

    violations: List[InvariantViolation] = field(default_factory=list)
    nodes_checked: int = 0
    checks_run: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the plan satisfied every checked invariant."""
        return not self.violations

    def codes(self) -> Tuple[str, ...]:
        """The distinct violation codes found, sorted."""
        return tuple(sorted({v.code for v in self.violations}))

    def raise_if_failed(self) -> None:
        """Raise the first (most severe by code order) violation."""
        if self.violations:
            raise sorted(self.violations, key=lambda v: v.code)[0]

    def render(self) -> str:
        """Human-readable report text."""
        head = (
            f"plan verification: {'OK' if self.ok else 'FAILED'} "
            f"({self.nodes_checked} nodes, {self.checks_run} checks, "
            f"{self.elapsed_seconds * 1000:.2f} ms)"
        )
        if self.ok:
            return head
        body = "\n".join(f"  {v.describe()}" for v in self.violations)
        return f"{head}\n{body}"
