"""AST-based lint with repo-specific determinism/correctness rules.

Rules (see :mod:`.rules` for the full rationale):

========  ========================================================
LINT001   unordered set iteration in determinism-critical modules
LINT002   unseeded ``random`` outside test code
LINT003   float ``==`` / ``!=`` in cost/cardinality code
LINT004   mutable default arguments
========  ========================================================

Suppress inline with ``# lint: disable=LINT001`` (comma-separate codes,
or ``all``).  CLI: ``python -m repro lint src/repro``.
"""

from .diagnostics import Diagnostic, Severity, render_all
from .rules import RULES, run_rules
from .runner import check_source, iter_python_files, lint_paths, main

__all__ = [
    "Diagnostic",
    "Severity",
    "RULES",
    "run_rules",
    "check_source",
    "iter_python_files",
    "lint_paths",
    "main",
    "render_all",
]
