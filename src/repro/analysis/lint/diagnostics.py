"""Lint diagnostics: findings, severities, and inline suppression.

Suppression is per-line: a trailing ``# lint: disable=LINT001`` comment
silences that rule on that line (comma-separate several codes, or use
``all``).  Suppressions are extracted from the token stream, so they
work on any physical line, including continuation lines.
"""

from __future__ import annotations

import enum
import io
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple


class Severity(enum.Enum):
    """How bad a finding is (affects reporting, not the exit code)."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding at one source location."""

    path: str
    line: int
    column: int
    code: str
    severity: Severity
    message: str

    def render(self) -> str:
        """``path:line:col: CODE severity: message`` (clickable)."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.code} {self.severity}: {self.message}"
        )


#: the sentinel accepted by ``# lint: disable=all`` (codes are
#: uppercased during parsing, so the sentinel is stored uppercased too)
DISABLE_ALL = "ALL"
_MARKER = "lint:"


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number → codes disabled on that line.

    Recognizes ``# lint: disable=CODE[,CODE...]`` comments; malformed
    markers are ignored (a linter must not crash on odd comments).
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            text = token.string.lstrip("#").strip()
            if not text.startswith(_MARKER):
                continue
            directive = text[len(_MARKER):].strip()
            if not directive.startswith("disable="):
                continue
            # a justification may follow the codes: take the first
            # whitespace-delimited token of each comma-separated piece
            codes = frozenset(
                piece.split()[0].upper()
                for piece in directive[len("disable="):].split(",")
                if piece.split()
            )
            if codes:
                suppressions[token.start[0]] = codes
    except tokenize.TokenError:
        pass
    return suppressions


def is_suppressed(
    diagnostic: Diagnostic, suppressions: Dict[int, FrozenSet[str]]
) -> bool:
    """Whether an inline directive on the finding's line silences it."""
    codes = suppressions.get(diagnostic.line)
    if codes is None:
        return False
    return DISABLE_ALL in codes or diagnostic.code in codes


def sort_key(diagnostic: Diagnostic) -> Tuple[str, int, int, str]:
    """Stable report order: path, then location, then code."""
    return (diagnostic.path, diagnostic.line, diagnostic.column, diagnostic.code)


def render_all(diagnostics: List[Diagnostic]) -> str:
    """The full report, one line per finding, stable order."""
    return "\n".join(d.render() for d in sorted(diagnostics, key=sort_key))
