"""The repo-specific lint rules (LINT001–LINT005).

Each rule is an AST pass producing :class:`~.diagnostics.Diagnostic`
findings.  The rules encode defect classes this repo has actually
shipped or is structurally exposed to:

* **LINT001** — iteration over ``set``/``frozenset`` values in
  determinism-critical modules (``core/``, ``partitioning/``) without
  ``sorted(...)``.  PR 2 shipped exactly this bug: seeded statistics
  iterated a ``frozenset`` in hash-seed order, silently breaking
  cross-process plan-cache hits.  ``dict`` iteration is exempt
  (insertion-ordered since 3.7); building a dict *from* a set-ish
  source is caught at the construction site instead.
* **LINT002** — unseeded ``random`` use outside test code: module-level
  ``random.<fn>()`` calls and argument-less ``random.Random()``.
  Reproducibility is a headline property of the experiments.
* **LINT003** — float ``==``/``!=`` in cost/cardinality code.  Costs
  are re-derived floating-point sums; exact comparison is how
  cache-rebuild drift hides.
* **LINT004** — mutable default arguments (``def f(x=[])``), the
  classic shared-state trap.
* **LINT005** — ambient wall-clock reads (``time.time()`` /
  ``time.monotonic()``) in ``core/`` / ``engine/`` outside the one
  sanctioned clock module (``core/governance.py``).  Deadlines are
  data: control flow must go through an injectable
  :class:`~repro.core.governance.Clock`, or expiry becomes untestable
  and chaos runs irreproducible.  ``time.perf_counter()`` stays legal —
  it only *measures* elapsed wall time for reports, it never decides.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePath
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .diagnostics import Diagnostic, Severity

# ----------------------------------------------------------------------
# scoping helpers
# ----------------------------------------------------------------------

#: modules where iteration order feeds plan choice, signatures, or cost
DETERMINISM_CRITICAL_PARTS = ("core", "partitioning")
#: modules where float equality is a correctness smell
FLOAT_SENSITIVE_PARTS = ("core", "baselines")


def _parts(path: str) -> Tuple[str, ...]:
    return PurePath(path).parts


def _is_test_path(path: str) -> bool:
    parts = _parts(path)
    name = parts[-1] if parts else ""
    return "tests" in parts or name.startswith("test_") or name.startswith("bench_")


# ----------------------------------------------------------------------
# set-ish expression inference (LINT001)
# ----------------------------------------------------------------------

#: builtin constructors producing sets
_SET_CONSTRUCTORS = {"set", "frozenset"}
#: repo methods documented to return set-like values
KNOWN_SET_METHODS = {
    "variables",
    "variables_of",
    "shared_variables",
    "pattern_join_variables",
}
#: set methods returning another set
_SET_PRODUCING_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
#: annotation names denoting set-like types
_SET_ANNOTATIONS = {
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "AbstractSet",
    "MutableSet",
}
#: consumers whose result does not depend on iteration order.  ``sum``
#: is deliberately absent: float addition is not associative, so even a
#: "reduction" over a set can differ across hash seeds.
ORDER_INSENSITIVE_CONSUMERS = {
    "sorted",
    "set",
    "frozenset",
    "any",
    "all",
    "len",
    "min",
    "max",
}
#: calls that materialize their argument's iteration order
ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "reversed", "iter"}


def _annotation_is_setish(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        return _annotation_is_setish(node.value)
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotations: "FrozenSet[Variable]"
        head = node.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] in _SET_ANNOTATIONS
    return False


class _Scope:
    """One lexical scope's set-ish name bindings."""

    def __init__(self) -> None:
        self.setish: Set[str] = set()
        self.not_setish: Set[str] = set()

    def mark(self, name: str, is_setish: bool) -> None:
        if is_setish:
            self.setish.add(name)
            self.not_setish.discard(name)
        else:
            self.not_setish.add(name)
            self.setish.discard(name)

    def lookup(self, name: str) -> Optional[bool]:
        if name in self.setish:
            return True
        if name in self.not_setish:
            return False
        return None


class _SetIterationVisitor(ast.NodeVisitor):
    """Flags order-sensitive iteration over set-ish expressions."""

    def __init__(self, path: str, setish_functions: FrozenSet[str]) -> None:
        self.path = path
        self.setish_functions = setish_functions
        self.scopes: List[_Scope] = [_Scope()]
        self.findings: List[Diagnostic] = []
        #: comprehension nodes exempted by an order-insensitive consumer
        self._exempt: Set[int] = set()

    # -- inference -----------------------------------------------------
    def _lookup(self, name: str) -> Optional[bool]:
        for scope in reversed(self.scopes):
            found = scope.lookup(name)
            if found is not None:
                return found
        return None

    def _is_setish(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return bool(self._lookup(node.id))
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                return (
                    func.id in _SET_CONSTRUCTORS
                    or func.id in self.setish_functions
                )
            if isinstance(func, ast.Attribute):
                if func.attr in KNOWN_SET_METHODS:
                    return True
                if func.attr in _SET_PRODUCING_METHODS:
                    return self._is_setish(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            # set algebra propagates set-ishness, but only when at least
            # one side is *known* set-ish (ints use the same operators)
            return self._is_setish(node.left) or self._is_setish(node.right)
        if isinstance(node, ast.IfExp):
            return self._is_setish(node.body) or self._is_setish(node.orelse)
        return False

    # -- scope management ----------------------------------------------
    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
    ) -> None:
        scope = _Scope()
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            if _annotation_is_setish(arg.annotation):
                scope.mark(arg.arg, True)
        self.scopes.append(scope)
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    # -- binding tracking ----------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        is_setish = self._is_setish(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.scopes[-1].mark(target.id, is_setish)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            is_setish = _annotation_is_setish(node.annotation) or (
                node.value is not None and self._is_setish(node.value)
            )
            self.scopes[-1].mark(node.target.id, is_setish)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name) and self._is_setish(node.value):
            self.scopes[-1].mark(node.target.id, True)
        self.generic_visit(node)

    # -- flagged contexts ----------------------------------------------
    def _flag(self, node: ast.expr, context: str) -> None:
        self.findings.append(
            Diagnostic(
                path=self.path,
                line=node.lineno,
                column=node.col_offset + 1,
                code="LINT001",
                severity=Severity.ERROR,
                message=(
                    f"{context} iterates a set in hash order; wrap in "
                    "sorted(...) with an explicit key (determinism-critical "
                    "module)"
                ),
            )
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_setish(node.iter):
            self._flag(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_ordered_comprehension(
        self,
        node: Union[ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp],
        context: str,
    ) -> None:
        if id(node) not in self._exempt:
            for generator in node.generators:
                if self._is_setish(generator.iter):
                    self._flag(generator.iter, context)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_ordered_comprehension(node, "list comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_ordered_comprehension(node, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_ordered_comprehension(node, "generator expression")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ORDER_INSENSITIVE_CONSUMERS:
                # sorted(s) / any(f(x) for x in s) / min(s) are fine:
                # their result does not depend on iteration order
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                        self._exempt.add(id(arg))
            elif func.id in ORDER_SENSITIVE_CALLS and node.args:
                if self._is_setish(node.args[0]):
                    self._flag(node.args[0], f"{func.id}(...)")
        elif isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
            if self._is_setish(node.args[0]):
                self._flag(node.args[0], "str.join")
        self.generic_visit(node)


def _module_setish_functions(tree: ast.Module) -> FrozenSet[str]:
    """Names of same-module functions annotated to return sets."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _annotation_is_setish(node.returns):
                names.add(node.name)
    return frozenset(names)


def check_set_iteration(tree: ast.Module, path: str) -> List[Diagnostic]:
    """LINT001: unordered set iteration in determinism-critical code."""
    parts = _parts(path)
    if not any(part in DETERMINISM_CRITICAL_PARTS for part in parts):
        return []
    if _is_test_path(path):
        return []
    visitor = _SetIterationVisitor(path, _module_setish_functions(tree))
    visitor.visit(tree)
    return visitor.findings


# ----------------------------------------------------------------------
# LINT002: unseeded random
# ----------------------------------------------------------------------

#: ``random.<name>`` attributes that are fine (seeded or explicit)
_SEEDABLE_RANDOM = {"Random", "SystemRandom", "seed"}


def check_unseeded_random(tree: ast.Module, path: str) -> List[Diagnostic]:
    """LINT002: unseeded ``random`` usage outside test code."""
    if _is_test_path(path):
        return []
    findings: List[Diagnostic] = []

    def flag(node: ast.AST, message: str) -> None:
        findings.append(
            Diagnostic(
                path=path,
                line=node.lineno,
                column=node.col_offset + 1,
                code="LINT002",
                severity=Severity.ERROR,
                message=message,
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            bad = [
                alias.name
                for alias in node.names
                if alias.name not in _SEEDABLE_RANDOM
            ]
            if bad:
                flag(
                    node,
                    f"from random import {', '.join(bad)} pulls module-level "
                    "(unseeded) state; use random.Random(seed) instead",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        flag(
                            node,
                            "random.Random() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                elif func.attr not in _SEEDABLE_RANDOM:
                    flag(
                        node,
                        f"module-level random.{func.attr}() uses the global "
                        "unseeded generator; use random.Random(seed)",
                    )
    return findings


# ----------------------------------------------------------------------
# LINT003: float equality in cost/cardinality code
# ----------------------------------------------------------------------

#: identifier suffixes that denote floating-point quantities here
_FLOAT_IDENT = re.compile(
    r"(?:^|_)(?:cost|costs|ratio|cardinality|card|weight|speedup|seconds)$"
)


def _float_identifier(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return repr(node.value)
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None and _FLOAT_IDENT.search(name.lower()):
        return name
    return None


def check_float_equality(tree: ast.Module, path: str) -> List[Diagnostic]:
    """LINT003: ``==`` / ``!=`` on float-valued cost expressions."""
    parts = _parts(path)
    if not any(part in FLOAT_SENSITIVE_PARTS for part in parts):
        return []
    if _is_test_path(path):
        return []
    findings: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            culprit = _float_identifier(left) or _float_identifier(right)
            if culprit is None:
                continue
            findings.append(
                Diagnostic(
                    path=path,
                    line=node.lineno,
                    column=node.col_offset + 1,
                    code="LINT003",
                    severity=Severity.WARNING,
                    message=(
                        f"float equality on {culprit!r}; use math.isclose "
                        "or restructure the comparison (costs are "
                        "re-derived float sums)"
                    ),
                )
            )
    return findings


# ----------------------------------------------------------------------
# LINT004: mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


def check_mutable_defaults(tree: ast.Module, path: str) -> List[Diagnostic]:
    """LINT004: mutable default arguments (shared across calls)."""
    findings: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                findings.append(
                    Diagnostic(
                        path=path,
                        line=default.lineno,
                        column=default.col_offset + 1,
                        code="LINT004",
                        severity=Severity.WARNING,
                        message=(
                            "mutable default argument is shared across "
                            "calls; default to None and construct inside"
                        ),
                    )
                )
    return findings


# ----------------------------------------------------------------------
# LINT005: ambient wall-clock reads in clock-governed modules
# ----------------------------------------------------------------------

#: modules whose control flow must read time through a governance clock
CLOCK_GOVERNED_PARTS = ("core", "engine")
#: the one module allowed to touch the wall clock (it *defines* the
#: production :class:`~repro.core.governance.Clock`)
_SANCTIONED_CLOCK_FILES = {"governance.py"}
#: ``time`` attributes that decide control flow when read ambiently
#: (``perf_counter`` is exempt: it measures, it never decides)
_WALL_CLOCK_FUNCTIONS = {"time", "monotonic"}


def check_wall_clock(tree: ast.Module, path: str) -> List[Diagnostic]:
    """LINT005: direct wall-clock reads outside the sanctioned clock."""
    parts = _parts(path)
    if not any(part in CLOCK_GOVERNED_PARTS for part in parts):
        return []
    if _is_test_path(path):
        return []
    if parts and parts[-1] in _SANCTIONED_CLOCK_FILES:
        return []
    findings: List[Diagnostic] = []

    def flag(node: ast.AST, message: str) -> None:
        findings.append(
            Diagnostic(
                path=path,
                line=node.lineno,
                column=node.col_offset + 1,
                code="LINT005",
                severity=Severity.ERROR,
                message=message,
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            bad = [
                alias.name
                for alias in node.names
                if alias.name in _WALL_CLOCK_FUNCTIONS
            ]
            if bad:
                flag(
                    node,
                    f"from time import {', '.join(bad)} reads the ambient "
                    "wall clock; deadlines must go through a "
                    "repro.core.governance Clock (ManualClock in tests)",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in _WALL_CLOCK_FUNCTIONS
            ):
                flag(
                    node,
                    f"time.{func.attr}() reads the ambient wall clock for "
                    "control flow; thread a repro.core.governance Deadline "
                    "(its Clock is injectable, so tests can force expiry)",
                )
    return findings


# ----------------------------------------------------------------------
# the rule registry
# ----------------------------------------------------------------------

RULES = {
    "LINT001": check_set_iteration,
    "LINT002": check_unseeded_random,
    "LINT003": check_float_equality,
    "LINT004": check_mutable_defaults,
    "LINT005": check_wall_clock,
}


def run_rules(
    tree: ast.Module, path: str, select: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    """Run (selected) rules over one parsed module."""
    codes: Sequence[str] = sorted(select) if select is not None else sorted(RULES)
    findings: List[Diagnostic] = []
    for code in codes:
        rule = RULES.get(code.upper())
        if rule is None:
            raise ValueError(f"unknown lint rule {code!r}; known: {sorted(RULES)}")
        findings.extend(rule(tree, path))
    return findings
