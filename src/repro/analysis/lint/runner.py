"""The lint driver: files → findings → report + exit code.

``check_source`` is the unit-test surface (lint a source string under a
pretend path); ``lint_paths`` is what the CLI and CI call.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .diagnostics import (
    Diagnostic,
    Severity,
    is_suppressed,
    parse_suppressions,
    render_all,
    sort_key,
)
from .rules import run_rules


def check_source(
    source: str, path: str, select: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    """Lint one source string as if it lived at *path*.

    The path matters: rule scoping (determinism-critical modules, test
    exemptions) is path-based.  Inline ``# lint: disable=`` suppressions
    are honored.  A file that does not parse yields one ERROR finding
    rather than crashing the run.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Diagnostic(
                path=path,
                line=error.lineno or 1,
                column=(error.offset or 1),
                code="LINT000",
                severity=Severity.ERROR,
                message=f"file does not parse: {error.msg}",
            )
        ]
    findings = run_rules(tree, path, select)
    if not findings:
        return []
    suppressions = parse_suppressions(source)
    kept = [f for f in findings if not is_suppressed(f, suppressions)]
    return sorted(kept, key=sort_key)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p
                for p in path.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
    return sorted(set(files))


def lint_paths(
    paths: Sequence[Union[str, Path]], select: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    """Lint every ``.py`` file under *paths*; findings in stable order."""
    findings: List[Diagnostic] = []
    for file in iter_python_files(paths):
        findings.extend(
            check_source(file.read_text(encoding="utf-8"), str(file), select)
        )
    return sorted(findings, key=sort_key)


def main(paths: Sequence[str], select: Optional[Iterable[str]] = None) -> int:
    """CLI entry: print findings, return 0 (clean) or 1 (findings)."""
    findings = lint_paths(paths, select)
    if findings:
        print(render_all(findings))
        errors = sum(1 for f in findings if f.severity is Severity.ERROR)
        warnings = len(findings) - errors
        print(f"lint: {errors} error(s), {warnings} warning(s)")
        return 1
    files = len(iter_python_files(paths))
    print(f"lint: {files} file(s) clean")
    return 0
