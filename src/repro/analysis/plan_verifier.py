"""Static plan-invariant verification (no execution required).

:class:`PlanVerifier` walks an emitted plan tree and checks every
invariant of :mod:`.invariants` against a :class:`VerificationContext`
— the same (join graph, estimator, cost parameters, local-query index)
quadruple the optimizer itself used.  Because the checks re-derive
everything from the tree, the verifier catches plans corrupted *after*
optimization: a plan-cache entry whose JSON was damaged on disk, a
parallel-search merge that drifted from the serial cost, or a
hand-constructed plan that skipped :class:`~repro.core.cost.PlanBuilder`.

Typical use::

    context = VerificationContext.for_query(query, statistics=stats,
                                            partitioning=method)
    report = PlanVerifier(context).verify(result.plan)
    report.raise_if_failed()

or, for a whole :class:`~repro.core.enumeration.OptimizationResult`
(the Rule-2 profile is derived from the result's algorithm label)::

    verify_result(result, context).raise_if_failed()
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import List, Optional

from ..partitioning.base import PartitioningMethod
from ..rdf.dataset import Dataset
from ..sparql.ast import BGPQuery
from ..core import bitset as bs
from ..core.cardinality import CardinalityEstimator, StatisticsCatalog
from ..core.cost import CostParameters, PAPER_PARAMETERS
from ..core.enumeration import InvariantProfile, OptimizationResult
from ..core.join_graph import JoinGraph
from ..core.local_query import LocalQueryIndex
from ..core.plans import JoinAlgorithm, JoinNode, PlanNode, ScanNode
from .invariants import (
    ChildCoverageGap,
    CostMismatch,
    DisconnectedDivision,
    InvariantViolation,
    KAryBroadcast,
    MalformedPlanNode,
    NonCoLocatedLocalQuery,
    OverlappingChildBitsets,
    VariableBindingViolation,
    VerificationReport,
)

#: tolerances for re-derived float comparisons.  The re-derivation runs
#: the identical arithmetic as PlanBuilder, so in practice the match is
#: exact; the tolerance only absorbs serialization round-trips.
REL_TOL = 1e-9
ABS_TOL = 1e-12


def profile_for_algorithm(algorithm: str) -> InvariantProfile:
    """The invariant profile an algorithm label promises.

    Labels are matched by substring because the optimizer decorates
    them: ``"TD-Auto[TD-CMDP]"``, ``"TD-CMDP[parallel x4]"``, and
    ``"td-cmdp+cache"`` all promise the TD-CMDP pruning rules.
    """
    name = algorithm.lower()
    pruned = "td-cmdp" in name
    return InvariantProfile(broadcast_binary_only=pruned, local_flat_only=pruned)


@dataclass(frozen=True)
class VerificationContext:
    """Everything a plan's invariants are checked *against*.

    ``estimator`` / ``parameters`` may be ``None``, which skips the
    cost-model re-derivation (PV006) and checks structure only — the
    mode the CLI's ``verify-plan --structure-only`` uses when no
    statistics are available for a serialized plan.
    """

    join_graph: JoinGraph
    local_index: LocalQueryIndex
    estimator: Optional[CardinalityEstimator] = None
    parameters: Optional[CostParameters] = None
    profile: InvariantProfile = InvariantProfile()

    @classmethod
    def for_query(
        cls,
        query: BGPQuery,
        statistics: Optional[StatisticsCatalog] = None,
        dataset: Optional[Dataset] = None,
        partitioning: Optional[PartitioningMethod] = None,
        parameters: Optional[CostParameters] = PAPER_PARAMETERS,
        algorithm: Optional[str] = None,
        seed: int = 0,
        structure_only: bool = False,
    ) -> "VerificationContext":
        """Build a context the way :func:`repro.core.optimize` would.

        Statistics resolve explicit > dataset > seeded-random, exactly
        matching the optimizer, so a verifier-clean plan is guaranteed
        to have been priced by the same model it is checked against.
        """
        from ..core.optimizer import resolve_statistics

        join_graph = JoinGraph(query)
        local_index = LocalQueryIndex(join_graph, partitioning)
        estimator: Optional[CardinalityEstimator] = None
        if not structure_only:
            catalog = resolve_statistics(query, statistics, dataset, seed)
            estimator = CardinalityEstimator(join_graph, catalog)
        profile = (
            profile_for_algorithm(algorithm) if algorithm else InvariantProfile()
        )
        return cls(
            join_graph=join_graph,
            local_index=local_index,
            estimator=estimator,
            parameters=None if structure_only else parameters,
            profile=profile,
        )

    def with_profile(self, profile: InvariantProfile) -> "VerificationContext":
        """The same context under a different invariant profile."""
        return dataclasses.replace(self, profile=profile)


class PlanVerifier:
    """Checks one plan tree against one :class:`VerificationContext`."""

    def __init__(self, context: VerificationContext) -> None:
        self.context = context

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def verify(
        self, plan: PlanNode, expected_bits: Optional[int] = None
    ) -> VerificationReport:
        """Collect every violation into a :class:`VerificationReport`."""
        started = time.perf_counter()
        report = VerificationReport()
        root_bits = (
            expected_bits if expected_bits is not None else self.context.join_graph.full
        )
        if plan.bits != root_bits:
            report.checks_run += 1
            report.violations.append(
                MalformedPlanNode(
                    f"root covers bitset {plan.bits:#x}, expected {root_bits:#x}",
                    bits=plan.bits,
                )
            )
        for node in plan.walk():
            report.nodes_checked += 1
            self._check_node(node, report)
        report.elapsed_seconds = time.perf_counter() - started
        return report

    def check(self, plan: PlanNode, expected_bits: Optional[int] = None) -> None:
        """Raise the most severe violation, or return silently."""
        self.verify(plan, expected_bits).raise_if_failed()

    # ------------------------------------------------------------------
    # per-node checks
    # ------------------------------------------------------------------
    def _check_node(self, node: PlanNode, report: VerificationReport) -> None:
        checks: List[InvariantViolation] = []
        if isinstance(node, ScanNode):
            self._check_scan(node, checks, report)
        elif isinstance(node, JoinNode):
            self._check_join(node, checks, report)
        else:
            report.checks_run += 1
            checks.append(
                MalformedPlanNode(
                    f"unknown plan node type {type(node).__name__}", bits=node.bits
                )
            )
        report.violations.extend(checks)

    def _check_scan(
        self, node: ScanNode, out: List[InvariantViolation], report: VerificationReport
    ) -> None:
        graph = self.context.join_graph
        report.checks_run += 1
        if bs.popcount(node.bits) != 1:
            out.append(
                MalformedPlanNode(
                    f"scan covers {bs.popcount(node.bits)} patterns, expected 1",
                    bits=node.bits,
                )
            )
            return
        report.checks_run += 1
        index = bs.lowest_index(node.bits)
        if node.pattern_index != index:
            out.append(
                MalformedPlanNode(
                    f"scan pattern_index {node.pattern_index} does not match "
                    f"bitset index {index}",
                    bits=node.bits,
                )
            )
            return
        report.checks_run += 1
        if index >= graph.size:
            out.append(
                MalformedPlanNode(
                    f"scan pattern index {index} beyond query size {graph.size}",
                    bits=node.bits,
                )
            )
            return
        estimator = self.context.estimator
        if estimator is not None:
            report.checks_run += 1
            expected_card = estimator.pattern_cardinality(index)
            if not _close(node.cardinality, expected_card):
                out.append(
                    CostMismatch(
                        f"scan[{index}] cardinality {node.cardinality!r} != "
                        f"estimator's {expected_card!r}",
                        bits=node.bits,
                    )
                )
            report.checks_run += 1
            if not _close(node.cost, 0.0):
                out.append(
                    CostMismatch(
                        f"scan[{index}] cost {node.cost!r} != 0.0 "
                        "(scans are free; operators charge I/O)",
                        bits=node.bits,
                    )
                )

    def _check_join(
        self, node: JoinNode, out: List[InvariantViolation], report: VerificationReport
    ) -> None:
        graph = self.context.join_graph
        # -- PV000: k-ary tree shape -----------------------------------
        report.checks_run += 1
        if node.arity < 2:
            out.append(
                MalformedPlanNode(
                    f"join with arity {node.arity} (needs >= 2)", bits=node.bits
                )
            )
            return
        # -- PV002 / PV003: disjoint exact cover (Definition 3) --------
        report.checks_run += 1
        union = 0
        overlapped = False
        for child in node.children:
            if union & child.bits:
                overlapped = True
                out.append(
                    OverlappingChildBitsets(
                        f"child {child.bits:#x} overlaps siblings "
                        f"{union & child.bits:#x}",
                        bits=node.bits,
                    )
                )
            union |= child.bits
        report.checks_run += 1
        if not overlapped and union != node.bits:
            missing = node.bits & ~union
            extra = union & ~node.bits
            detail = []
            if missing:
                detail.append(f"missing {missing:#x}")
            if extra:
                detail.append(f"extra {extra:#x}")
            out.append(
                ChildCoverageGap(
                    f"children cover {union:#x}, parent claims {node.bits:#x} "
                    f"({', '.join(detail)})",
                    bits=node.bits,
                )
            )
        # -- PV001: connectivity (Definition 3, Algorithms 2-3) --------
        report.checks_run += 1
        if not graph.is_connected(node.bits):
            out.append(
                DisconnectedDivision(
                    f"subquery {node.bits:#x} is not connected in the join graph",
                    bits=node.bits,
                )
            )
        for child in node.children:
            report.checks_run += 1
            if not graph.is_connected(child.bits):
                out.append(
                    DisconnectedDivision(
                        f"division part {child.bits:#x} is not connected",
                        bits=node.bits,
                    )
                )
        # -- PV004: Rule 2 (broadcast binary-only under TD-CMDP) -------
        if self.context.profile.broadcast_binary_only:
            report.checks_run += 1
            if node.algorithm is JoinAlgorithm.BROADCAST and node.arity > 2:
                out.append(
                    KAryBroadcast(
                        f"{node.arity}-ary broadcast join in a Rule-2 plan",
                        bits=node.bits,
                    )
                )
        # -- PV005: local joins over co-located patterns only ----------
        if node.algorithm is JoinAlgorithm.LOCAL:
            report.checks_run += 1
            if not self.context.local_index.is_local(node.bits):
                out.append(
                    NonCoLocatedLocalQuery(
                        f"local join over {node.bits:#x}, which is not contained "
                        "in any maximal local query of the partitioning",
                        bits=node.bits,
                    )
                )
        # -- PV007: the join variable binds bottom-up ------------------
        self._check_join_variable(node, out, report)
        # -- PV006: cost model agreement (Eq. 3, Tables I-II) ----------
        self._check_cost(node, out, report)

    def _check_join_variable(
        self, node: JoinNode, out: List[InvariantViolation], report: VerificationReport
    ) -> None:
        graph = self.context.join_graph
        variable = node.join_variable
        distributed = node.algorithm in (
            JoinAlgorithm.BROADCAST,
            JoinAlgorithm.REPARTITION,
        )
        if variable is None:
            # Distributed joins come from divisions around a concrete
            # join variable (Definition 3); a missing label means the
            # plan did not come out of cmd enumeration.
            if distributed:
                report.checks_run += 1
                out.append(
                    VariableBindingViolation(
                        "distributed join without a join variable", bits=node.bits
                    )
                )
            return
        report.checks_run += 1
        if variable not in graph.join_variables:
            out.append(
                VariableBindingViolation(
                    f"join variable {variable} is not a join variable of the query",
                    bits=node.bits,
                )
            )
            return
        ntp = graph.ntp(variable)
        if distributed:
            # Every division part must contain a pattern of Ntp(v_j),
            # otherwise joining the parts on v_j is a Cartesian product.
            for child in node.children:
                report.checks_run += 1
                if ntp & child.bits == 0:
                    out.append(
                        VariableBindingViolation(
                            f"division part {child.bits:#x} contains no pattern "
                            f"binding the join variable {variable}",
                            bits=node.bits,
                        )
                    )
        else:
            # A flat local join labels *one* shared variable; it must be
            # shared by at least two of the joined patterns.
            report.checks_run += 1
            if bs.popcount(ntp & node.bits) < 2:
                out.append(
                    VariableBindingViolation(
                        f"local join labeled with {variable}, which is shared by "
                        f"fewer than two of its patterns",
                        bits=node.bits,
                    )
                )

    def _check_cost(
        self, node: JoinNode, out: List[InvariantViolation], report: VerificationReport
    ) -> None:
        estimator = self.context.estimator
        parameters = self.context.parameters
        if estimator is None or parameters is None:
            return
        report.checks_run += 1
        expected_card = estimator.cardinality(node.bits)
        if not _close(node.cardinality, expected_card):
            out.append(
                CostMismatch(
                    f"cardinality {node.cardinality!r} != estimator's "
                    f"{expected_card!r}",
                    bits=node.bits,
                )
            )
        inputs = [child.cardinality for child in node.children]
        if not inputs:
            return
        report.checks_run += 1
        expected_op = parameters.operator_cost(node.algorithm, inputs, expected_card)
        if not _close(node.operator_cost, expected_op):
            out.append(
                CostMismatch(
                    f"operator cost {node.operator_cost!r} != Table I "
                    f"re-derivation {expected_op!r}",
                    bits=node.bits,
                )
            )
        # Eq. 3: children run concurrently — the plan costs the most
        # expensive child plus this operator.  Children's *stored* costs
        # are used so one corrupted node yields one finding, not a
        # cascade up the tree.
        report.checks_run += 1
        expected_total = max(child.cost for child in node.children) + expected_op
        if not _close(node.cost, expected_total):
            out.append(
                CostMismatch(
                    f"plan cost {node.cost!r} != Eq. 3 re-derivation "
                    f"{expected_total!r}",
                    bits=node.bits,
                )
            )


def verify_result(
    result: OptimizationResult,
    context: VerificationContext,
    expected_bits: Optional[int] = None,
) -> VerificationReport:
    """Verify an :class:`OptimizationResult` end to end.

    The Rule-2 profile is derived from the result's algorithm label (so
    ``"TD-CMDP[parallel x4]"`` and ``"td-cmdp+cache"`` are held to the
    pruned invariants automatically), overriding the context's profile.
    """
    profiled = context.with_profile(profile_for_algorithm(result.algorithm))
    return PlanVerifier(profiled).verify(result.plan, expected_bits)


def _close(actual: float, expected: float) -> bool:
    return math.isclose(actual, expected, rel_tol=REL_TOL, abs_tol=ABS_TOL)
