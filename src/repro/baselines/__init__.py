"""Baseline optimizers the paper compares against."""

from .dp_bushy import DPBushyOptimizer, maximal_multiway_division
from .msc import MSCOptimizer, minimum_set_covers
from .triad_dp import TriADOptimizer

__all__ = [
    "MSCOptimizer",
    "DPBushyOptimizer",
    "TriADOptimizer",
    "minimum_set_covers",
    "maximal_multiway_division",
]
