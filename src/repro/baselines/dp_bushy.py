"""The DP-Bushy baseline (Huang, Venkatraman & Abadi, ICDE 2014).

A top-down dynamic program over subqueries that, at every level,
considers

* **all binary set divisions** — enumerated *without* checking
  connectivity in the join graph; divisions that turn out to be
  Cartesian products are only discarded after they were generated
  (Section III of the paper proves this gives exponential amortized
  complexity per join operator on chain and cycle queries, which is why
  the paper's Table VII reports N/A for DP-Bushy on large chains), and
* **one maximal multi-way join**: the division grouping the subquery
  around the join variable of highest degree, joining as many inputs
  as possible at once.

Local subqueries are seeded with the flat local-join plan, mirroring
how DP-Bushy exploits hash-partitioned co-location.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..core import bitset as bs
from ..core.cost import PlanBuilder
from ..core.enumeration import (
    CartesianProductError,
    EnumerationStats,
    OptimizationResult,
    OptimizationTimeout,
)
from ..core.join_graph import JoinGraph
from ..core.local_query import LocalQueryIndex
from ..core.plans import JoinAlgorithm, PlanNode
from ..rdf.terms import Variable


class DPBushyOptimizer:
    """Top-down DP with unchecked binary divisions + one maximal k-way join."""

    algorithm_name = "DP-Bushy"

    def __init__(
        self,
        join_graph: JoinGraph,
        builder: PlanBuilder,
        local_index: Optional[LocalQueryIndex] = None,
        timeout_seconds: Optional[float] = None,
    ) -> None:
        self.join_graph = join_graph
        self.builder = builder
        self.local_index = local_index or LocalQueryIndex(join_graph, None)
        self.timeout_seconds = timeout_seconds
        self.stats = EnumerationStats()
        self._memo: Dict[int, Optional[PlanNode]] = {}
        self._deadline: Optional[float] = None

    def optimize(self) -> OptimizationResult:
        """Run the top-down DP from the full query."""
        if not self.join_graph.is_connected(self.join_graph.full):
            raise CartesianProductError("query is disconnected")
        started = time.perf_counter()
        self._deadline = (
            started + self.timeout_seconds if self.timeout_seconds else None
        )
        plan = self._best_plan(self.join_graph.full)
        if plan is None:
            raise CartesianProductError("DP-Bushy produced no plan")
        elapsed = time.perf_counter() - started
        return OptimizationResult(
            plan=plan,
            algorithm=self.algorithm_name,
            stats=self.stats,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    def _best_plan(self, bits: int) -> Optional[PlanNode]:
        if bits in self._memo:
            self.stats.memo_hits += 1
            return self._memo[bits]
        self._check_deadline()
        self.stats.subqueries_expanded += 1
        if bs.popcount(bits) == 1:
            plan: Optional[PlanNode] = self.builder.scan(bs.lowest_index(bits))
            self._memo[bits] = plan
            return plan
        # disconnected subqueries have no Cartesian-product-free plan;
        # DP-Bushy discovers this only *after* recursing into them
        if not self.join_graph.is_connected(bits):
            self._memo[bits] = None
            return None
        best: Optional[PlanNode] = None
        if self.local_index.is_local(bits):
            best = self.builder.local_join_plan(bits)
            self.stats.plans_considered += 1
        best = self._try_binary_divisions(bits, best)
        best = self._try_maximal_multiway(bits, best)
        self._memo[bits] = best
        return best

    def _try_binary_divisions(
        self, bits: int, best: Optional[PlanNode]
    ) -> Optional[PlanNode]:
        """Every binary set division — connectivity checked only afterwards."""
        anchor = bs.lowest_bit(bits)
        rest = bits & ~anchor
        sub = rest
        while True:
            left = anchor | sub
            right = bits & ~left
            if right:
                self.stats.divisions_enumerated += 1
                # the inefficiency under study: recurse first, then let the
                # connectivity test inside the recursion reject the division
                left_plan = self._best_plan(left)
                right_plan = self._best_plan(right)
                if left_plan is not None and right_plan is not None:
                    for algorithm in (
                        JoinAlgorithm.BROADCAST,
                        JoinAlgorithm.REPARTITION,
                    ):
                        variable = self._shared_join_variable(left, right)
                        candidate = self.builder.join(
                            algorithm, [left_plan, right_plan], variable
                        )
                        self.stats.plans_considered += 1
                        if best is None or candidate.cost < best.cost:
                            best = candidate
            if sub == 0:
                break
            sub = (sub - 1) & rest
        return best

    def _try_maximal_multiway(
        self, bits: int, best: Optional[PlanNode]
    ) -> Optional[PlanNode]:
        """The k-way join with maximal k: group around the busiest variable."""
        division = maximal_multiway_division(self.join_graph, bits)
        if division is None:
            return best
        parts, variable = division
        if len(parts) < 3:
            return best  # binary case already covered
        children: List[PlanNode] = []
        for part in parts:
            child = self._best_plan(part)
            if child is None:
                return best
            children.append(child)
        self.stats.divisions_enumerated += 1
        candidate = self.builder.join(JoinAlgorithm.REPARTITION, children, variable)
        self.stats.plans_considered += 1
        if best is None or candidate.cost < best.cost:
            best = candidate
        return best

    def _shared_join_variable(self, left: int, right: int) -> Optional[Variable]:
        for variable in self.join_graph.join_variables:
            ntp = self.join_graph.ntp(variable)
            if ntp & left and ntp & right:
                return variable
        return None

    def _check_deadline(self) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise OptimizationTimeout(
                f"{self.algorithm_name} exceeded {self.timeout_seconds:.0f}s"
            )


def maximal_multiway_division(
    join_graph: JoinGraph, bits: int
) -> Optional[Tuple[List[int], Variable]]:
    """Group *bits* around its highest-degree join variable.

    Each pattern adjacent to the variable seeds one part; every other
    pattern is attached to the part it is (transitively) connected to
    once the variable is removed.  Returns ``None`` when no variable
    has degree ≥ 2 inside *bits* or some pattern cannot be attached.
    """
    best_variable: Optional[Variable] = None
    best_degree = 1
    for variable in join_graph.join_variables:
        degree = bs.popcount(join_graph.ntp(variable) & bits)
        if degree > best_degree:
            best_degree = degree
            best_variable = variable
    if best_variable is None:
        return None
    ntp = join_graph.ntp(best_variable) & bits
    parts: List[int] = []
    for component in join_graph.connected_components(bits, exclude=best_variable):
        seeds = component & ntp
        if seeds == 0:
            return None  # stranded component: no valid maximal division
        if bs.popcount(seeds) == 1:
            parts.append(component)
            continue
        # split the component among its seeds: grow each seed over the
        # component (minus the variable) in round-robin BFS
        assigned = {index: bs.bit(index) for index in bs.iter_bits(seeds)}
        claimed = seeds
        changed = True
        while claimed != component and changed:
            changed = False
            for index in list(assigned):
                frontier = (
                    join_graph.neighbors(assigned[index], exclude=best_variable)
                    & component
                    & ~claimed
                )
                if frontier:
                    grab = bs.lowest_bit(frontier)
                    assigned[index] |= grab
                    claimed |= grab
                    changed = True
        if claimed != component:
            return None
        parts.extend(assigned.values())
    return parts, best_variable
