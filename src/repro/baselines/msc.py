"""The MSC baseline: CliqueSquare-style flat plans via minimum set cover.

Goasdoué et al.'s CliqueSquare optimizer ("MSC" in the paper) builds
*flat* plans level by level.  At every level the current intermediate
results are grouped into *cliques* — one per join variable, containing
every node whose result carries that variable — and an **exact minimum
set cover** of the nodes by cliques decides which multi-way joins to
apply.  All minimum covers are enumerated and the construction branches
on each, so the per-level work is exponential (minimum set cover is
NP-hard), which is precisely the inefficiency Section III of the paper
criticizes: optimization time explodes with the number of patterns
(L9 takes 432 s, L10 more than 10 h in the paper's Table IV).

First-level joins that are local queries for the configured
partitioning run as local joins (CliqueSquare's co-located star joins
under hash partitioning); everything else uses repartition joins —
flat plans cannot exploit broadcast joins, which is why MSC loses on
the paper's tree-shaped benchmarks (L6, U3, U4).
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core import bitset as bs
from ..core.cost import PlanBuilder
from ..core.enumeration import (
    CartesianProductError,
    EnumerationStats,
    OptimizationResult,
    OptimizationTimeout,
)
from ..core.join_graph import JoinGraph
from ..core.local_query import LocalQueryIndex
from ..core.plans import JoinAlgorithm, PlanNode
from ..rdf.terms import Variable


def _subsets_containing(members: FrozenSet[int], element: int):
    """All subsets of *members* that contain *element* (largest first)."""
    others = sorted(members - {element}, reverse=True)
    for mask in range((1 << len(others)) - 1, -1, -1):
        subset = {element}
        for i, value in enumerate(others):
            if mask & (1 << i):
                subset.add(value)
        yield frozenset(subset)


def minimum_set_covers(
    universe: FrozenSet[int],
    candidates: Sequence[Tuple[Variable, FrozenSet[int]]],
    deadline: Optional[float] = None,
    partial_cliques: bool = True,
) -> List[Tuple[Tuple[Variable, FrozenSet[int]], ...]]:
    """Enumerate *all* minimum-cardinality set covers (exact, exponential).

    With ``partial_cliques`` (CliqueSquare semantics) any sub-clique —
    a subset of the nodes sharing a variable — may participate in a
    cover, so the number of minimum covers is exponential in the clique
    degrees.  This per-level enumeration is exactly the inefficiency the
    paper attributes to MSC (Section III: "the complexity of enumerating
    the join operators at each level is exponential").

    Branch and bound on the least-covered element; covers are returned
    as tuples of (variable, covered-elements) groups.
    """
    best_size = len(universe) + 1
    covers: List[Tuple[Tuple[Variable, FrozenSet[int]], ...]] = []

    def recurse(
        uncovered: FrozenSet[int], chosen: List[Tuple[Variable, FrozenSet[int]]]
    ) -> None:
        nonlocal best_size, covers
        if deadline is not None and time.perf_counter() > deadline:
            raise OptimizationTimeout("MSC minimum set cover exceeded deadline")
        if not uncovered:
            if len(chosen) < best_size:
                best_size = len(chosen)
                covers = [tuple(chosen)]
            elif len(chosen) == best_size:
                covers.append(tuple(chosen))
            return
        if len(chosen) + 1 > best_size:
            return
        element = min(uncovered)
        for variable, members in candidates:
            if element not in members:
                continue
            if partial_cliques:
                for subset in _subsets_containing(members, element):
                    chosen.append((variable, subset))
                    recurse(uncovered - subset, chosen)
                    chosen.pop()
            else:
                chosen.append((variable, members))
                recurse(uncovered - members, chosen)
                chosen.pop()

    recurse(universe, [])
    # deduplicate order-insensitive covers
    unique = {
        tuple(sorted(c, key=lambda kv: (kv[0].name, sorted(kv[1])))): c
        for c in covers
    }
    return list(unique.values())


class MSCOptimizer:
    """Level-wise flat-plan optimizer with exact minimum set cover."""

    algorithm_name = "MSC"

    def __init__(
        self,
        join_graph: JoinGraph,
        builder: PlanBuilder,
        local_index: Optional[LocalQueryIndex] = None,
        timeout_seconds: Optional[float] = None,
    ) -> None:
        self.join_graph = join_graph
        self.builder = builder
        self.local_index = local_index or LocalQueryIndex(join_graph, None)
        self.timeout_seconds = timeout_seconds
        self.stats = EnumerationStats()
        self._deadline: Optional[float] = None

    def optimize(self) -> OptimizationResult:
        """Build and cost all minimum-cover flat plans; return the best."""
        if not self.join_graph.is_connected(self.join_graph.full):
            raise CartesianProductError("query is disconnected")
        started = time.perf_counter()
        self._deadline = (
            started + self.timeout_seconds if self.timeout_seconds else None
        )
        leaves: List[PlanNode] = [
            self.builder.scan(i) for i in range(self.join_graph.size)
        ]
        best = self._build_levels(leaves, first_level=True)
        if best is None:
            raise CartesianProductError("MSC found no complete flat plan")
        elapsed = time.perf_counter() - started
        return OptimizationResult(
            plan=best,
            algorithm=self.algorithm_name,
            stats=self.stats,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    def _build_levels(
        self, nodes: List[PlanNode], first_level: bool
    ) -> Optional[PlanNode]:
        """Recursively apply one minimum-cover join level; return best plan."""
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise OptimizationTimeout(
                f"MSC exceeded {self.timeout_seconds:.0f}s"
            )
        if len(nodes) == 1:
            return nodes[0]
        cliques = self._cliques(nodes)
        if not cliques:
            return None
        universe = frozenset(range(len(nodes)))
        covers = minimum_set_covers(universe, cliques, self._deadline)
        best: Optional[PlanNode] = None
        for cover in covers:
            # CliqueSquare considers every way of assigning a node that
            # belongs to several chosen cliques — this per-level branching
            # is where MSC's exponential optimization time comes from
            for assignment in self._assignments(nodes, cover):
                next_nodes = self._apply_assignment(nodes, cover, assignment)
                if next_nodes is None:
                    continue
                candidate = self._build_levels(next_nodes, first_level=False)
                if candidate is not None and (
                    best is None or candidate.cost < best.cost
                ):
                    best = candidate
        return best

    def _assignments(
        self,
        nodes: List[PlanNode],
        cover: Sequence[Tuple[Variable, FrozenSet[int]]],
    ):
        """Every node→clique assignment (exponential in shared nodes)."""
        choices: List[List[int]] = []
        for node_index in range(len(nodes)):
            owners = [
                clique_index
                for clique_index, (_, members) in enumerate(cover)
                if node_index in members
            ]
            choices.append(owners)
        total = 1
        for owners in choices:
            total *= len(owners)

        def recurse(index: int, current: List[int]):
            if self._deadline is not None and time.perf_counter() > self._deadline:
                raise OptimizationTimeout(
                    f"MSC exceeded {self.timeout_seconds:.0f}s"
                )
            if index == len(choices):
                yield list(current)
                return
            for owner in choices[index]:
                current.append(owner)
                yield from recurse(index + 1, current)
                current.pop()

        yield from recurse(0, [])

    def _cliques(
        self, nodes: List[PlanNode]
    ) -> List[Tuple[Variable, FrozenSet[int]]]:
        """One clique per join variable: the nodes whose output carries it."""
        cliques: List[Tuple[Variable, FrozenSet[int]]] = []
        for variable in self.join_graph.join_variables:
            members = frozenset(
                i
                for i, node in enumerate(nodes)
                if variable in self.join_graph.variables_of(node.bits)
            )
            if len(members) >= 1:
                cliques.append((variable, members))
        return cliques

    def _apply_assignment(
        self,
        nodes: List[PlanNode],
        cover: Sequence[Tuple[Variable, FrozenSet[int]]],
        assignment: Sequence[int],
    ) -> Optional[List[PlanNode]]:
        """Join each clique's assigned nodes into one multi-way join.

        Cliques left with fewer than two nodes pass their node through
        unchanged; a level that makes no progress is rejected.
        """
        groups: Dict[int, List[PlanNode]] = {}
        for node_index, clique_index in enumerate(assignment):
            groups.setdefault(clique_index, []).append(nodes[node_index])
        next_nodes: List[PlanNode] = []
        for clique_index, (variable, _) in enumerate(cover):
            members = groups.get(clique_index, [])
            if not members:
                continue
            if len(members) == 1:
                next_nodes.append(members[0])
                continue
            bits = 0
            for m in members:
                bits |= m.bits
            if self.local_index.is_local(bits) and all(
                bs.popcount(m.bits) == 1 for m in members
            ):
                algorithm = JoinAlgorithm.LOCAL
            else:
                algorithm = JoinAlgorithm.REPARTITION
            join = self.builder.join(algorithm, members, variable)
            self.stats.plans_considered += 1
            self.stats.divisions_enumerated += 1
            next_nodes.append(join)
        if len(next_nodes) >= len(nodes):
            return None  # no progress; avoid infinite recursion
        return next_nodes
