"""A TriAD-style baseline: bottom-up binary bushy DP.

Gurajada et al.'s TriAD optimizer enumerates *binary* bushy plans with
a bottom-up dynamic program over connected subgraphs (in the spirit of
Moerkotte & Neumann's DPccp, which the paper cites as the optimally
efficient binary enumerator).  The paper excludes TriAD from its main
comparison because multi-way plans dominate binary plans on
MapReduce-like engines; we include it as an additional baseline and for
the ablation "how much do k-way joins buy?".
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core import bitset as bs
from ..core.cost import PlanBuilder
from ..core.enumeration import (
    CartesianProductError,
    EnumerationStats,
    OptimizationResult,
    OptimizationTimeout,
)
from ..core.join_graph import JoinGraph
from ..core.local_query import LocalQueryIndex
from ..core.plans import JoinAlgorithm, PlanNode
from ..rdf.terms import Variable


class TriADOptimizer:
    """Bottom-up DP over connected subqueries; binary joins only."""

    algorithm_name = "TriAD-DP"

    def __init__(
        self,
        join_graph: JoinGraph,
        builder: PlanBuilder,
        local_index: Optional[LocalQueryIndex] = None,
        timeout_seconds: Optional[float] = None,
    ) -> None:
        self.join_graph = join_graph
        self.builder = builder
        self.local_index = local_index or LocalQueryIndex(join_graph, None)
        self.timeout_seconds = timeout_seconds
        self.stats = EnumerationStats()
        self._deadline: Optional[float] = None

    def optimize(self) -> OptimizationResult:
        """Fill the DP table bottom-up; return the full query's plan."""
        full = self.join_graph.full
        if not self.join_graph.is_connected(full):
            raise CartesianProductError("query is disconnected")
        started = time.perf_counter()
        self._deadline = (
            started + self.timeout_seconds if self.timeout_seconds else None
        )
        table: Dict[int, PlanNode] = {}
        for i in range(self.join_graph.size):
            table[bs.bit(i)] = self.builder.scan(i)
        order = self._connected_subqueries_by_size()
        for bits in order:
            if bits in table:
                continue
            self._check_deadline()
            self.stats.subqueries_expanded += 1
            best: Optional[PlanNode] = None
            if self.local_index.is_local(bits):
                best = self.builder.local_join_plan(bits)
                self.stats.plans_considered += 1
            anchor = bs.lowest_bit(bits)
            rest = bits & ~anchor
            sub = rest
            while True:
                left = anchor | sub
                right = bits & ~left
                if right and left in table and right in table:
                    if self._connected_pair(left, right):
                        self.stats.divisions_enumerated += 1
                        variable = self._shared_join_variable(left, right)
                        for algorithm in (
                            JoinAlgorithm.BROADCAST,
                            JoinAlgorithm.REPARTITION,
                        ):
                            candidate = self.builder.join(
                                algorithm, [table[left], table[right]], variable
                            )
                            self.stats.plans_considered += 1
                            if best is None or candidate.cost < best.cost:
                                best = candidate
                if sub == 0:
                    break
                sub = (sub - 1) & rest
            if best is not None:
                table[bits] = best
        plan = table.get(full)
        if plan is None:
            raise CartesianProductError("TriAD-DP produced no plan")
        elapsed = time.perf_counter() - started
        return OptimizationResult(
            plan=plan,
            algorithm=self.algorithm_name,
            stats=self.stats,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    def _connected_subqueries_by_size(self) -> List[int]:
        from ..core.counting import connected_subqueries

        subqueries = [
            sq
            for sq in connected_subqueries(self.join_graph)
            if bs.popcount(sq) >= 2
        ]
        subqueries.sort(key=bs.popcount)
        return subqueries

    def _connected_pair(self, left: int, right: int) -> bool:
        """Both halves connected and sharing a join variable (no ×)."""
        if not self.join_graph.is_connected(left):
            return False
        if not self.join_graph.is_connected(right):
            return False
        return self._shared_join_variable(left, right) is not None

    def _shared_join_variable(self, left: int, right: int) -> Optional[Variable]:
        for variable in self.join_graph.join_variables:
            ntp = self.join_graph.ntp(variable)
            if ntp & left and ntp & right:
                return variable
        return None

    def _check_deadline(self) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise OptimizationTimeout(
                f"{self.algorithm_name} exceeded {self.timeout_seconds:.0f}s"
            )
