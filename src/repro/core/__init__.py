"""The paper's primary contribution: partition-aware k-ary plan enumeration."""

from .auto import AutoThresholds, AutonomousOptimizer, choose_algorithm
from .cardinality import CardinalityEstimator, PatternStatistics, StatisticsCatalog
from .char_sets import (
    CharacteristicSets,
    CharacteristicSetsEstimator,
    build_estimator as build_char_sets_estimator,
)
from .cmd import (
    brute_force_cbds,
    brute_force_cmds,
    enumerate_cbds,
    enumerate_ccmds,
    enumerate_cmds,
    enumerate_cmds_pruned,
    is_valid_cmd,
)
from .cost import CostParameters, PAPER_PARAMETERS, PlanBuilder
from .counting import (
    bell_number,
    connected_subqueries,
    count_cmds,
    measured_t,
    t_chain,
    t_cycle,
    t_star,
)
from .enumeration import (
    CartesianProductError,
    EnumerationStats,
    OptimizationResult,
    OptimizationTimeout,
    TopDownEnumerator,
)
from .enumeration import SubqueryRecord, greedy_fallback_plan
from .governance import (
    AbortCause,
    AnytimeExpiry,
    CancellationToken,
    Clock,
    Deadline,
    ManualClock,
    MonotonicClock,
    QueryAborted,
    QueryBudget,
    SteppingClock,
)
from .join_graph import JoinGraph, QueryShape
from .local_query import LocalQueryIndex
from .optimizer import (
    ALGORITHMS,
    PARALLELIZABLE_ALGORITHMS,
    make_builder,
    optimize,
    resolve_statistics,
)
from .parallel import (
    PARALLEL_STRATEGIES,
    default_jobs,
    optimize_many,
    optimize_query_parallel,
)
from .plan_cache import PlanCache, PlanCacheStats, query_signature
from .plans import (
    JoinAlgorithm,
    JoinNode,
    PlanNode,
    ScanNode,
    count_operators,
    plan_signature,
    validate_plan,
)
from .pruning import PrunedTopDownEnumerator
from .reduction import ReductionOptimizer, greedy_join_graph_reduction
from .session import OptimizeOptions, Optimizer

__all__ = [
    "JoinGraph",
    "QueryShape",
    "CardinalityEstimator",
    "StatisticsCatalog",
    "PatternStatistics",
    "CharacteristicSets",
    "CharacteristicSetsEstimator",
    "build_char_sets_estimator",
    "CostParameters",
    "PAPER_PARAMETERS",
    "PlanBuilder",
    "PlanNode",
    "ScanNode",
    "JoinNode",
    "JoinAlgorithm",
    "validate_plan",
    "plan_signature",
    "count_operators",
    "enumerate_cbds",
    "enumerate_cmds",
    "enumerate_ccmds",
    "enumerate_cmds_pruned",
    "brute_force_cbds",
    "brute_force_cmds",
    "is_valid_cmd",
    "bell_number",
    "t_chain",
    "t_cycle",
    "t_star",
    "measured_t",
    "count_cmds",
    "connected_subqueries",
    "LocalQueryIndex",
    "TopDownEnumerator",
    "PrunedTopDownEnumerator",
    "ReductionOptimizer",
    "AutonomousOptimizer",
    "AutoThresholds",
    "choose_algorithm",
    "OptimizationResult",
    "OptimizationTimeout",
    "CartesianProductError",
    "EnumerationStats",
    "greedy_join_graph_reduction",
    "optimize",
    "OptimizeOptions",
    "Optimizer",
    "optimize_many",
    "optimize_query_parallel",
    "default_jobs",
    "make_builder",
    "resolve_statistics",
    "ALGORITHMS",
    "PARALLELIZABLE_ALGORITHMS",
    "PARALLEL_STRATEGIES",
    "SubqueryRecord",
    "PlanCache",
    "PlanCacheStats",
    "query_signature",
    "AbortCause",
    "AnytimeExpiry",
    "CancellationToken",
    "Clock",
    "Deadline",
    "ManualClock",
    "MonotonicClock",
    "QueryAborted",
    "QueryBudget",
    "SteppingClock",
    "greedy_fallback_plan",
]
