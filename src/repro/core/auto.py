"""TD-Auto: the autonomous algorithm (Section IV-C, Figure 5).

TD-Auto inspects the join graph and picks the variant whose complexity
profile matches it:

* ``|V_T| / |V_J| ≥ 1`` — the join graph is acyclic or has exactly one
  cycle:

  - all join variables have low degree (``max degree < θ_d``, e.g.
    chains and cycles) → **TD-CMD** (exhaustive is cheap);
  - some variable has a high degree and the query is small
    (``|V_T| < θ_n``) → **TD-CMDP**;
  - otherwise → **HGR-TD-CMD**.

* ``|V_T| / |V_J| < 1`` — more than one cycle (dense):

  - small query (``|V_T| < λ_n``) → **TD-CMD**;
  - otherwise → **HGR-TD-CMD**.

The paper's calibrated thresholds are θ_d = 5, θ_n = 30, λ_n = 14.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..observability import runtime as obs
from .cost import PlanBuilder
from .enumeration import OptimizationResult, TopDownEnumerator
from .governance import QueryBudget
from .join_graph import JoinGraph
from .local_query import LocalQueryIndex
from .pruning import PrunedTopDownEnumerator
from .reduction import ReductionOptimizer


@dataclass(frozen=True)
class AutoThresholds:
    """The decision-tree thresholds of Figure 5."""

    degree: int = 5  # θ_d
    pattern_count: int = 30  # θ_n
    dense_pattern_count: int = 14  # λ_n


PAPER_THRESHOLDS = AutoThresholds()


def choose_algorithm(
    join_graph: JoinGraph, thresholds: AutoThresholds = PAPER_THRESHOLDS
) -> str:
    """Walk the Figure 5 decision tree; return the chosen variant name."""
    if join_graph.vt_vj_ratio() >= 1.0:
        if join_graph.max_degree() < thresholds.degree:
            return "TD-CMD"
        if join_graph.size < thresholds.pattern_count:
            return "TD-CMDP"
        return "HGR-TD-CMD"
    if join_graph.size < thresholds.dense_pattern_count:
        return "TD-CMD"
    return "HGR-TD-CMD"


class AutonomousOptimizer:
    """TD-Auto: dispatch to TD-CMD / TD-CMDP / HGR-TD-CMD per Figure 5."""

    algorithm_name = "TD-Auto"

    def __init__(
        self,
        join_graph: JoinGraph,
        builder: PlanBuilder,
        local_index: Optional[LocalQueryIndex] = None,
        timeout_seconds: Optional[float] = None,
        budget: Optional[QueryBudget] = None,
        thresholds: AutoThresholds = PAPER_THRESHOLDS,
    ) -> None:
        self.join_graph = join_graph
        self.builder = builder
        self.local_index = local_index
        self.timeout_seconds = timeout_seconds
        self.budget = budget
        self.thresholds = thresholds

    def optimize(self) -> OptimizationResult:
        """Pick a variant per Figure 5 and run it."""
        with obs.span("auto.choose") as sp:
            choice = choose_algorithm(self.join_graph, self.thresholds)
            sp.set(
                choice=choice,
                vt_vj_ratio=self.join_graph.vt_vj_ratio(),
                max_degree=self.join_graph.max_degree(),
                patterns=self.join_graph.size,
            )
        obs.count(f"optimizer.auto.{choice.lower()}")
        implementations = {
            "TD-CMD": TopDownEnumerator,
            "TD-CMDP": PrunedTopDownEnumerator,
            "HGR-TD-CMD": ReductionOptimizer,
        }
        inner = implementations[choice](
            self.join_graph,
            self.builder,
            local_index=self.local_index,
            timeout_seconds=self.timeout_seconds,
            budget=self.budget,
        )
        result = inner.optimize()
        # keep any [anytime]/[anytime-greedy] suffix the inner variant
        # attached, so degraded plans stay recognizable through TD-Auto
        suffix = result.algorithm[len(inner.algorithm_name):]
        return OptimizationResult(
            plan=result.plan,
            algorithm=f"{self.algorithm_name}[{choice}]{suffix}",
            stats=result.stats,
            elapsed_seconds=result.elapsed_seconds,
        )
