"""Bitset encoding of (sub)queries.

The paper encodes every (sub)query as a bitset: bit *i* is set when
triple pattern *i* belongs to the subquery (Section III-B).  Python
integers are arbitrary-precision, so a subquery is just an ``int``; this
module collects the handful of bit tricks the optimizer needs, so the
algorithm code reads like the paper's pseudocode.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


def bit(index: int) -> int:
    """The singleton bitset {index}."""
    return 1 << index


def from_indices(indices: Iterable[int]) -> int:
    """Build a bitset from pattern indices."""
    result = 0
    for i in indices:
        result |= 1 << i
    return result


def to_indices(bits: int) -> List[int]:
    """The sorted list of set bit positions.

    Runs in O(popcount) by stripping the lowest set bit per step
    (``bits & -bits``) instead of shifting through every position up to
    the highest set bit — the enumeration algorithms call this on sparse
    bitsets constantly, so the difference is a measured hot path.
    """
    result: List[int] = []
    while bits:
        low = bits & -bits
        result.append(low.bit_length() - 1)
        bits ^= low
    return result


def iter_bits(bits: int) -> Iterator[int]:
    """Yield each set bit position, ascending, in O(popcount) steps."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def popcount(bits: int) -> int:
    """Number of set bits (|SQ|)."""
    return bits.bit_count()


def lowest_bit(bits: int) -> int:
    """The singleton bitset of the lowest set bit; 0 for the empty set."""
    return bits & -bits


def lowest_index(bits: int) -> int:
    """Index of the lowest set bit; raises on the empty set."""
    if not bits:
        raise ValueError("empty bitset has no lowest bit")
    return (bits & -bits).bit_length() - 1


def is_subset(small: int, big: int) -> bool:
    """True when every bit of *small* is set in *big* (bitset containment).

    This is the paper's ``b_MLQ & b_SQ == b_SQ`` local-query check.
    """
    return small & big == small


def full_set(size: int) -> int:
    """The bitset {0, ..., size-1}."""
    return (1 << size) - 1


def iter_subsets(bits: int) -> Iterator[int]:
    """Yield every non-empty subset of *bits* (standard submask walk)."""
    sub = bits
    while sub:
        yield sub
        sub = (sub - 1) & bits


def iter_proper_nonempty_subsets(bits: int) -> Iterator[int]:
    """Yield every subset S with 0 < S < bits."""
    for sub in iter_subsets(bits):
        if sub != bits:
            yield sub
