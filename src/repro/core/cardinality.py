"""Cardinality estimation (Appendix B of the paper, Eqs. 10–11).

Every triple pattern carries a cardinality ``|tp|`` and, per variable
``v`` it contains, the number of distinct bindings ``B(tp, v)``.  The
cardinality of a join is::

    |tp1 ⋈ tp2| = |tp1| · |tp2| / Π_{v ∈ shared} max(B(tp1, v), B(tp2, v))

and multi-pattern subqueries fold this formula over the patterns in
index order (Eq. 11), which makes the estimate a function of the
*pattern set only* — every plan for the same subquery sees the same
cardinality, as required for a well-defined dynamic program.

Statistics can come from a real dataset (exact counts, used by the
engine experiments) or from the paper's random workload generator
(cardinality ~ U[1, 1000], bindings ~ U[1, cardinality]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..rdf.dataset import Dataset
from ..rdf.terms import Variable
from ..sparql.ast import BGPQuery
from . import bitset as bs
from .join_graph import JoinGraph


@dataclass(frozen=True)
class PatternStatistics:
    """Statistics for a single triple pattern."""

    cardinality: float
    bindings: Mapping[Variable, float] = field(default_factory=dict)

    def binding_count(self, variable: Variable) -> float:
        """B(tp, v); defaults to the pattern cardinality when unknown."""
        return self.bindings.get(variable, self.cardinality)


class StatisticsCatalog:
    """Per-pattern statistics for one query, aligned by pattern index."""

    def __init__(self, query: BGPQuery, per_pattern: Sequence[PatternStatistics]) -> None:
        if len(per_pattern) != len(query):
            raise ValueError(
                f"expected {len(query)} statistics entries, got {len(per_pattern)}"
            )
        self.query = query
        self.per_pattern: List[PatternStatistics] = list(per_pattern)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, query: BGPQuery, dataset: Dataset) -> "StatisticsCatalog":
        """Exact statistics by scanning the dataset (small-data path).

        Cardinality and per-variable distinct-binding sets are collected
        in one pass over the match iterator: nothing is materialized and
        each matching triple is touched exactly once, instead of once
        per variable of the pattern.
        """
        entries = []
        for tp in query:
            slots: List[Tuple[Variable, int]] = [
                (term, position)
                for position, term in enumerate(tp.terms())
                if isinstance(term, Variable)
            ]
            values: Dict[Variable, Set[object]] = {v: set() for v, _ in slots}
            count = 0
            for t in dataset.graph.match(tp.subject, tp.predicate, tp.object):
                count += 1
                terms = t.terms()
                for variable, position in slots:
                    values[variable].add(terms[position])
            bindings: Dict[Variable, float] = {
                v: float(max(len(vals), 1)) for v, vals in values.items()
            }
            entries.append(
                PatternStatistics(
                    cardinality=float(max(count, 1)), bindings=bindings
                )
            )
        return cls(query, entries)

    @classmethod
    def from_sample(
        cls,
        query: BGPQuery,
        dataset: Dataset,
        fraction: float = 0.1,
        rng: Optional[random.Random] = None,
    ) -> "StatisticsCatalog":
        """Approximate statistics from a Bernoulli sample of the data.

        At the paper's data scales exact per-pattern counts are not
        free; sampling is the standard substitute.  Counts are scaled
        by 1/fraction; per-variable binding counts are scaled the same
        way (a simplification that is exact for uniform value
        distributions and an overestimate otherwise).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = rng if rng is not None else random.Random(0)
        from ..rdf.triples import RDFGraph

        sample = RDFGraph(t for t in dataset.graph if rng.random() < fraction)
        sampled_dataset = Dataset(sample, name=f"{dataset.name}-sample")
        exact_on_sample = cls.from_dataset(query, sampled_dataset)
        scale = 1.0 / fraction
        entries = [
            PatternStatistics(
                cardinality=max(stats.cardinality * scale, 1.0),
                bindings={
                    v: max(b * scale, 1.0) for v, b in stats.bindings.items()
                },
            )
            for stats in exact_on_sample.per_pattern
        ]
        return cls(query, entries)

    @classmethod
    def from_random(
        cls,
        query: BGPQuery,
        rng: Optional[random.Random] = None,
        max_cardinality: int = 1000,
    ) -> "StatisticsCatalog":
        """The paper's random statistics: |tp| ~ U[1, max], B ~ U[1, |tp|]."""
        rng = rng if rng is not None else random.Random(0)
        entries = []
        for tp in query:
            cardinality = rng.randint(1, max_cardinality)
            # sorted draw order: frozenset iteration depends on the
            # per-process hash seed, and seeded statistics must be
            # reproducible across processes (pool workers, CLI runs)
            bindings = {
                variable: float(rng.randint(1, cardinality))
                for variable in sorted(tp.variables(), key=lambda v: v.name)
            }
            entries.append(
                PatternStatistics(cardinality=float(cardinality), bindings=bindings)
            )
        return cls(query, entries)

    @classmethod
    def uniform(cls, query: BGPQuery, cardinality: float = 100.0) -> "StatisticsCatalog":
        """Identical statistics for every pattern (useful in tests)."""
        entries = [
            PatternStatistics(
                cardinality=cardinality,
                bindings={
                    v: cardinality
                    for v in sorted(tp.variables(), key=lambda v: v.name)
                },
            )
            for tp in query
        ]
        return cls(query, entries)

    def __getitem__(self, index: int) -> PatternStatistics:
        return self.per_pattern[index]


class CardinalityEstimator:
    """Memoized subquery-cardinality estimator over a join graph.

    ``cardinality(bits)`` and ``bindings(bits, v)`` are pure functions of
    the bitset, so results are cached; the top-down optimizer touches
    each connected subquery many times.
    """

    def __init__(self, join_graph: JoinGraph, catalog: StatisticsCatalog) -> None:
        if catalog.query is not join_graph.query:
            # allow equal-but-distinct query objects as long as shapes align
            if len(catalog.query) != join_graph.size:
                raise ValueError("statistics catalog does not match the join graph")
        self.join_graph = join_graph
        self.catalog = catalog
        self._cache: Dict[int, tuple[float, Dict[Variable, float]]] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def cardinality(self, bits: int) -> float:
        """Estimated result cardinality of the subquery (Eq. 11)."""
        return self._fold(bits)[0]

    def bindings(self, bits: int, variable: Variable) -> float:
        """Estimated distinct bindings of *variable* in the subquery."""
        card, bindings = self._fold(bits)
        return min(bindings.get(variable, card), card)

    def pattern_cardinality(self, index: int) -> float:
        """|tp_index|: the base cardinality of one pattern."""
        return self.catalog[index].cardinality

    # ------------------------------------------------------------------
    # the Eq. 11 fold
    # ------------------------------------------------------------------
    def _fold(self, bits: int) -> tuple[float, Dict[Variable, float]]:
        """Fold Eq. 11 incrementally, extending the largest cached prefix.

        The fold runs in ascending pattern-index order, so the value for
        a subquery is the value for its largest index-order prefix
        extended by one pattern.  Instead of re-folding every pattern on
        each cache miss, highest bits are peeled off until a cached
        prefix (or a single pattern) is found, and only the missing
        suffix is folded — every intermediate prefix is cached along the
        way.  The arithmetic sequence is identical to a full re-fold, so
        estimates are bit-for-bit unchanged.
        """
        if not bits:
            raise ValueError("cannot estimate the empty subquery")
        pending: List[int] = []
        rest = bits
        base: Optional[tuple[float, Dict[Variable, float]]] = None
        while rest:
            cached = self._cache.get(rest)
            if cached is not None:
                base = cached
                break
            high = rest.bit_length() - 1
            pending.append(high)
            rest &= ~(1 << high)
        if base is None:
            # nothing cached: seed the fold with the lowest-index pattern
            first_index = pending.pop()
            first = self.catalog[first_index]
            card = first.cardinality
            first_vars = sorted(
                self.join_graph.patterns[first_index].variables(),
                key=lambda v: v.name,
            )
            bindings: Dict[Variable, float] = {
                v: first.binding_count(v) for v in first_vars
            }
            rest = 1 << first_index
            self._cache[rest] = (card, bindings)
        else:
            card, bindings = base
        for index in reversed(pending):
            stats = self.catalog[index]
            pattern = self.join_graph.patterns[index]
            bindings = dict(bindings)  # cached prefixes stay immutable
            # sorted so the float product is bit-identical across
            # processes (frozenset order follows the per-process hash seed)
            shared = sorted(
                (v for v in pattern.variables() if v in bindings),
                key=lambda v: v.name,
            )
            denominator = 1.0
            for v in shared:
                denominator *= max(bindings[v], stats.binding_count(v))
            card = card * stats.cardinality / denominator
            card = max(card, 1.0)
            for v in sorted(pattern.variables(), key=lambda v: v.name):
                b = stats.binding_count(v)
                bindings[v] = min(bindings.get(v, b), b)
            rest |= 1 << index
            self._cache[rest] = (card, bindings)
        return self._cache[bits]
