"""Cardinality estimation (Appendix B of the paper, Eqs. 10–11).

Every triple pattern carries a cardinality ``|tp|`` and, per variable
``v`` it contains, the number of distinct bindings ``B(tp, v)``.  The
cardinality of a join is::

    |tp1 ⋈ tp2| = |tp1| · |tp2| / Π_{v ∈ shared} max(B(tp1, v), B(tp2, v))

and multi-pattern subqueries fold this formula over the patterns in
index order (Eq. 11), which makes the estimate a function of the
*pattern set only* — every plan for the same subquery sees the same
cardinality, as required for a well-defined dynamic program.

Statistics can come from a real dataset (exact counts, used by the
engine experiments) or from the paper's random workload generator
(cardinality ~ U[1, 1000], bindings ~ U[1, cardinality]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..rdf.dataset import Dataset
from ..rdf.terms import Variable
from ..sparql.ast import BGPQuery
from . import bitset as bs
from .join_graph import JoinGraph


@dataclass(frozen=True)
class PatternStatistics:
    """Statistics for a single triple pattern."""

    cardinality: float
    bindings: Mapping[Variable, float] = field(default_factory=dict)

    def binding_count(self, variable: Variable) -> float:
        """B(tp, v); defaults to the pattern cardinality when unknown."""
        return self.bindings.get(variable, self.cardinality)


class StatisticsCatalog:
    """Per-pattern statistics for one query, aligned by pattern index."""

    def __init__(self, query: BGPQuery, per_pattern: Sequence[PatternStatistics]) -> None:
        if len(per_pattern) != len(query):
            raise ValueError(
                f"expected {len(query)} statistics entries, got {len(per_pattern)}"
            )
        self.query = query
        self.per_pattern: List[PatternStatistics] = list(per_pattern)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, query: BGPQuery, dataset: Dataset) -> "StatisticsCatalog":
        """Exact statistics by scanning the dataset (small-data path)."""
        entries = []
        for tp in query:
            matches = list(
                dataset.graph.match(tp.subject, tp.predicate, tp.object)
            )
            bindings: Dict[Variable, float] = {}
            for variable in tp.variables():
                values = set()
                for t in matches:
                    if tp.subject == variable:
                        values.add(t.subject)
                    if tp.predicate == variable:
                        values.add(t.predicate)
                    if tp.object == variable:
                        values.add(t.object)
                bindings[variable] = float(max(len(values), 1))
            entries.append(
                PatternStatistics(
                    cardinality=float(max(len(matches), 1)), bindings=bindings
                )
            )
        return cls(query, entries)

    @classmethod
    def from_sample(
        cls,
        query: BGPQuery,
        dataset: Dataset,
        fraction: float = 0.1,
        rng: Optional[random.Random] = None,
    ) -> "StatisticsCatalog":
        """Approximate statistics from a Bernoulli sample of the data.

        At the paper's data scales exact per-pattern counts are not
        free; sampling is the standard substitute.  Counts are scaled
        by 1/fraction; per-variable binding counts are scaled the same
        way (a simplification that is exact for uniform value
        distributions and an overestimate otherwise).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = rng if rng is not None else random.Random(0)
        from ..rdf.triples import RDFGraph

        sample = RDFGraph(t for t in dataset.graph if rng.random() < fraction)
        sampled_dataset = Dataset(sample, name=f"{dataset.name}-sample")
        exact_on_sample = cls.from_dataset(query, sampled_dataset)
        scale = 1.0 / fraction
        entries = [
            PatternStatistics(
                cardinality=max(stats.cardinality * scale, 1.0),
                bindings={
                    v: max(b * scale, 1.0) for v, b in stats.bindings.items()
                },
            )
            for stats in exact_on_sample.per_pattern
        ]
        return cls(query, entries)

    @classmethod
    def from_random(
        cls,
        query: BGPQuery,
        rng: Optional[random.Random] = None,
        max_cardinality: int = 1000,
    ) -> "StatisticsCatalog":
        """The paper's random statistics: |tp| ~ U[1, max], B ~ U[1, |tp|]."""
        rng = rng if rng is not None else random.Random(0)
        entries = []
        for tp in query:
            cardinality = rng.randint(1, max_cardinality)
            bindings = {
                variable: float(rng.randint(1, cardinality))
                for variable in tp.variables()
            }
            entries.append(
                PatternStatistics(cardinality=float(cardinality), bindings=bindings)
            )
        return cls(query, entries)

    @classmethod
    def uniform(cls, query: BGPQuery, cardinality: float = 100.0) -> "StatisticsCatalog":
        """Identical statistics for every pattern (useful in tests)."""
        entries = [
            PatternStatistics(
                cardinality=cardinality,
                bindings={v: cardinality for v in tp.variables()},
            )
            for tp in query
        ]
        return cls(query, entries)

    def __getitem__(self, index: int) -> PatternStatistics:
        return self.per_pattern[index]


class CardinalityEstimator:
    """Memoized subquery-cardinality estimator over a join graph.

    ``cardinality(bits)`` and ``bindings(bits, v)`` are pure functions of
    the bitset, so results are cached; the top-down optimizer touches
    each connected subquery many times.
    """

    def __init__(self, join_graph: JoinGraph, catalog: StatisticsCatalog) -> None:
        if catalog.query is not join_graph.query:
            # allow equal-but-distinct query objects as long as shapes align
            if len(catalog.query) != join_graph.size:
                raise ValueError("statistics catalog does not match the join graph")
        self.join_graph = join_graph
        self.catalog = catalog
        self._cache: Dict[int, tuple[float, Dict[Variable, float]]] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def cardinality(self, bits: int) -> float:
        """Estimated result cardinality of the subquery (Eq. 11)."""
        return self._fold(bits)[0]

    def bindings(self, bits: int, variable: Variable) -> float:
        """Estimated distinct bindings of *variable* in the subquery."""
        card, bindings = self._fold(bits)
        return min(bindings.get(variable, card), card)

    def pattern_cardinality(self, index: int) -> float:
        """|tp_index|: the base cardinality of one pattern."""
        return self.catalog[index].cardinality

    # ------------------------------------------------------------------
    # the Eq. 11 fold
    # ------------------------------------------------------------------
    def _fold(self, bits: int) -> tuple[float, Dict[Variable, float]]:
        cached = self._cache.get(bits)
        if cached is not None:
            return cached
        indices = bs.to_indices(bits)
        if not indices:
            raise ValueError("cannot estimate the empty subquery")
        first = self.catalog[indices[0]]
        card = first.cardinality
        bindings: Dict[Variable, float] = {
            v: first.binding_count(v)
            for v in self.join_graph.patterns[indices[0]].variables()
        }
        for index in indices[1:]:
            stats = self.catalog[index]
            pattern = self.join_graph.patterns[index]
            shared = [v for v in pattern.variables() if v in bindings]
            denominator = 1.0
            for v in shared:
                denominator *= max(bindings[v], stats.binding_count(v))
            card = card * stats.cardinality / denominator
            card = max(card, 1.0)
            for v in pattern.variables():
                b = stats.binding_count(v)
                bindings[v] = min(bindings.get(v, b), b)
        result = (card, bindings)
        self._cache[bits] = result
        return result
