"""Characteristic-sets cardinality estimation (Neumann & Moerkotte).

Section II-E of the paper: "since our algorithm is loosely coupled with
the cost model [...], a better cost model can certainly be used to
improve our optimization results."  This module demonstrates exactly
that with the classic RDF technique: *characteristic sets* group
subjects by the exact set of predicates they emit, which makes
subject-star estimates (the dominant SPARQL shape) nearly exact instead
of independence-based.

:class:`CharacteristicSets` summarizes a dataset once;
:meth:`build_catalog` then produces a drop-in
:class:`~repro.core.cardinality.StatisticsCatalog` whose *pattern*
statistics are unchanged but which is paired, via
:class:`CharacteristicSetsEstimator`, with a subquery estimator that
answers subject-star subqueries from the characteristic sets and
delegates everything else to the default Eq. 10/11 fold.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..rdf.dataset import Dataset
from ..rdf.terms import Term, Variable
from ..sparql.ast import BGPQuery
from . import bitset as bs
from .cardinality import CardinalityEstimator, StatisticsCatalog
from .join_graph import JoinGraph


@dataclass(frozen=True)
class CharacteristicSet:
    """One subject class: its predicate set and occurrence statistics."""

    predicates: FrozenSet[Term]
    #: number of distinct subjects with exactly this predicate set
    subjects: int
    #: per-predicate total triple counts over those subjects
    predicate_counts: Dict[Term, int]


class CharacteristicSets:
    """The characteristic-sets summary of a dataset."""

    def __init__(self, dataset: Dataset) -> None:
        per_subject: Dict[Term, Set[Term]] = defaultdict(set)
        triple_counts: Dict[Tuple[Term, Term], int] = Counter()
        for t in dataset.graph:
            per_subject[t.subject].add(t.predicate)
            triple_counts[(t.subject, t.predicate)] += 1
        grouped: Dict[FrozenSet[Term], List[Term]] = defaultdict(list)
        for subject, predicates in per_subject.items():
            grouped[frozenset(predicates)].append(subject)
        self.sets: List[CharacteristicSet] = []
        for predicates, subjects in grouped.items():
            counts: Dict[Term, int] = Counter()
            for subject in subjects:
                for predicate in sorted(predicates, key=str):
                    counts[predicate] += triple_counts[(subject, predicate)]
            self.sets.append(
                CharacteristicSet(
                    predicates=predicates,
                    subjects=len(subjects),
                    predicate_counts=dict(counts),
                )
            )

    def __len__(self) -> int:
        return len(self.sets)

    def estimate_star(self, predicates: FrozenSet[Term]) -> float:
        """Estimated results of a subject-star over *predicates*.

        Sum over characteristic sets that contain all the predicates:
        subjects × Π (avg. triples per subject per predicate) — exact
        when each star predicate occurs once per subject, the standard
        characteristic-sets estimate otherwise.
        """
        total = 0.0
        for cs in self.sets:
            if not predicates <= cs.predicates:
                continue
            contribution = float(cs.subjects)
            # sorted: the float product must be bit-identical across
            # processes (frozenset order follows the hash seed)
            for predicate in sorted(predicates, key=str):
                contribution *= cs.predicate_counts[predicate] / cs.subjects
            total += contribution
        return total

    def distinct_star_subjects(self, predicates: FrozenSet[Term]) -> float:
        """Distinct subjects matching a subject-star over *predicates*."""
        return float(
            sum(cs.subjects for cs in self.sets if predicates <= cs.predicates)
        )


class CharacteristicSetsEstimator(CardinalityEstimator):
    """Eq. 10/11 estimator with characteristic-set answers for stars.

    A subquery is a *subject-star* when all its patterns share the same
    variable subject and have concrete predicates; those estimates come
    from the summary, everything else falls through to the default
    fold.  Because star estimates replace the most error-prone part of
    the independence assumption, q-errors on star-heavy queries drop —
    see ``tests/test_char_sets.py``.
    """

    def __init__(
        self,
        join_graph: JoinGraph,
        catalog: StatisticsCatalog,
        summary: CharacteristicSets,
    ) -> None:
        super().__init__(join_graph, catalog)
        self.summary = summary
        self._star_cache: Dict[int, Optional[float]] = {}

    def cardinality(self, bits: int) -> float:
        star = self._star_estimate(bits)
        if star is not None:
            return max(star, 1.0)
        return super().cardinality(bits)

    def _star_estimate(self, bits: int) -> Optional[float]:
        cached = self._star_cache.get(bits, False)
        if cached is not False:
            return cached
        estimate = self._compute_star_estimate(bits)
        self._star_cache[bits] = estimate
        return estimate

    def _compute_star_estimate(self, bits: int) -> Optional[float]:
        if bs.popcount(bits) < 2:
            return None
        subject: Optional[Variable] = None
        predicates: Set[Term] = set()
        for index in bs.iter_bits(bits):
            pattern = self.join_graph.patterns[index]
            if not isinstance(pattern.subject, Variable):
                return None
            if isinstance(pattern.predicate, Variable):
                return None
            if isinstance(pattern.object, Variable) and pattern.object == pattern.subject:
                return None
            if subject is None:
                subject = pattern.subject
            elif pattern.subject != subject:
                return None
            if not isinstance(pattern.object, Variable):
                # constant objects add selectivity the summary cannot
                # see; stay with the default estimator
                return None
            predicates.add(pattern.predicate)
        if subject is None or len(predicates) != bs.popcount(bits):
            return None  # repeated predicates: not a plain star
        return self.summary.estimate_star(frozenset(predicates))


def build_estimator(
    query: BGPQuery, dataset: Dataset
) -> CharacteristicSetsEstimator:
    """Convenience: summary + exact pattern statistics + estimator."""
    join_graph = JoinGraph(query)
    catalog = StatisticsCatalog.from_dataset(query, dataset)
    summary = CharacteristicSets(dataset)
    return CharacteristicSetsEstimator(join_graph, catalog, summary)
