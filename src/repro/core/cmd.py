"""Connected binary- and multi-division enumeration (Algorithms 2 and 3).

A *connected multi-division* (cmd) of a connected query Q on join
variable v_j is a partition (SQ_1, ..., SQ_k) of Q's triple patterns
such that every SQ_i is connected and contains at least one pattern in
Ntp(v_j) (Definition 3).  Each cmd is one candidate k-way join.

The enumeration strategy follows the paper:

* :func:`enumerate_cbds` (Algorithm 2) grows one side of a *binary*
  division incrementally.  After removing v_j the join graph falls into
  connected components; an *indivisible* component (a single pattern
  adjacent to v_j) must move as a whole (Lemma 1), while a *divisible*
  component may be split, dragging along any fragments that would lose
  their connection to v_j (Lemma 2).  The two lemmas collapse into one
  rule: extending with pattern ``tp`` also absorbs every fragment of
  ``component \\ (SQ ∪ {tp})`` that contains no pattern of Ntp(v_j).
* :func:`enumerate_cmds` (Algorithm 3) peels cbd sides off recursively,
  keeping them on a stack; every stack state is one cmd.

Both are generators (the paper's ``Emit`` is ``yield``), so callers can
stop early and nothing is materialized.  Every cmd is produced exactly
once: within one v_j the peeled part always contains the lowest-index
pattern of the remaining Ntp(v_j), which makes the part order canonical.

:func:`brute_force_cbds` / :func:`brute_force_cmds` implement the
definitions directly (exponentially); the test suite cross-validates
the efficient enumerators against them on random join graphs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..rdf.terms import Variable
from . import bitset as bs
from .join_graph import JoinGraph

#: A connected multi-division: the parts (bitsets) and the join variable.
CMD = Tuple[Tuple[int, ...], Variable]


# ----------------------------------------------------------------------
# Algorithm 2: connected binary-division enumeration
# ----------------------------------------------------------------------
def enumerate_cbds(
    join_graph: JoinGraph,
    bits: int,
    variable: Variable,
    single_anchor: bool = False,
) -> Iterator[Tuple[int, int]]:
    """Yield every connected binary-division of *bits* on *variable*.

    Pairs ``(sq1, sq2)`` are yielded with ``sq1`` containing the anchor
    (the lowest-index pattern of ``Ntp(v_j) ∩ bits``), so each unordered
    division appears exactly once.

    With ``single_anchor=True`` only divisions whose ``sq1`` contains
    *exactly one* pattern of Ntp(v_j) are produced (the building block
    of ccmd enumeration for TD-CMDP, Section IV-A): the growth never
    adds a second v_j-adjacent pattern, so the restriction prunes the
    recursion instead of filtering its output.
    """
    ntp = join_graph.ntp(variable) & bits
    if bs.popcount(ntp) < 2:
        return
    components = join_graph.connected_components(bits, exclude=variable)
    component_of: Dict[int, int] = {}
    for component in components:  # lint: disable=LINT014 bounded by bitset width (≤64 components × ≤64 bits), no data-sized work
        for index in bs.iter_bits(component):
            component_of[index] = component
    anchor = bs.lowest_bit(ntp)
    blocked = (ntp & ~anchor) if single_anchor else 0
    yield from _cbd_rec(
        join_graph, bits, variable, ntp, component_of, 0, 0, anchor, blocked
    )


def _cbd_rec(
    join_graph: JoinGraph,
    bits: int,
    variable: Variable,
    ntp: int,
    component_of: Dict[int, int],
    sq: int,
    forbidden: int,
    anchor: int,
    blocked: int,
) -> Iterator[Tuple[int, int]]:
    """Recursive body of Algorithm 2 (CBDRec)."""
    if sq & forbidden:
        return
    if sq == bits:
        return
    if sq:
        yield (sq, bits & ~sq)
    if sq == 0:
        candidates = anchor
    else:
        candidates = join_graph.neighbors(sq) & bits & ~forbidden & ~blocked
    for index in bs.iter_bits(candidates):
        tp_bit = bs.bit(index)
        component = component_of[index]
        extension = tp_bit | _stranded_fragments(
            join_graph, component & ~(sq | tp_bit), ntp
        )
        yield from _cbd_rec(
            join_graph,
            bits,
            variable,
            ntp,
            component_of,
            sq | extension,
            forbidden,
            anchor,
            blocked,
        )
        forbidden |= tp_bit


def _stranded_fragments(join_graph: JoinGraph, rest: int, ntp: int) -> int:
    """Fragments of *rest* with no pattern adjacent to v_j (Lemmas 1–2).

    Connectivity here includes v_j (ordinary subquery connectivity), so
    all fragments that do touch v_j merge into at most one component and
    stay behind; everything else would be stranded and must be absorbed
    into the growing side.
    """
    if not rest:
        return 0
    stranded = 0
    for fragment in join_graph.connected_components(rest):
        if fragment & ntp == 0:
            stranded |= fragment
    return stranded


# ----------------------------------------------------------------------
# Algorithm 3: connected multi-division enumeration
# ----------------------------------------------------------------------
def enumerate_cmds(
    join_graph: JoinGraph,
    bits: int,
    variables: Optional[Sequence[Variable]] = None,
) -> Iterator[CMD]:
    """Yield every connected multi-division of the subquery *bits*.

    *variables* restricts the join variables considered (defaults to all
    join variables of the query that have ≥2 adjacent patterns inside
    *bits*).
    """
    if variables is None:
        variables = join_graph.join_variables
    for variable in variables:
        if bs.popcount(join_graph.ntp(variable) & bits) < 2:
            continue
        stack: List[int] = []
        yield from _cmd_rec(join_graph, bits, variable, stack)


def _cmd_rec(
    join_graph: JoinGraph,
    remaining: int,
    variable: Variable,
    stack: List[int],
) -> Iterator[CMD]:
    """Recursive body of Algorithm 3 (CMDRec)."""
    if stack:
        yield (tuple(stack) + (remaining,), variable)
    if bs.popcount(join_graph.ntp(variable) & remaining) == 1:
        return
    for part, rest in enumerate_cbds(join_graph, remaining, variable):
        stack.append(part)
        yield from _cmd_rec(join_graph, rest, variable, stack)
        stack.pop()


# ----------------------------------------------------------------------
# ccmd enumeration (TD-CMDP, Rule 1)
# ----------------------------------------------------------------------
def enumerate_ccmds(
    join_graph: JoinGraph,
    bits: int,
    variables: Optional[Sequence[Variable]] = None,
    minimum_arity: int = 3,
) -> Iterator[CMD]:
    """Yield connected *complete*-multi-divisions with arity ≥ *minimum_arity*.

    A ccmd is a cmd in which every part contains exactly one pattern of
    Ntp(v_j) (Section IV-A); its arity therefore equals the degree of
    v_j inside *bits*.
    """
    if variables is None:
        variables = join_graph.join_variables
    for variable in variables:
        ntp = join_graph.ntp(variable) & bits
        degree = bs.popcount(ntp)
        if degree < 2 or degree < minimum_arity:
            continue
        stack: List[int] = []
        yield from _ccmd_rec(join_graph, bits, variable, ntp, stack, minimum_arity)


def _ccmd_rec(
    join_graph: JoinGraph,
    remaining: int,
    variable: Variable,
    ntp: int,
    stack: List[int],
    minimum_arity: int,
) -> Iterator[CMD]:
    remaining_degree = bs.popcount(ntp & remaining)
    if remaining_degree == 1:
        if len(stack) + 1 >= minimum_arity:
            yield (tuple(stack) + (remaining,), variable)
        return
    for part, rest in enumerate_cbds(
        join_graph, remaining, variable, single_anchor=True
    ):
        stack.append(part)
        yield from _ccmd_rec(join_graph, rest, variable, ntp, stack, minimum_arity)
        stack.pop()


def enumerate_cmds_pruned(
    join_graph: JoinGraph,
    bits: int,
    variables: Optional[Sequence[Variable]] = None,
) -> Iterator[CMD]:
    """The TD-CMDP division space: all cbds plus ccmds of arity > 2.

    This is the paper's ``ConnMultiDivisionPruning`` (Rule 1 applied to
    the enumeration; Rules 2–3 are applied by the optimizer itself).
    """
    if variables is None:
        variables = join_graph.join_variables
    for variable in variables:
        if bs.popcount(join_graph.ntp(variable) & bits) < 2:
            continue
        for part, rest in enumerate_cbds(join_graph, bits, variable):
            yield ((part, rest), variable)
    yield from enumerate_ccmds(join_graph, bits, variables, minimum_arity=3)


# ----------------------------------------------------------------------
# brute-force references (for validation)
# ----------------------------------------------------------------------
def is_valid_cmd(
    join_graph: JoinGraph, bits: int, parts: Sequence[int], variable: Variable
) -> bool:
    """Check Definition 3 directly."""
    ntp = join_graph.ntp(variable)
    union = 0
    for part in parts:
        if part == 0 or union & part:
            return False
        union |= part
        if part & ntp == 0:
            return False
        if not join_graph.is_connected(part):
            return False
    return union == bits


def brute_force_cbds(
    join_graph: JoinGraph, bits: int, variable: Variable
) -> List[Tuple[int, int]]:
    """All cbds by trying every subset (exponential; tests only).

    Normalized so the side containing the lowest Ntp(v_j) pattern comes
    first, matching :func:`enumerate_cbds` output order conventions.
    """
    ntp = join_graph.ntp(variable) & bits
    if bs.popcount(ntp) < 2:
        return []
    anchor = bs.lowest_bit(ntp)
    results: List[Tuple[int, int]] = []
    for subset in bs.iter_proper_nonempty_subsets(bits):
        if not subset & anchor:
            continue
        complement = bits & ~subset
        if is_valid_cmd(join_graph, bits, (subset, complement), variable):
            results.append((subset, complement))
    return results


def brute_force_cmds(join_graph: JoinGraph, bits: int) -> List[CMD]:
    """All cmds by enumerating set partitions (exponential; tests only)."""
    indices = bs.to_indices(bits)
    results: List[CMD] = []
    for partition in _set_partitions(indices):
        if len(partition) < 2:
            continue
        parts = tuple(sorted(bs.from_indices(block) for block in partition))
        for variable in join_graph.join_variables:
            if is_valid_cmd(join_graph, bits, parts, variable):
                results.append((parts, variable))
    return results


def _set_partitions(items: List[int]) -> Iterator[List[List[int]]]:
    """All set partitions of *items* (standard recursive construction)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        for i, block in enumerate(partition):
            yield partition[:i] + [[first] + block] + partition[i + 1 :]
        yield [[first]] + partition


def canonical_cmd(cmd: CMD) -> Tuple[Tuple[int, ...], Variable]:
    """Sort the parts so cmds can be compared as sets."""
    parts, variable = cmd
    return (tuple(sorted(parts)), variable)
