"""The cost model of Section II-E (Tables I and II).

The cost of a k-way join operator is::

    C(op) = C_io + C_trans + C_join

with, per Table I (|SQ_i| input cardinalities, n cluster size):

==============  ==============  ====================================  =================
operator        C_io            C_trans                               C_join
==============  ==============  ====================================  =================
local           α·Σ|SQ_i|       0                                     γ_L·|⋈ SQ_i|
broadcast       α·Σ|SQ_i|       β_B·(Σ|SQ_i| − max|SQ_i|)·n           γ_B·|⋈ SQ_i|
repartition     α·Σ|SQ_i|       β_R·Σ|SQ_i|                           γ_R·|⋈ SQ_i|
==============  ==============  ====================================  =================

and the cost of a plan (Eq. 3) is the cost of the most expensive child
(children run concurrently) plus the operator cost.

:class:`PlanBuilder` is the single place plans are constructed: it
computes cardinality via the estimator and attaches costs, so every
optimizer (ours and the baselines) prices plans identically — exactly
the experimental setup of Section V-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..rdf.terms import Variable
from . import bitset as bs
from .cardinality import CardinalityEstimator
from .join_graph import JoinGraph
from .plans import JoinAlgorithm, JoinNode, PlanNode, ScanNode


@dataclass(frozen=True)
class CostParameters:
    """Normalization factors (Table II) and the cluster size ``n``.

    The default values are the paper's calibrated constants: α = 0.02,
    β_B = 0.05, β_R = 0.1, γ_L = 0.004, γ_B = 0.008, γ_R = 0.005, and a
    10-node cluster.
    """

    alpha: float = 0.02
    beta_broadcast: float = 0.05
    beta_repartition: float = 0.1
    gamma_local: float = 0.004
    gamma_broadcast: float = 0.008
    gamma_repartition: float = 0.005
    cluster_size: int = 10

    def io_cost(self, input_cardinalities: Sequence[float]) -> float:
        """C_io = α · Σ|SQ_i| (identical for all operators)."""
        return self.alpha * sum(input_cardinalities)

    def transfer_cost(
        self, algorithm: JoinAlgorithm, input_cardinalities: Sequence[float]
    ) -> float:
        """C_trans per Table I (zero for local joins)."""
        total = sum(input_cardinalities)
        if algorithm is JoinAlgorithm.LOCAL:
            return 0.0
        if algorithm is JoinAlgorithm.BROADCAST:
            return (
                self.beta_broadcast
                * (total - max(input_cardinalities))
                * self.cluster_size
            )
        return self.beta_repartition * total

    def join_cost(self, algorithm: JoinAlgorithm, output_cardinality: float) -> float:
        """C_join = γ_op · |⋈ SQ_i|."""
        gamma = {
            JoinAlgorithm.LOCAL: self.gamma_local,
            JoinAlgorithm.BROADCAST: self.gamma_broadcast,
            JoinAlgorithm.REPARTITION: self.gamma_repartition,
        }[algorithm]
        return gamma * output_cardinality

    def operator_cost(
        self,
        algorithm: JoinAlgorithm,
        input_cardinalities: Sequence[float],
        output_cardinality: float,
    ) -> float:
        """C(op) = C_io + C_trans + C_join (Eq. 4 / Table I)."""
        return (
            self.io_cost(input_cardinalities)
            + self.transfer_cost(algorithm, input_cardinalities)
            + self.join_cost(algorithm, output_cardinality)
        )


#: the paper's calibrated parameters (Table II)
PAPER_PARAMETERS = CostParameters()


class PlanBuilder:
    """Constructs cost-annotated plan nodes for one query.

    All optimizers share one builder per (query, statistics, parameters)
    triple so their plans are directly cost-comparable.
    """

    def __init__(
        self,
        join_graph: JoinGraph,
        estimator: CardinalityEstimator,
        parameters: CostParameters = PAPER_PARAMETERS,
    ) -> None:
        self.join_graph = join_graph
        self.estimator = estimator
        self.parameters = parameters

    # ------------------------------------------------------------------
    # node constructors
    # ------------------------------------------------------------------
    def scan(self, pattern_index: int) -> ScanNode:
        """A leaf scan of one triple pattern (cost 0; operators charge I/O)."""
        return ScanNode(
            bits=bs.bit(pattern_index),
            cardinality=self.estimator.pattern_cardinality(pattern_index),
            cost=0.0,
            pattern_index=pattern_index,
            pattern=self.join_graph.patterns[pattern_index],
        )

    def join(
        self,
        algorithm: JoinAlgorithm,
        children: Sequence[PlanNode],
        join_variable: Optional[Variable] = None,
    ) -> JoinNode:
        """A k-way join of already-built child plans (Eq. 3 cost)."""
        if len(children) < 2:
            raise ValueError("a join needs at least two inputs")
        bits = 0
        for child in children:
            if bits & child.bits:
                raise ValueError("join inputs overlap")
            bits |= child.bits
        inputs = [child.cardinality for child in children]
        output = self.estimator.cardinality(bits)
        op_cost = self.parameters.operator_cost(algorithm, inputs, output)
        total = max(child.cost for child in children) + op_cost
        return JoinNode(
            bits=bits,
            cardinality=output,
            cost=total,
            algorithm=algorithm,
            join_variable=join_variable,
            children=tuple(children),
            operator_cost=op_cost,
        )

    def local_join_plan(self, bits: int) -> PlanNode:
        """The flat local plan: one k-way local join of all scans.

        For a single-pattern subquery this is just the scan.
        """
        indices = bs.to_indices(bits)
        if len(indices) == 1:
            return self.scan(indices[0])
        scans = [self.scan(i) for i in indices]
        shared = self.join_graph.join_variables_in(bits)
        variable = shared[0] if shared else None
        return self.join(JoinAlgorithm.LOCAL, scans, join_variable=variable)

