"""Search-space counting: T(Q), Bell numbers, and the closed forms.

Section III-D defines ``T(Q) = Σ |D_cmd(SQ_i)|`` over all connected
subqueries SQ_i of Q, and derives closed forms:

* chain queries (Eq. 8):  T = (n³ − n) / 6
* cycle queries (Eq. 9):  T = (n³ − n²) / 2
* star queries  (Eq. 7):  T = Σ_{k=2..n} (B_k − 1) · C(n, k)

These formulas double as an independent correctness oracle for the cmd
enumerator: ``measured_t`` counts cmds by running Algorithm 3 on every
connected subquery and must reproduce the closed forms exactly.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb
from typing import Iterator

from . import bitset as bs
from .cmd import enumerate_cmds
from .join_graph import JoinGraph


@lru_cache(maxsize=None)
def bell_number(k: int) -> int:
    """The k-th Bell number (number of set partitions of a k-set)."""
    if k < 0:
        raise ValueError("Bell numbers are defined for k >= 0")
    if k == 0:
        return 1
    # Bell triangle
    row = [1]
    for _ in range(k - 1):
        next_row = [row[-1]]
        for value in row:
            next_row.append(next_row[-1] + value)
        row = next_row
    return row[-1]


def t_chain(n: int) -> int:
    """Closed form for chain queries (Eq. 8)."""
    return (n**3 - n) // 6


def t_cycle(n: int) -> int:
    """Closed form for cycle queries (Eq. 9)."""
    return (n**3 - n**2) // 2


def t_star(n: int) -> int:
    """Closed form for star queries (Eq. 7)."""
    return sum((bell_number(k) - 1) * comb(n, k) for k in range(2, n + 1))


def connected_subqueries(join_graph: JoinGraph, bits: int = -1) -> Iterator[int]:
    """Yield every connected subquery bitset (size ≥ 1) exactly once.

    Standard duplicate-free connected-subgraph enumeration: subsets are
    grown only with indices greater than their seed, each seed owning
    the subsets whose minimum index it is.
    """
    if bits == -1:
        bits = join_graph.full
    for seed in bs.iter_bits(bits):
        forbidden = bs.full_set(seed + 1)  # seed and everything below it
        seed_bit = bs.bit(seed)
        yield seed_bit
        yield from _grow(join_graph, bits, seed_bit, forbidden)


def _grow(
    join_graph: JoinGraph, bits: int, subgraph: int, forbidden: int
) -> Iterator[int]:
    candidates = join_graph.neighbors(subgraph) & bits & ~forbidden
    blocked = forbidden | candidates
    remaining = candidates
    for sub in _nonempty_subsets(remaining):
        grown = subgraph | sub
        yield grown
        yield from _grow(join_graph, bits, grown, blocked)


def _nonempty_subsets(bits: int) -> Iterator[int]:
    sub = bits
    while sub:
        yield sub
        sub = (sub - 1) & bits


def count_cmds(join_graph: JoinGraph, bits: int) -> int:
    """|D_cmd(SQ)|: the number of cmds of one subquery."""
    return sum(1 for _ in enumerate_cmds(join_graph, bits))


def measured_t(join_graph: JoinGraph) -> int:
    """T(Q) measured by enumerating cmds on every connected subquery.

    Exponential in the number of connected subqueries; intended for
    validation on small/medium queries, not for optimization.
    """
    return sum(
        count_cmds(join_graph, sq)
        for sq in connected_subqueries(join_graph)
        if bs.popcount(sq) >= 2
    )


def count_connected_subqueries(join_graph: JoinGraph) -> int:
    """Number of connected subqueries of any size ≥ 1."""
    return sum(1 for _ in connected_subqueries(join_graph))
