"""Top-down join enumeration with memoization (Algorithm 1, "TD-CMD").

``GetBestPlan`` recursively finds the cheapest k-ary bushy plan for
every connected subquery, memoizing results per subquery bitset.  For
each subquery it

1. short-cuts single patterns to scans,
2. seeds the best plan with the flat *local join* plan when the
   subquery is a local query for the configured partitioning,
3. tries every connected multi-division (Algorithm 3) with every
   feasible distributed join algorithm (broadcast, repartition),
   recursing into the parts.

The class is written so the TD-CMDP variant (:mod:`.pruning`) only has
to override :meth:`divisions` and the local-query short-circuit flag.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..observability import runtime as obs
from ..rdf.terms import Variable
from . import bitset as bs
from .cmd import enumerate_cmds
from .cost import PlanBuilder
from .governance import AnytimeExpiry, Deadline, QueryBudget
from .join_graph import JoinGraph
from .local_query import LocalQueryIndex
from .plans import JoinAlgorithm, PlanNode


class OptimizationTimeout(Exception):
    """Raised when the optimizer exceeds its deadline (paper: 600 s)."""


class CartesianProductError(ValueError):
    """Raised for disconnected queries: no Cartesian-product-free plan."""


@dataclass(frozen=True)
class InvariantProfile:
    """Which *optional* plan invariants an algorithm's plans satisfy.

    The structural invariants of Section II-D (connectivity, disjoint
    exact cover, cost-model agreement) hold for every algorithm; this
    profile records the pruning-rule guarantees that depend on the
    variant, so the plan verifier knows what it may assert.
    """

    #: Rule 2 (Section IV-A): broadcast joins are binary-only.
    broadcast_binary_only: bool = False
    #: Rule 3 (Section IV-A): local subqueries are planned as the flat
    #: local join (every local join's children are scans anyway, so this
    #: is informational rather than an extra check).
    local_flat_only: bool = False


@dataclass
class SubqueryRecord:
    """Exclusive per-subquery counters from one ``BestPlanGen`` call.

    "Exclusive" means the candidates costed for this subquery only —
    recursion into child subqueries is recorded under their own bitsets.
    Because the candidate set of a subquery is a deterministic function
    of its bitset, records from different workers can be deduplicated by
    bitset to reconstruct the serial totals exactly (see
    :mod:`.parallel`).
    """

    plans_considered: int = 0
    divisions_enumerated: int = 0
    local_short_circuits: int = 0


@dataclass
class EnumerationStats:
    """Counters the experiments report.

    ``plans_considered`` is the "size of the search space" of Table VII:
    the number of candidate plans actually constructed and costed.

    The ``workers`` / ``per_worker_*`` / ``speedup`` fields are filled
    only by the parallel search drivers in :mod:`.parallel`; a serial
    run leaves them at their defaults (one worker, no breakdown).
    """

    plans_considered: int = 0
    divisions_enumerated: int = 0
    subqueries_expanded: int = 0
    memo_hits: int = 0
    local_short_circuits: int = 0
    #: number of search workers (1 = serial)
    workers: int = 1
    #: subqueries expanded by each worker (parallel search only)
    per_worker_subqueries: List[int] = field(default_factory=list)
    #: wall seconds spent inside each worker (parallel search only)
    per_worker_seconds: List[float] = field(default_factory=list)
    #: Σ worker seconds / parallel search wall seconds, with pool
    #: spin-up excluded from the denominator (parallel search only)
    speedup: float = 0.0
    #: chunks taken from a sibling's queue (memo-sharded search only)
    steals: int = 0
    #: steals performed by each worker (memo-sharded search only)
    per_worker_steals: List[int] = field(default_factory=list)
    #: min/max per-worker subquery share — 1.0 is perfectly balanced,
    #: 0.0 means at least one worker did nothing (parallel search only)
    worker_balance: float = 0.0
    #: seconds from pool spawn until the first worker was ready;
    #: excluded from the :attr:`speedup` denominator
    pool_startup_seconds: float = 0.0
    #: anytime mode returned a degraded (best-so-far / greedy) plan
    degraded: bool = False
    #: why the search degraded ("" unless :attr:`degraded`)
    degradation_reason: str = ""

    def summary(self) -> Dict[str, float]:
        """The headline counters as a flat dictionary.

        The counterpart of
        :meth:`repro.engine.metrics.ExecutionMetrics.summary`; the
        metrics-registry reconciliation test asserts these totals agree
        with the tracer-side ``optimizer.*`` counters.
        """
        data: Dict[str, float] = {
            "plans_considered": self.plans_considered,
            "divisions_enumerated": self.divisions_enumerated,
            "subqueries_expanded": self.subqueries_expanded,
            "memo_hits": self.memo_hits,
            "local_short_circuits": self.local_short_circuits,
        }
        if self.workers > 1:
            data["workers"] = self.workers
            data["speedup"] = self.speedup
            data["worker_balance"] = self.worker_balance
            data["steals"] = self.steals
        if self.degraded:
            data["degraded"] = 1.0
        return data

    def flush_to_metrics(self) -> None:
        """Mirror the counters into the active metrics registry.

        Called once per enumeration (never per candidate), so tracing
        keeps its zero-cost-when-disabled guarantee.  Each counter lands
        under ``optimizer.<field>``; in the parallel search every worker
        flushes its own (pre-dedup) counters, so — like ``memo_hits`` —
        parallel registry totals are per-worker sums.
        """
        registry = obs.metrics()
        if registry is None:
            return
        for name, value in (
            ("plans_considered", self.plans_considered),
            ("divisions_enumerated", self.divisions_enumerated),
            ("subqueries_expanded", self.subqueries_expanded),
            ("memo_hits", self.memo_hits),
            ("local_short_circuits", self.local_short_circuits),
        ):
            registry.counter(f"optimizer.{name}").inc(value)
        if self.workers > 1:
            registry.counter("optimizer.steals").inc(self.steals)
            registry.gauge("optimizer.worker_balance").set(self.worker_balance)
        if self.degraded:
            registry.counter("governance.degraded").inc()


@dataclass
class OptimizationResult:
    """A plan plus the bookkeeping every experiment needs."""

    plan: PlanNode
    algorithm: str
    stats: EnumerationStats
    elapsed_seconds: float

    @property
    def cost(self) -> float:
        """The plan's estimated cost (Eq. 3)."""
        return self.plan.cost


class TopDownEnumerator:
    """TD-CMD: exhaustive k-ary bushy enumeration over cmds."""

    algorithm_name = "TD-CMD"
    #: Rule 3 behaviour: TD-CMD keeps enumerating below local queries,
    #: TD-CMDP stops at the flat local plan.
    local_short_circuit = False

    def __init__(
        self,
        join_graph: JoinGraph,
        builder: PlanBuilder,
        local_index: Optional[LocalQueryIndex] = None,
        timeout_seconds: Optional[float] = None,
        budget: Optional[QueryBudget] = None,
    ) -> None:
        self.join_graph = join_graph
        self.builder = builder
        self.local_index = local_index or LocalQueryIndex(join_graph, None)
        self.timeout_seconds = timeout_seconds
        #: governance envelope; when None, ``timeout_seconds`` (the
        #: enumerator-level convenience the experiment harness uses)
        #: becomes a strict deadline-only budget at optimize() time
        self.budget = budget
        self.stats = EnumerationStats()
        #: exclusive counters per expanded subquery, for parallel merging
        self.subquery_records: Dict[int, SubqueryRecord] = {}
        self._memo: Dict[int, PlanNode] = {}
        self._budget: Optional[QueryBudget] = None
        self._anytime = False
        self._root_bits = 0
        self._root_seed: Optional[PlanNode] = None
        self._root_choice: Optional[
            Tuple[JoinAlgorithm, List[PlanNode], Optional[Variable]]
        ] = None

    def invariant_profile(self) -> InvariantProfile:
        """The optional invariants this enumerator's plans satisfy.

        TD-CMD prunes nothing, so its plans promise only the universal
        structural invariants (an empty profile).
        """
        return InvariantProfile()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def optimize(self) -> OptimizationResult:
        """Find the best plan for the whole query.

        With a deadline and ``anytime`` on, expiry mid-search degrades
        to the best *complete* plan found so far (the best root
        candidate materialized from fully-optimized children, else the
        root's flat local plan, else the greedy fallback) instead of
        raising; the result is flagged ``stats.degraded`` and the
        algorithm label gains an ``[anytime]`` suffix.  Without
        ``anytime``, expiry raises :class:`OptimizationTimeout` exactly
        as it always did.
        """
        full = self.join_graph.full
        if not self.join_graph.is_connected(full):
            raise CartesianProductError(
                "query is disconnected; Cartesian-product-free plans do not exist"
            )
        started = time.perf_counter()
        self._budget = self._resolve_budget()
        self._anytime = self._budget is not None and self._budget.anytime
        self._root_bits = full
        self._root_seed = None
        self._root_choice = None
        algorithm = self.algorithm_name
        with obs.span(
            "enumerate",
            algorithm=self.algorithm_name,
            patterns=self.join_graph.size,
        ) as sp:
            try:
                plan = self.get_best_plan(full, is_local=False)
            except AnytimeExpiry:
                plan, algorithm = self._degraded_plan()
            elapsed = time.perf_counter() - started
            sp.set(cost=plan.cost, **self.stats.summary())
            self.stats.flush_to_metrics()
        return OptimizationResult(
            plan=plan,
            algorithm=algorithm,
            stats=self.stats,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def get_best_plan(self, bits: int, is_local: bool) -> PlanNode:
        """GetBestPlan: memoized best plan for the subquery *bits*."""
        cached = self._memo.get(bits)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        if not is_local:
            is_local = self.local_index.is_local(bits)
        plan = self.best_plan_gen(bits, is_local)
        self._memo[bits] = plan
        return plan

    def best_plan_gen(self, bits: int, is_local: bool) -> PlanNode:
        """BestPlanGen: compare the candidate plans, build only the best.

        Costs are computed directly from child plans and the estimator
        (Eq. 3); the winning plan node is materialized once at the end,
        which keeps the per-candidate work at the Θ(1)-beyond-
        enumeration level the paper's complexity analysis assumes.
        """
        self._check_deadline()
        self.stats.subqueries_expanded += 1
        record = SubqueryRecord()
        self.subquery_records[bits] = record
        if bs.popcount(bits) == 1:
            return self.builder.scan(bs.lowest_index(bits))
        anytime_root = self._anytime and bits == self._root_bits
        best: Optional[PlanNode] = None
        if is_local:
            best = self.builder.local_join_plan(bits)
            record.plans_considered += 1
            self.stats.plans_considered += 1
            if anytime_root:
                self._root_seed = best
            if self.local_short_circuit:
                record.local_short_circuits += 1
                self.stats.local_short_circuits += 1
                return best
        parameters = self.builder.parameters
        output_cardinality = self.builder.estimator.cardinality(bits)
        best_cost = best.cost if best is not None else float("inf")
        best_choice: Optional[
            Tuple[JoinAlgorithm, List[PlanNode], Optional[Variable]]
        ] = None
        deadline_tick = 0
        for parts, variable, operators in self.divisions(bits):
            record.divisions_enumerated += 1
            self.stats.divisions_enumerated += 1
            deadline_tick += 1
            if deadline_tick & 0xFF == 0:
                self._check_deadline()
            children = [self.get_best_plan(part, is_local) for part in parts]
            inputs = [child.cardinality for child in children]
            child_cost = max(child.cost for child in children)
            for operator in operators:
                cost = child_cost + parameters.operator_cost(
                    operator, inputs, output_cardinality
                )
                record.plans_considered += 1
                self.stats.plans_considered += 1
                if cost < best_cost:
                    best_cost = cost
                    best_choice = (operator, children, variable)
                    if anytime_root:
                        # every root candidate's children are complete
                        # memoized plans, so this is always a complete
                        # plan — exactly what anytime mode returns
                        self._root_choice = best_choice
        if best_choice is not None:
            operator, children, variable = best_choice
            best = self.builder.join(operator, children, variable)
        if best is None:
            raise CartesianProductError(
                f"no connected division for subquery {bits:#x}"
            )
        return best

    # ------------------------------------------------------------------
    # strategy hook
    # ------------------------------------------------------------------
    def divisions(
        self, bits: int
    ) -> Iterator[Tuple[Tuple[int, ...], Variable, Sequence[JoinAlgorithm]]]:
        """The division space: every cmd, with both distributed joins."""
        operators = (JoinAlgorithm.BROADCAST, JoinAlgorithm.REPARTITION)
        for parts, variable in enumerate_cmds(self.join_graph, bits):
            yield parts, variable, operators

    def raw_divisions(
        self, bits: int
    ) -> Iterator[Tuple[Tuple[int, ...], Variable, Sequence[JoinAlgorithm]]]:
        """The division space without instrumentation side effects.

        The parallel drivers probe the division space (to size slices
        or tiers) before any search runs; this hook lets them count
        divisions without inflating rule-hit trace counters.  TD-CMD's
        ``divisions`` has no instrumentation, so this is the same
        iterator; TD-CMDP overrides it with the raw generator.
        """
        return self.divisions(bits)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _resolve_budget(self) -> Optional[QueryBudget]:
        """The effective budget: explicit, or one from ``timeout_seconds``."""
        if self.budget is not None:
            return self.budget
        if self.timeout_seconds is not None:
            return QueryBudget(deadline=Deadline.after(self.timeout_seconds))
        return None

    def _check_deadline(self) -> None:
        budget = self._budget
        if budget is None:
            return
        budget.check_cancelled(phase="optimize")
        deadline = budget.deadline
        if deadline is not None and deadline.expired:
            if self._anytime:
                raise AnytimeExpiry()
            raise OptimizationTimeout(
                f"{self.algorithm_name} exceeded {deadline.seconds:.0f}s"
            )

    def _degraded_plan(self) -> Tuple[PlanNode, str]:
        """The anytime answer after expiry: best-so-far, else greedy.

        Degradation ladder (docs/RESILIENCE.md): (1) the best complete
        root candidate recorded during search, (2) the root's flat
        local seed plan, (3) the greedy fallback planner.  The returned
        label keeps the algorithm name as a prefix so
        ``profile_for_algorithm`` still applies the right verifier
        profile to anytime plans.
        """
        plan: Optional[PlanNode] = None
        if self._root_choice is not None:
            operator, children, variable = self._root_choice
            plan = self.builder.join(operator, children, variable)
        elif self._root_seed is not None:
            plan = self._root_seed
        if plan is not None:
            label = f"{self.algorithm_name}[anytime]"
            reason = "deadline: returned best complete plan so far"
        else:
            plan = greedy_fallback_plan(self.builder)
            label = f"{self.algorithm_name}[anytime-greedy]"
            reason = "deadline: no complete candidate; greedy fallback"
        self.stats.degraded = True
        self.stats.degradation_reason = reason
        obs.event("governance.degraded", algorithm=label, reason=reason)
        obs.count("governance.anytime_plans")
        return plan, label


def greedy_fallback_plan(
    builder: PlanBuilder, frontier: Optional[List[PlanNode]] = None
) -> PlanNode:
    """A complete plan in O(n³) time: the anytime last resort.

    Greedily merges the two connected frontier plans whose combined
    subquery has the smallest estimated cardinality, joining them with
    a binary repartition join on their lexicographically first shared
    variable.  Never optimal, but always Cartesian-product-free and
    costed by the same builder arithmetic as every other plan.  The
    merge joins are binary repartitions, so the result satisfies every
    optional verifier profile its *frontier* plans satisfy — plain
    scans (the default) trivially, and the memo-sharded search's
    solved-entry plans because they come out of the pruned enumeration
    itself; either way anytime plans pass
    :class:`~repro.analysis.plan_verifier.PlanVerifier` unchanged.

    *frontier* defaults to one scan per pattern; the memo-sharded
    anytime path passes the disjoint cover of the query by its largest
    solved entries instead (see :mod:`.memo_shard`).
    """
    join_graph = builder.join_graph
    if frontier is None:
        frontier = [builder.scan(index) for index in range(join_graph.size)]
    else:
        frontier = list(frontier)
    while len(frontier) > 1:  # lint: disable=LINT014 post-expiry anytime path: O(n³) in pattern count, a poll would re-raise the deadline it degrades from
        best_pair: Optional[Tuple[int, int]] = None
        best_key: Optional[Tuple[float, int]] = None
        for i in range(len(frontier)):  # lint: disable=LINT014 bounded by frontier size (≤ pattern count), same post-expiry rationale
            for j in range(i + 1, len(frontier)):
                combined = frontier[i].bits | frontier[j].bits
                if not join_graph.shared_variables(
                    frontier[i].bits, frontier[j].bits
                ):
                    continue
                key = (builder.estimator.cardinality(combined), combined)
                if best_key is None or key < best_key:
                    best_key = key
                    best_pair = (i, j)
        if best_pair is None:
            raise CartesianProductError(
                "greedy fallback found no connected pair to merge"
            )
        i, j = best_pair
        shared = join_graph.shared_variables(frontier[i].bits, frontier[j].bits)
        variable = sorted(shared, key=lambda v: v.name)[0]
        joined = builder.join(
            JoinAlgorithm.REPARTITION, [frontier[i], frontier[j]], variable
        )
        frontier = [
            plan for k, plan in enumerate(frontier) if k != i and k != j
        ]
        frontier.append(joined)
    return frontier[0]
