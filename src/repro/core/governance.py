"""Query lifecycle governance: deadlines, budgets, cancellation, aborts.

The ROADMAP's north star is a long-lived service under concurrent
traffic, where a query must never be allowed to run away with the
process.  This module is the vocabulary that the whole pipeline —
enumeration, parallel search, execution — speaks to enforce that:

* :class:`Deadline` — an absolute point on a monotonic clock; checked
  cooperatively at operator and division boundaries.
* :class:`QueryBudget` — the per-query resource envelope: a deadline,
  an intermediate-row budget (the memory-ceiling stand-in: every tuple
  an operator produces is charged against it), a query-wide retry
  budget on top of the per-operator :class:`~repro.engine.recovery.RetryPolicy`,
  a shared :class:`CancellationToken`, and the ``anytime`` flag that
  turns a mid-search deadline into graceful degradation instead of an
  error.
* :class:`QueryAborted` — the structured abort taxonomy
  (:class:`AbortCause`): which budget broke, where (phase + operator),
  with the attempt history, partial metrics, and open span trace
  attached, so a service front-end can classify failures without
  parsing messages.

Clock discipline: this is the *one* module in ``core/`` / ``engine/``
allowed to read the wall clock for control flow (``time.monotonic``);
LINT005 (:mod:`repro.analysis.lint.rules`) enforces that everything
else goes through a :class:`Deadline`.  Tests substitute
:class:`ManualClock` / :class:`SteppingClock` to make expiry
deterministic — a deadline is data, not an ambient side effect.

Everything here is zero-cost-off: a query with no budget never
constructs any of these objects, and budget checks start with a single
``is None`` test.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional, Protocol, Tuple

if TYPE_CHECKING:  # pragma: no cover - engine imports core, never the reverse
    from ..engine.faults import FaultEvent
    from ..engine.metrics import ExecutionMetrics


class Clock(Protocol):
    """Anything with a monotonic ``now()`` — the deadline time source."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        ...  # pragma: no cover - protocol


class MonotonicClock:
    """The production clock: ``time.monotonic`` (sanctioned use, LINT005)."""

    def now(self) -> float:
        """Current monotonic time in seconds."""
        return time.monotonic()


class ManualClock:
    """A clock tests drive by hand; ``now()`` never moves on its own."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        """Current manual time."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by *seconds*."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += seconds


class SteppingClock(ManualClock):
    """A manual clock that advances a fixed *step* per ``now()`` call.

    Deadline checks happen at deterministic code points (division
    ticks, operator boundaries), so with a stepping clock "time runs
    out after the N-th check" is exactly reproducible — the chaos
    harness uses this to force mid-search and mid-execution expiry
    without real sleeps.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        super().__init__(start)
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        self.step = step
        self.calls = 0

    def now(self) -> float:
        """Current time; advances by :attr:`step` as a side effect."""
        value = self._now
        self._now += self.step
        self.calls += 1
        return value


#: the process-wide production clock every real deadline reads
CLOCK: Clock = MonotonicClock()


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry point on a monotonic clock.

    Construct with :meth:`after`; pass explicitly wherever expiry must
    be checked.  ``seconds`` keeps the originally requested allowance
    for error messages.
    """

    expires_at: float
    seconds: float
    clock: Clock = field(default_factory=lambda: CLOCK, compare=False)

    @classmethod
    def after(cls, seconds: float, clock: Optional[Clock] = None) -> "Deadline":
        """A deadline *seconds* from now on *clock* (default: real time)."""
        if seconds < 0:
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        source = clock if clock is not None else CLOCK
        return cls(
            expires_at=source.now() + seconds, seconds=seconds, clock=source
        )

    @property
    def expired(self) -> bool:
        """Whether the deadline has passed (reads the clock)."""
        return self.clock.now() > self.expires_at

    def remaining(self) -> float:
        """Seconds left before expiry; 0.0 once expired (never negative)."""
        return max(0.0, self.expires_at - self.clock.now())


class CancellationToken:
    """A thread-safe flag shared between a driver and its workers.

    Cooperative: code polls :attr:`cancelled` at safe points; nothing
    is interrupted pre-emptively.  The first :meth:`cancel` wins — its
    reason sticks; later calls are no-ops.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._reason = ""  #: guarded-by: _lock

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()

    @property
    def reason(self) -> str:
        """The first cancel's reason (empty while not cancelled)."""
        with self._lock:
            return self._reason

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent; the first reason sticks).

        The lock makes first-cancel-wins atomic: without it two
        concurrent cancels can both pass the not-set check and the
        *losing* reason can stick while the event fires.
        """
        with self._lock:
            if not self._event.is_set():
                self._reason = reason
                self._event.set()

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason!r}" if self.cancelled else "active"
        return f"CancellationToken({state})"


class AbortCause(Enum):
    """Why a query was aborted — the error taxonomy of ``QueryAborted``."""

    DEADLINE = "deadline"
    ROW_BUDGET = "row-budget"
    RETRY_EXHAUSTED = "retry-exhausted"
    CANCELLED = "cancelled"


class QueryAborted(RuntimeError):
    """A query stopped by governance, with structured context attached.

    Unlike a bare error message, the exception carries everything a
    service front-end needs to classify and report the abort: the
    :class:`AbortCause`, the query id, the lifecycle phase
    (``"optimize"`` / ``"execute"``), the operator that was running,
    the fault-event attempt history, the partial
    :class:`~repro.engine.metrics.ExecutionMetrics` accumulated so far,
    and the names of the spans open at abort time.
    """

    def __init__(
        self,
        message: str,
        *,
        cause: AbortCause,
        query_id: str = "",
        phase: str = "",
        operator: str = "",
        attempts: Tuple["FaultEvent", ...] = (),
        partial_metrics: Optional["ExecutionMetrics"] = None,
        trace: Tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.cause = cause
        self.query_id = query_id
        self.phase = phase
        self.operator = operator
        self.attempts = tuple(attempts)
        self.partial_metrics = partial_metrics
        self.trace = tuple(trace)

    def describe(self) -> str:
        """A multi-line, human-readable abort report."""
        lines = [f"query aborted: {self.args[0]}"]
        lines.append(f"  cause: {self.cause.value}")
        if self.query_id:
            lines.append(f"  query: {self.query_id}")
        if self.phase:
            lines.append(f"  phase: {self.phase}")
        if self.operator:
            lines.append(f"  operator: {self.operator}")
        if self.trace:
            lines.append(f"  open spans: {' > '.join(self.trace)}")
        if self.attempts:
            lines.append(f"  attempt history ({len(self.attempts)} faults):")
            for event in self.attempts:
                lines.append(f"    - {event}")
        if self.partial_metrics is not None:
            summary = self.partial_metrics.summary()
            rendered = ", ".join(
                f"{key}={value}" for key, value in summary.items()
            )
            lines.append(f"  partial metrics: {rendered}")
        return "\n".join(lines)


class AnytimeExpiry(Exception):
    """Internal control flow: the deadline fired under ``anytime=True``.

    Caught by the enumerator's entry point, which degrades to the best
    complete plan found so far instead of propagating an error.  Never
    escapes :meth:`TopDownEnumerator.optimize`.
    """


@dataclass
class QueryBudget:
    """The resource envelope one query lives inside.

    All limits are optional; an all-``None`` budget (with ``anytime``
    off and no token) is indistinguishable from no budget.  The
    mutable counters (:attr:`rows_charged`, :attr:`retries_charged`)
    accumulate across the query's whole lifecycle — a budget handed to
    both the optimizer and the executor is charged by both, which is
    the point: the budget belongs to the *query*, not to a phase.
    """

    #: wall-clock (or test-clock) expiry for the whole lifecycle
    deadline: Optional[Deadline] = None
    #: ceiling on Σ intermediate rows produced (memory stand-in)
    row_budget: Optional[int] = None
    #: query-wide cap on retries, across all operators (the per-operator
    #: cap stays with :class:`~repro.engine.recovery.RetryPolicy`)
    retry_budget: Optional[int] = None
    #: shared cooperative cancel flag (driver-side for process pools)
    cancellation: Optional[CancellationToken] = None
    #: degrade to best-plan-so-far on optimizer deadline instead of
    #: raising (execution deadlines always abort — there is no partial
    #: answer to degrade to)
    anytime: bool = False
    #: identifier stamped onto every abort this budget raises
    query_id: str = ""
    rows_charged: int = 0
    retries_charged: int = 0

    def __post_init__(self) -> None:
        if self.row_budget is not None and self.row_budget < 0:
            raise ValueError(f"row_budget must be >= 0, got {self.row_budget}")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )

    # ------------------------------------------------------------------
    # checks (each raises QueryAborted on breach)
    # ------------------------------------------------------------------
    def check_cancelled(self, phase: str, operator: str = "") -> None:
        """Raise :class:`QueryAborted` if the token has been cancelled."""
        token = self.cancellation
        if token is not None and token.cancelled:
            raise QueryAborted(
                f"cancelled: {token.reason}",
                cause=AbortCause.CANCELLED,
                query_id=self.query_id,
                phase=phase,
                operator=operator,
            )

    def deadline_expired(self) -> bool:
        """Whether the deadline exists and has passed."""
        return self.deadline is not None and self.deadline.expired

    def check_deadline(self, phase: str, operator: str = "") -> None:
        """Raise :class:`QueryAborted` if the deadline has passed."""
        if self.deadline is not None and self.deadline.expired:
            raise QueryAborted(
                f"deadline of {self.deadline.seconds:g}s exceeded",
                cause=AbortCause.DEADLINE,
                query_id=self.query_id,
                phase=phase,
                operator=operator,
            )

    def charge_rows(self, rows: int, phase: str = "execute", operator: str = "") -> None:
        """Charge *rows* produced tuples; raise on row-budget breach."""
        if self.row_budget is None:
            return
        self.rows_charged += rows
        if self.rows_charged > self.row_budget:
            raise QueryAborted(
                f"row budget of {self.row_budget} exceeded "
                f"({self.rows_charged} intermediate rows)",
                cause=AbortCause.ROW_BUDGET,
                query_id=self.query_id,
                phase=phase,
                operator=operator,
            )

    def charge_retry(self, phase: str = "execute", operator: str = "") -> None:
        """Charge one retry; raise on query-wide retry-budget breach."""
        if self.retry_budget is None:
            return
        self.retries_charged += 1
        if self.retries_charged > self.retry_budget:
            raise QueryAborted(
                f"query retry budget of {self.retry_budget} exhausted",
                cause=AbortCause.RETRY_EXHAUSTED,
                query_id=self.query_id,
                phase=phase,
                operator=operator,
            )

    def __repr__(self) -> str:
        limits = []
        if self.deadline is not None:
            limits.append(f"deadline={self.deadline.seconds:g}s")
        if self.row_budget is not None:
            limits.append(f"rows<={self.row_budget}")
        if self.retry_budget is not None:
            limits.append(f"retries<={self.retry_budget}")
        if self.cancellation is not None:
            limits.append(repr(self.cancellation))
        if self.anytime:
            limits.append("anytime")
        label = ", ".join(limits) if limits else "unlimited"
        return f"QueryBudget({label})"
