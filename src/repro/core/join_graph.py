"""The join graph J(Q) and query-shape classification.

Definition 1 of the paper: J(Q) = (V_T, V_J, E_J) is a bipartite graph
with one vertex per triple pattern (V_T), one vertex per *join variable*
— a variable shared by at least two patterns — (V_J), and an edge
whenever a pattern contains a join variable.

Subqueries are bitsets over pattern indices (see :mod:`.bitset`); all
connectivity operations here work directly on bitsets so the enumeration
algorithms run at the speed the paper's complexity analysis assumes.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..rdf.terms import Variable
from ..sparql.ast import BGPQuery, TriplePattern
from . import bitset as bs


class QueryShape(enum.Enum):
    """The query taxonomy of Section II-B / Figure 2."""

    STAR = "star"
    CHAIN = "chain"
    CYCLE = "cycle"
    TREE = "tree"
    DENSE = "dense"
    SINGLE = "single"  # one triple pattern; no joins at all


class JoinGraph:
    """Bipartite join graph of a BGP query, with bitset operations.

    Attributes
    ----------
    query:
        The underlying :class:`BGPQuery`.
    patterns:
        ``patterns[i]`` is the triple pattern with bitset index ``i``.
    join_variables:
        V_J in first-appearance order.
    """

    def __init__(self, query: BGPQuery) -> None:
        self.query = query
        self.patterns: Tuple[TriplePattern, ...] = query.patterns
        self.size = len(self.patterns)
        self.full = bs.full_set(self.size)

        self.join_variables: Tuple[Variable, ...] = tuple(query.join_variables())
        self._var_index: Dict[Variable, int] = {
            v: i for i, v in enumerate(self.join_variables)
        }
        # Ntp(vj) as a bitset per join variable
        self._ntp: List[int] = [0] * len(self.join_variables)
        # join variables per pattern
        self._pattern_vars: List[FrozenSet[Variable]] = []
        join_var_set = set(self.join_variables)
        for i, tp in enumerate(self.patterns):
            jvars = frozenset(v for v in tp.variables() if v in join_var_set)
            self._pattern_vars.append(jvars)
            for v in sorted(jvars, key=lambda v: v.name):
                self._ntp[self._var_index[v]] |= bs.bit(i)
        # pattern adjacency (shared join variable)
        self._adj: List[int] = [0] * self.size
        for vbits in self._ntp:
            for i in bs.iter_bits(vbits):
                self._adj[i] |= vbits
        for i in range(self.size):
            self._adj[i] &= ~bs.bit(i)
        # adjacency with one join variable removed, computed lazily
        self._adj_without: Dict[Variable, List[int]] = {}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def ntp(self, variable: Variable) -> int:
        """Ntp(vj): bitset of patterns containing join variable *vj*."""
        return self._ntp[self._var_index[variable]]

    def degree(self, variable: Variable) -> int:
        """|Ntp(vj)|: the degree of a join variable."""
        return bs.popcount(self.ntp(variable))

    def max_degree(self) -> int:
        """The highest join-variable degree (0 when there are no joins)."""
        if not self._ntp:
            return 0
        return max(bs.popcount(v) for v in self._ntp)

    def pattern_join_variables(self, index: int) -> FrozenSet[Variable]:
        """Join variables contained in pattern *index*."""
        return self._pattern_vars[index]

    def join_variables_in(self, bits: int) -> List[Variable]:
        """Join variables shared by ≥2 patterns *inside* the subquery."""
        return [
            v
            for v, vbits in zip(self.join_variables, self._ntp)
            if bs.popcount(vbits & bits) >= 2
        ]

    def variables_of(self, bits: int) -> Set[Variable]:
        """All variables (join or not) appearing in the subquery."""
        result: Set[Variable] = set()
        for i in bs.iter_bits(bits):
            result.update(self.patterns[i].variables())
        return result

    def shared_variables(self, left: int, right: int) -> Set[Variable]:
        """Variables appearing in both subqueries."""
        return self.variables_of(left) & self.variables_of(right)

    def pattern_set(self, bits: int) -> List[TriplePattern]:
        """The triple patterns of a subquery bitset, in index order."""
        return [self.patterns[i] for i in bs.iter_bits(bits)]

    def bits_of(self, patterns: Sequence[TriplePattern]) -> int:
        """Bitset of a collection of (already-indexed) patterns."""
        return bs.from_indices(self.query.index_of(tp) for tp in patterns)

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def _adjacency(self, exclude: Optional[Variable]) -> List[int]:
        if exclude is None:
            return self._adj
        cached = self._adj_without.get(exclude)
        if cached is None:
            cached = [0] * self.size
            for v, vbits in zip(self.join_variables, self._ntp):
                if v == exclude:
                    continue
                for i in bs.iter_bits(vbits):
                    cached[i] |= vbits
            for i in range(self.size):
                cached[i] &= ~bs.bit(i)
            self._adj_without[exclude] = cached
        return cached

    def neighbors(self, bits: int, exclude: Optional[Variable] = None) -> int:
        """Bitset of patterns adjacent to the subquery (outside it)."""
        adj = self._adjacency(exclude)
        result = 0
        for i in bs.iter_bits(bits):
            result |= adj[i]
        return result & ~bits

    def is_connected(self, bits: int, exclude: Optional[Variable] = None) -> bool:
        """Whether the subquery's join graph is connected.

        A single pattern (or the empty set) counts as connected.
        """
        if bits == 0:
            return True
        adj = self._adjacency(exclude)
        start = bs.lowest_bit(bits)
        reached = start
        frontier = start
        while frontier:
            grown = 0
            for i in bs.iter_bits(frontier):
                grown |= adj[i]
            grown &= bits & ~reached
            reached |= grown
            frontier = grown
        return reached == bits

    def connected_components(
        self, bits: int, exclude: Optional[Variable] = None
    ) -> List[int]:
        """Connected components of the subquery, as bitsets.

        With *exclude* set, connectivity ignores that join variable —
        this is the "remove v_j from the join graph" step of Algorithm 2.
        """
        adj = self._adjacency(exclude)
        components: List[int] = []
        remaining = bits
        while remaining:
            start = bs.lowest_bit(remaining)
            component = start
            frontier = start
            while frontier:
                grown = 0
                for i in bs.iter_bits(frontier):
                    grown |= adj[i]
                grown &= remaining & ~component
                component |= grown
                frontier = grown
            components.append(component)
            remaining &= ~component
        return components

    # ------------------------------------------------------------------
    # shape classification and summary statistics
    # ------------------------------------------------------------------
    def edge_count(self) -> int:
        """|E_J|: total pattern-to-join-variable incidences."""
        return sum(bs.popcount(v) for v in self._ntp)

    def vt_vj_ratio(self) -> float:
        """|V_T| / |V_J|, the first test of the TD-Auto decision tree."""
        if not self.join_variables:
            return float("inf")
        return self.size / len(self.join_variables)

    def is_cyclic(self) -> bool:
        """Whether the join graph contains a cycle.

        For a bipartite graph with ``c`` connected components, acyclicity
        is equivalent to ``|E| == |V| - c``.
        """
        vertex_count = self.size + len(self.join_variables)
        # components of the bipartite graph = components of the pattern
        # adjacency plus isolated join variables (none by construction)
        components = len(self.connected_components(self.full))
        return self.edge_count() > vertex_count - components

    def cycle_rank(self) -> int:
        """Number of independent cycles (|E| - |V| + components)."""
        vertex_count = self.size + len(self.join_variables)
        components = len(self.connected_components(self.full))
        return self.edge_count() - vertex_count + components

    def shape(self) -> QueryShape:
        """Classify the query per Figure 2 of the paper.

        ``STAR`` requires a single join variable shared by *all* patterns
        with the patterns meeting at a common query-graph vertex role
        (the classic subject-star / object-star); a two-pattern query
        whose shared variable links the object of one to the subject of
        the other is a ``CHAIN`` (this is how the paper distinguishes
        L1/star from L2/chain, both of which have two patterns and one
        join variable).
        """
        if self.size == 1:
            return QueryShape.SINGLE
        if len(self.join_variables) == 1 and self.ntp(self.join_variables[0]) == self.full:
            variable = self.join_variables[0]
            roles: Set[str] = set()
            for tp in self.patterns:
                if tp.subject == variable:
                    roles.add("s")
                elif tp.object == variable:
                    roles.add("o")
                else:
                    roles.add("p")
            if len(roles) == 1 or self.size > 2:
                return QueryShape.STAR
            return QueryShape.CHAIN
        if self.is_cyclic():
            if self._is_simple_cycle():
                return QueryShape.CYCLE
            return QueryShape.DENSE
        if self._is_path():
            return QueryShape.CHAIN
        return QueryShape.TREE

    def _is_path(self) -> bool:
        if not self.is_connected(self.full):
            return False
        var_degrees = [bs.popcount(v) for v in self._ntp]
        tp_degrees = [len(pv) for pv in self._pattern_vars]
        endpoints = sum(1 for d in tp_degrees if d == 1)
        return (
            all(d == 2 for d in var_degrees)
            and all(1 <= d <= 2 for d in tp_degrees)
            and endpoints == 2
        )

    def _is_simple_cycle(self) -> bool:
        if not self.is_connected(self.full):
            return False
        var_degrees = [bs.popcount(v) for v in self._ntp]
        tp_degrees = [len(pv) for pv in self._pattern_vars]
        return (
            all(d == 2 for d in var_degrees)
            and all(d == 2 for d in tp_degrees)
            and self.cycle_rank() == 1
        )

    def __repr__(self) -> str:
        return (
            f"JoinGraph(|V_T|={self.size}, |V_J|={len(self.join_variables)}, "
            f"shape={self.shape().value})"
        )
