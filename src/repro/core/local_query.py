"""Local-query detection via maximal local queries (Appendix A).

A subquery SQ is *local* iff it is contained in some maximal local
query MLQ_v = combine(v, G_Q) (Theorem 5).  Both sides are encoded as
bitsets, so each containment test is one AND + compare — the Θ(|V_Q|)
worst case of the paper, and usually far less because the check walks
the maximal local queries largest-first.

With no partitioning configured the index reports *nothing* as local
except single patterns, which gives optimizers a partitioning-agnostic
default (every multi-pattern join is distributed).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..partitioning.base import PartitioningMethod
from . import bitset as bs
from .join_graph import JoinGraph


class LocalQueryIndex:
    """Precomputed maximal local queries for one (query, partitioning)."""

    def __init__(
        self,
        join_graph: JoinGraph,
        partitioning: Optional[PartitioningMethod] = None,
    ) -> None:
        self.join_graph = join_graph
        self.partitioning = partitioning
        self._mlq_bits: List[int] = []
        if partitioning is not None:
            seen: Set[int] = set()
            for mlq in partitioning.maximal_local_queries(join_graph.query):
                bits = join_graph.bits_of(list(mlq))
                if bits and bits not in seen:
                    seen.add(bits)
                    self._mlq_bits.append(bits)
            # largest first: big subqueries hit early
            self._mlq_bits.sort(key=bs.popcount, reverse=True)

    @property
    def maximal_local_queries(self) -> List[int]:
        """The distinct maximal local queries, as bitsets, largest first."""
        return list(self._mlq_bits)

    def is_local(self, bits: int) -> bool:
        """Theorem 5: SQ is local iff contained in some MLQ.

        Single triple patterns are always local — a one-pattern match is
        one triple, and every triple lives in at least one partitioning
        element.
        """
        if bs.popcount(bits) <= 1:
            return True
        for mlq in self._mlq_bits:
            if bs.is_subset(bits, mlq):
                return True
        return False

    def local_cover_exists(self) -> bool:
        """Whether the MLQs cover the whole query (needed by HGR)."""
        covered = 0
        for mlq in self._mlq_bits:
            covered |= mlq
        # single patterns are always local, so a cover always exists;
        # this reports whether any *multi-pattern* structure is covered
        return covered == self.join_graph.full
