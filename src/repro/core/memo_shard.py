"""Memo-sharded parallel plan search: popcount tiers + work stealing.

The root-slice scheme (see :mod:`.parallel`) splits only the *root*
division space, so every worker re-solves almost the entire lower memo
and intra-query speedup caps out barely above 1×.  Trummer & Koch's
shared-nothing parallelization goes further: allocate *all* DP
subproblems across workers.  This module implements that scheme for
TD-CMD / TD-CMDP:

* the connected-subquery space is partitioned into **popcount tiers**
  (tier k = every connected subquery with k patterns), grown
  breadth-first from the singletons — every connected subquery of size
  k extends one of size k-1, so the tiers are exactly the DP levels;
* a **persistent worker pool** solves one tier at a time.  The driver
  broadcasts the previous tier's solved ``{bitset: cost}`` entries to
  every worker first, so each worker's child-cost lookups always hit a
  complete lower-tier memo — the only state the cost recursion needs,
  because a subquery's candidate set (and the cardinalities involved)
  is a pure function of its bitset;
* within a tier, entries are chunked onto per-worker work queues;
  a worker that drains its own queue **steals** a chunk from the most
  loaded sibling (driver-mediated, counted per worker), so skewed
  division spaces no longer leave workers idle;
* workers return *choice descriptors* (winning operator, parts,
  variable), never plan objects; the driver rebuilds the final plan
  bottom-up through the same :class:`~repro.core.cost.PlanBuilder`
  arithmetic, which keeps the cost — and the plan — bit-identical to
  the serial search (same candidate order, same strict ``<``
  tie-break, same float operations).

Governance: the driver polls its :class:`~repro.core.governance.QueryBudget`
every scheduler tick and ships the *remaining* deadline seconds to the
workers (re-anchored per process, as in root-slicing).  On expiry with
``anytime`` set, the driver degrades to a complete plan assembled from
the finished tiers: a greedy disjoint cover of the query by the largest
solved entries (singletons guarantee the cover exists), merged with
binary repartition joins by :func:`~repro.core.enumeration.greedy_fallback_plan`.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
import traceback
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..observability import runtime as obs
from ..observability.spans import Span, Tracer
from .enumeration import (
    EnumerationStats,
    OptimizationResult,
    OptimizationTimeout,
    greedy_fallback_plan,
)
from .governance import Deadline, QueryBudget
from .local_query import LocalQueryIndex
from .optimizer import make_builder
from .plans import PlanNode
from . import bitset as bs

#: scheduler poll interval while waiting on worker results
_POLL_SECONDS = 0.05
#: target chunks per worker per tier (keeps stealing worthwhile)
_CHUNKS_PER_WORKER = 4
#: hard ceiling on entries per chunk (bounds sync latency on huge tiers)
_MAX_CHUNK = 64
#: chunks pushed to a worker before its first completion comes back
_PREFETCH = 2
#: below this many non-singleton entries sharding is pure overhead
_MIN_ENTRIES = 4
#: worker-side deadline check frequency within a division loop
_DEADLINE_TICK_MASK = 0xFF


class _TierExpired(Exception):
    """Internal: a deadline fired mid-tier (driver- or worker-side)."""

    def __init__(self, tiers_done: int) -> None:
        super().__init__()
        self.tiers_done = tiers_done


def subquery_tiers(join_graph: Any) -> List[List[int]]:
    """All connected subqueries, grouped (and sorted) by popcount.

    ``tiers[k]`` holds every connected subquery with k patterns, in
    ascending bitset order; ``tiers[0]`` is empty and ``tiers[n]`` is
    ``[full]`` for a connected query.  Grown breadth-first: every
    connected set of size k is a connected set of size k-1 plus one
    neighboring pattern (every connected subgraph has a non-cut
    vertex), so the frontier walk is exhaustive.
    """
    n = join_graph.size
    tiers: List[List[int]] = [[] for _ in range(n + 1)]
    if n == 0:
        return tiers
    tiers[1] = [bs.bit(i) for i in range(n)]
    for k in range(2, n + 1):
        grown = set()
        for bits in tiers[k - 1]:
            for i in bs.iter_bits(join_graph.neighbors(bits)):
                grown.add(bits | bs.bit(i))
        tiers[k] = sorted(grown)
    return tiers


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _WorkerExpired(Exception):
    """Internal to a worker: its re-anchored deadline fired."""


#: a worker's report for one solved entry:
#: (bits, cost, choice, plans, divisions, shorts, reads)
_SolvedEntry = Tuple[int, float, Tuple[Any, ...], int, int, int, int]


class _WorkerState:
    """Per-process solve context: builder, enumerator, cost memo."""

    def __init__(self, payload: Tuple[Any, ...]) -> None:
        (
            query,
            statistics,
            algorithm_key,
            partitioning,
            parameters,
            deadline_remaining,
            _trace,
        ) = payload
        # imported here (not at module top) so the registry stays in one
        # place; the worker only ever needs the serial enumerator classes
        from .optimizer import ALGORITHMS

        self.builder = make_builder(query, statistics, parameters=parameters)
        self.local_index = LocalQueryIndex(self.builder.join_graph, partitioning)
        self.enumerator = ALGORITHMS[algorithm_key](
            self.builder.join_graph, self.builder, local_index=self.local_index
        )
        #: solved costs for every lower-tier entry (synced per tier)
        self.costs: Dict[int, float] = {}
        self._cards: Dict[int, float] = {}
        # deadlines do not cross process boundaries; re-anchor the
        # remaining allowance on this process's monotonic clock
        self.deadline: Optional[Deadline] = (
            Deadline.after(deadline_remaining)
            if deadline_remaining is not None
            else None
        )

    def cardinality(self, bits: int) -> float:
        """|SQ| for a division part, matching serial child cardinalities.

        A singleton child's plan is a scan, whose cardinality is the
        pattern cardinality; any larger child's plan carries the
        estimator's subquery cardinality.  Either way the value is a
        function of the bitset alone — no plan object needed.
        """
        value = self._cards.get(bits)
        if value is None:
            estimator = self.builder.estimator
            if bs.popcount(bits) == 1:
                value = estimator.pattern_cardinality(bs.lowest_index(bits))
            else:
                value = estimator.cardinality(bits)
            self._cards[bits] = value
        return value

    def solve(self, bits: int) -> _SolvedEntry:
        """Mirror one serial ``BestPlanGen`` call, without recursion.

        Child costs come from :attr:`costs` (the complete lower-tier
        memo) instead of recursive calls; everything else — candidate
        order, seed handling, the strict ``<`` tie-break, the float
        arithmetic — is identical to
        :meth:`~repro.core.enumeration.TopDownEnumerator.best_plan_gen`,
        which is what makes the merged search bit-identical to serial.

        Returns ``(bits, cost, choice, plans, divisions, shorts, reads)``
        where *choice* reconstructs the winning plan: ``("l",)`` for the
        flat local plan, ``("j", operator, parts, variable)`` for a join.
        """
        self._check_deadline()
        enumerator = self.enumerator
        builder = self.builder
        plans = divisions = shorts = reads = 0
        is_local = self.local_index.is_local(bits)
        best_cost = float("inf")
        best_choice: Optional[Tuple[Any, ...]] = None
        if is_local:
            best_cost = builder.local_join_plan(bits).cost
            best_choice = ("l",)
            plans += 1
            if enumerator.local_short_circuit:
                shorts += 1
                return (bits, best_cost, best_choice, plans, divisions, shorts, reads)
        parameters = builder.parameters
        output_cardinality = builder.estimator.cardinality(bits)
        costs = self.costs
        tick = 0
        for parts, variable, operators in enumerator.divisions(bits):
            divisions += 1
            tick += 1
            if tick & _DEADLINE_TICK_MASK == 0:
                self._check_deadline()
            child_cost = max(costs[part] for part in parts)
            reads += len(parts)
            inputs = [self.cardinality(part) for part in parts]
            for operator in operators:
                cost = child_cost + parameters.operator_cost(
                    operator, inputs, output_cardinality
                )
                plans += 1
                if cost < best_cost:
                    best_cost = cost
                    best_choice = ("j", operator, parts, variable)
        if best_choice is None:
            raise ValueError(f"no connected division for subquery {bits:#x}")
        return (bits, best_cost, best_choice, plans, divisions, shorts, reads)

    def _check_deadline(self) -> None:
        if self.deadline is not None and self.deadline.expired:
            raise _WorkerExpired()


def _worker_main(
    worker_id: int, payload: Tuple[Any, ...], task_q: Any, result_q: Any
) -> None:
    """One pool process: sync tiers, solve chunks, report results."""
    tracer: Optional[Tracer] = None
    span = None
    try:
        trace = payload[-1]
        state = _WorkerState(payload)
        if trace:
            tracer = Tracer(track=f"worker-{worker_id}")
        result_q.put(("ready", worker_id, time.perf_counter()))
        chunks_done = 0
        entries_done = 0
        scope = obs.activate(tracer) if tracer is not None else None
        if scope is not None:
            scope.__enter__()
            span = tracer.span("worker", worker_id=worker_id)
        while True:
            message = task_q.get()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "tier":
                state.costs.update(message[1])
                continue
            _, chunk_id, entry_bits = message
            started = time.perf_counter()
            results: List[_SolvedEntry] = []
            expired = False
            try:
                for bits in entry_bits:
                    results.append(state.solve(bits))
            except _WorkerExpired:
                expired = True
            elapsed = time.perf_counter() - started
            chunks_done += 1
            entries_done += len(results)
            status = "expired" if expired else "done"
            result_q.put((status, worker_id, chunk_id, results, elapsed))
        if span is not None:
            span.set(chunks=chunks_done, entries=entries_done)
            span.__exit__(None, None, None)
            span = None
        if scope is not None:
            scope.__exit__(None, None, None)
        result_q.put(
            ("trace", worker_id, tracer.to_payload() if tracer is not None else None)
        )
    except Exception:  # pragma: no cover - surfaced driver-side
        result_q.put(("error", worker_id, traceback.format_exc()))


# ----------------------------------------------------------------------
# driver side
# ----------------------------------------------------------------------
class _ShardDriver:
    """Tier-synchronous scheduler over a persistent worker pool."""

    def __init__(
        self,
        query: Any,
        key: str,
        jobs: int,
        statistics: Any,
        partitioning: Any,
        parameters: Any,
        builder: Any,
        probe: Any,
        tiers: List[List[int]],
        budget: Optional[QueryBudget],
        deadline_remaining: Optional[float],
        anytime: bool,
    ) -> None:
        self.key = key
        self.jobs = jobs
        self.builder = builder
        self.probe = probe
        self.tiers = tiers
        self.budget = budget
        self.anytime = anytime
        self.deadline = (
            Deadline.after(deadline_remaining)
            if deadline_remaining is not None
            else None
        )
        self.tracer = obs.current_tracer()
        self.payload = (
            query,
            statistics,
            key,
            partitioning,
            parameters,
            deadline_remaining,
            self.tracer is not None,
        )
        # solved state + accounting: deliberately unlocked.  Every
        # field below is touched only by the driver thread — workers are
        # *processes* and all cross-process traffic flows through the
        # mp queues, so there is no shared-memory access to guard.  If a
        # future server shares one driver across threads, declare these
        # `#: guarded-by:` and add the lock (concurrency audit, PR 8).
        self.costs: Dict[int, float] = {}
        self.choices: Dict[int, Tuple[Any, ...]] = {}
        self.solved_by_worker = [0] * jobs
        self.busy_seconds = [0.0] * jobs
        self.per_worker_steals = [0] * jobs
        self.steals = 0
        self.plans = self.divisions = self.shorts = self.reads = 0
        self.worker_started: List[Optional[float]] = [None] * jobs
        self.traces: Dict[int, Optional[Dict[str, Any]]] = {}
        # pool
        self._ctx = mp.get_context()
        self._result_q = self._ctx.Queue()
        self._task_qs = [self._ctx.Queue() for _ in range(jobs)]
        self._procs: List[Any] = []

    # -- pool lifecycle -------------------------------------------------
    def start(self) -> None:
        self.spawn_started = time.perf_counter()
        for index in range(self.jobs):
            process = self._ctx.Process(
                target=_worker_main,
                args=(index, self.payload, self._task_qs[index], self._result_q),
                daemon=True,
            )
            process.start()
            self._procs.append(process)

    def shutdown(self, graceful: bool) -> None:
        """Stop the pool; on a graceful stop, collect worker traces."""
        try:
            if graceful:
                for task_q in self._task_qs:
                    task_q.put(("stop",))
                want_traces = self.tracer is not None
                stop_by = time.perf_counter() + 5.0
                while (
                    want_traces
                    and len(self.traces) < self.jobs
                    and time.perf_counter() < stop_by
                ):
                    try:
                        message = self._result_q.get(timeout=_POLL_SECONDS)
                    except queue_module.Empty:
                        continue
                    if message[0] == "trace":
                        self.traces[message[1]] = message[2]
            for process in self._procs:
                process.join(timeout=0.1 if not graceful else 1.0)
            for process in self._procs:
                if process.is_alive():
                    process.terminate()
            for process in self._procs:
                process.join(timeout=1.0)
        finally:
            for task_q in self._task_qs:
                task_q.close()
                task_q.cancel_join_thread()
            self._result_q.close()
            self._result_q.cancel_join_thread()

    # -- scheduling -----------------------------------------------------
    def run(self) -> None:
        """Solve every tier; fills :attr:`costs` / :attr:`choices`."""
        join_graph = self.builder.join_graph
        n = join_graph.size
        updates: List[Tuple[int, float]] = []
        for bits in self.tiers[1]:
            index = bs.lowest_index(bits)
            self.costs[bits] = 0.0
            self.choices[bits] = ("s", index)
            updates.append((bits, 0.0))
        for k in range(2, n + 1):
            entries = self.tiers[k]
            if not entries:
                continue
            with obs.span(
                "parallel.tier", tier=k, entries=len(entries)
            ) as tier_span:
                tier_steals = self._run_tier(k, entries, updates)
                tier_span.set(steals=tier_steals)
            updates = sorted((bits, self.costs[bits]) for bits in entries)

    def _run_tier(
        self, k: int, entries: List[int], updates: List[Tuple[int, float]]
    ) -> int:
        jobs = self.jobs
        for task_q in self._task_qs:
            task_q.put(("tier", updates))
        chunk_size = min(
            _MAX_CHUNK, max(1, -(-len(entries) // (jobs * _CHUNKS_PER_WORKER)))
        )
        chunks = [
            entries[i : i + chunk_size] for i in range(0, len(entries), chunk_size)
        ]
        queues: List[deque[int]] = [deque() for _ in range(jobs)]
        for chunk_id in range(len(chunks)):
            queues[chunk_id % jobs].append(chunk_id)
        steals_before = self.steals
        completed = 0
        for worker in range(jobs):
            for _ in range(_PREFETCH):
                self._dispatch(worker, queues, chunks)
        while completed < len(chunks):
            self._check_budget(k)
            try:
                message = self._result_q.get(timeout=_POLL_SECONDS)
            except queue_module.Empty:
                self._check_liveness()
                continue
            kind = message[0]
            if kind == "ready":
                self.worker_started[message[1]] = message[2]
            elif kind == "error":
                raise RuntimeError(
                    f"memo-shard worker {message[1]} failed:\n{message[2]}"
                )
            elif kind in ("done", "expired"):
                _, worker, _chunk_id, results, elapsed = message
                self._merge_results(worker, results, elapsed)
                if kind == "expired":
                    raise _TierExpired(tiers_done=k - 1)
                completed += 1
                self._dispatch(worker, queues, chunks)
            elif kind == "trace":  # late trace from a prior shutdown race
                self.traces[message[1]] = message[2]
        return self.steals - steals_before

    def _dispatch(
        self, worker: int, queues: List[deque[int]], chunks: List[List[int]]
    ) -> None:
        if queues[worker]:
            chunk_id = queues[worker].popleft()
        else:
            victim = max(range(self.jobs), key=lambda v: len(queues[v]))
            if not queues[victim]:
                return
            # steal from the tail of the most loaded sibling's queue
            chunk_id = queues[victim].pop()
            self.steals += 1
            self.per_worker_steals[worker] += 1
        self._task_qs[worker].put(("chunk", chunk_id, chunks[chunk_id]))

    def _merge_results(
        self, worker: int, results: Sequence[_SolvedEntry], elapsed: float
    ) -> None:
        self.busy_seconds[worker] += elapsed
        self.solved_by_worker[worker] += len(results)
        for bits, cost, choice, plans, divisions, shorts, reads in results:
            self.costs[bits] = cost
            self.choices[bits] = choice
            self.plans += plans
            self.divisions += divisions
            self.shorts += shorts
            self.reads += reads

    def _check_budget(self, tier: int) -> None:
        if self.budget is not None:
            self.budget.check_cancelled(phase="optimize")
        if self.deadline is not None and self.deadline.expired:
            raise _TierExpired(tiers_done=tier - 1)

    def _check_liveness(self) -> None:
        for index, process in enumerate(self._procs):
            if not process.is_alive():
                raise RuntimeError(
                    f"memo-shard worker {index} died unexpectedly "
                    f"(exit code {process.exitcode})"
                )

    # -- results --------------------------------------------------------
    def reconstruct(self, bits: int, cache: Dict[int, PlanNode]) -> PlanNode:
        """Rebuild the plan for *bits* from the recorded choices.

        Uses the driver's own builder, so the float arithmetic — and
        therefore the plan cost — is exactly what the serial search
        would have produced for the same choices.
        """
        plan = cache.get(bits)
        if plan is not None:
            return plan
        choice = self.choices[bits]
        if choice[0] == "s":
            plan = self.builder.scan(choice[1])
        elif choice[0] == "l":
            plan = self.builder.local_join_plan(bits)
        else:
            _, operator, parts, variable = choice
            children = [self.reconstruct(part, cache) for part in parts]
            plan = self.builder.join(operator, children, variable)
        cache[bits] = plan
        return plan

    def degraded_plan(self, tiers_done: int) -> Tuple[PlanNode, str, str]:
        """A complete plan from the finished tiers (anytime expiry).

        Greedily covers the query with the largest solved entries
        (disjoint, deterministic tie-break by bitset); the singleton
        tier is always solved, so a cover always exists.  The cover's
        memoized plans are then merged by the greedy fallback planner
        (binary repartition joins), so the result is complete,
        Cartesian-product-free, and verifier-clean.
        """
        full = self.builder.join_graph.full
        remaining = full
        cover: List[int] = []
        for bits in sorted(self.costs, key=lambda b: (-bs.popcount(b), b)):
            if bits & remaining == bits:
                cover.append(bits)
                remaining &= ~bits
                if not remaining:
                    break
        cache: Dict[int, PlanNode] = {}
        frontier = [self.reconstruct(bits, cache) for bits in cover]
        if len(frontier) == 1:
            plan = frontier[0]
        else:
            plan = greedy_fallback_plan(self.builder, frontier=frontier)
        total_tiers = self.builder.join_graph.size
        reason = (
            f"deadline: merged {len(cover)} sharded plans from "
            f"{tiers_done}/{total_tiers} finished tiers"
        )
        label = f"{self.probe.algorithm_name}[parallel x{self.jobs}][anytime]"
        return plan, label, reason

    def stats(self, wall_seconds: float) -> EnumerationStats:
        """Merged serial-equivalent counters plus scheduler telemetry.

        Counter identity with serial holds whenever the serial search
        expands the full connected-subquery space (every unpartitioned
        query); with partitioning + Rule 3 the tiers are a superset of
        the serial traversal (entries below local queries are priced as
        flat local plans the serial search never requests), so
        ``subqueries_expanded`` / ``plans_considered`` may exceed the
        serial counts there.  ``memo_hits`` is reconstructed from child
        cost reads: the serial traversal performs one ``get_best_plan``
        per child reference plus one for the root, and misses exactly
        once per entry.
        """
        singletons = len(self.tiers[1])
        solved = singletons + sum(self.solved_by_worker)
        started = [s for s in self.worker_started if s is not None]
        startup = 0.0
        if started:
            startup = max(0.0, min(started) - self.spawn_started)
        startup = min(startup, wall_seconds)
        search_wall = max(wall_seconds - startup, 1e-9)
        max_share = max(self.solved_by_worker) if self.solved_by_worker else 0
        min_share = min(self.solved_by_worker) if self.solved_by_worker else 0
        return EnumerationStats(
            plans_considered=self.plans,
            divisions_enumerated=self.divisions,
            subqueries_expanded=solved,
            memo_hits=max(0, self.reads + 1 - solved),
            local_short_circuits=self.shorts,
            workers=self.jobs,
            per_worker_subqueries=list(self.solved_by_worker),
            per_worker_seconds=list(self.busy_seconds),
            speedup=sum(self.busy_seconds) / search_wall,
            steals=self.steals,
            per_worker_steals=list(self.per_worker_steals),
            worker_balance=(min_share / max_share) if max_share else 0.0,
            pool_startup_seconds=startup,
        )

    def adopt_traces(self, parallel_span: Any, dispatch_at: float) -> None:
        if self.tracer is None:
            return
        parent = parallel_span if isinstance(parallel_span, Span) else None
        for index in range(self.jobs):
            payload = self.traces.get(index)
            if payload is not None:
                self.tracer.adopt(
                    payload,
                    track=f"worker-{index}",
                    parent=parent,
                    rebase_to=dispatch_at,
                )


def optimize_memo_sharded(
    query: Any,
    key: str,
    jobs: int,
    statistics: Any,
    partitioning: Any,
    parameters: Any,
    builder: Any,
    probe: Any,
    budget: Optional[QueryBudget],
    deadline_remaining: Optional[float],
    anytime: bool,
    started: float,
) -> Optional[OptimizationResult]:
    """Run the memo-sharded search; ``None`` means "fall back to serial".

    The caller (:func:`repro.core.parallel.optimize_query_parallel`)
    has already handled the degenerate cases shared with root-slicing
    (unsupported algorithm, disconnected query, Rule-3 root answer);
    this function additionally declines queries whose connected-subquery
    space is too small to shard profitably.
    """
    join_graph = builder.join_graph
    tiers = subquery_tiers(join_graph)
    non_singleton = sum(len(tier) for tier in tiers[2:])
    widest = max((len(tier) for tier in tiers[2:]), default=0)
    jobs = max(1, min(jobs, widest))
    if non_singleton < _MIN_ENTRIES or jobs <= 1:
        return None
    driver = _ShardDriver(
        query,
        key,
        jobs,
        statistics,
        partitioning,
        parameters,
        builder,
        probe,
        tiers,
        budget,
        deadline_remaining,
        anytime,
    )
    label = f"{probe.algorithm_name}[parallel x{jobs}]"
    degraded_reason = ""
    with obs.span(
        "parallel.search",
        strategy="memo-shard",
        jobs=jobs,
        algorithm=key,
        tiers=join_graph.size,
        entries=len(tiers[1]) + non_singleton,
    ) as parallel_span:
        dispatch_at = driver.tracer.now() if driver.tracer is not None else 0.0
        driver.start()
        graceful = True
        try:
            try:
                driver.run()
                plan = driver.reconstruct(join_graph.full, {})
            except _TierExpired as expiry:
                if not anytime:
                    seconds = (
                        driver.deadline.seconds
                        if driver.deadline is not None
                        else 0.0
                    )
                    raise OptimizationTimeout(
                        f"{probe.algorithm_name} exceeded {seconds:.0f}s"
                    ) from None
                plan, label, degraded_reason = driver.degraded_plan(
                    expiry.tiers_done
                )
            except BaseException:
                graceful = False
                raise
        finally:
            driver.shutdown(graceful)
        wall = time.perf_counter() - driver.spawn_started
        driver.adopt_traces(parallel_span, dispatch_at)
        parallel_span.set(wall_seconds=wall, steals=driver.steals)
    stats = driver.stats(wall)
    if degraded_reason:
        stats.degraded = True
        stats.degradation_reason = degraded_reason
        obs.event("governance.degraded", algorithm=label, reason=degraded_reason)
        obs.count("governance.anytime_plans")
    obs.count("parallel.steals", driver.steals)
    obs.gauge("parallel.worker_balance", stats.worker_balance)
    stats.flush_to_metrics()
    return OptimizationResult(
        plan=plan,
        algorithm=label,
        stats=stats,
        elapsed_seconds=time.perf_counter() - started,
    )
