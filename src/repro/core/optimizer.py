"""The public optimizer facade.

:func:`optimize` wires a query, its statistics, a partitioning method,
and the cost model into the chosen algorithm and returns an
:class:`~repro.core.enumeration.OptimizationResult`.  This is the entry
point the examples, tests, and benchmarks use::

    from repro import optimize, parse_query
    result = optimize(parse_query(text), algorithm="td-auto")
    print(result.plan.describe())

Since the session-API redesign, :func:`optimize` is a thin shim over
:class:`repro.core.session.Optimizer`: every call builds a one-shot
session from its keywords.  Prefer the session API for anything that
holds state across calls (plan cache, parallel jobs, verification,
tracing)::

    from repro import OptimizeOptions, Optimizer
    session = Optimizer(OptimizeOptions(algorithm="td-auto", trace=True))
    result = session.optimize(parse_query(text))

The helpers :func:`resolve_statistics` and :func:`make_builder` remain
here — they are the shared plumbing both the session and the parallel
search drivers use.
"""

from __future__ import annotations

import random
import warnings
from typing import Dict, Optional

from ..partitioning.base import PartitioningMethod
from ..rdf.dataset import Dataset
from ..sparql.ast import BGPQuery
from .auto import AutonomousOptimizer
from .cardinality import CardinalityEstimator, StatisticsCatalog
from .cost import CostParameters, PAPER_PARAMETERS, PlanBuilder
from .enumeration import OptimizationResult, TopDownEnumerator
from .join_graph import JoinGraph
from .plan_cache import PlanCache
from .pruning import PrunedTopDownEnumerator
from .reduction import ReductionOptimizer

ALGORITHMS: Dict[str, type] = {
    "td-cmd": TopDownEnumerator,
    "td-cmdp": PrunedTopDownEnumerator,
    "hgr-td-cmd": ReductionOptimizer,
    "td-auto": AutonomousOptimizer,
}

#: algorithms whose root division space the intra-query parallel search
#: can split across workers (see :mod:`.parallel`)
PARALLELIZABLE_ALGORITHMS = ("td-cmd", "td-cmdp")


def resolve_statistics(
    query: BGPQuery,
    statistics: Optional[StatisticsCatalog] = None,
    dataset: Optional[Dataset] = None,
    seed: int = 0,
) -> StatisticsCatalog:
    """Resolve the statistics source for one query.

    Resolution order: explicit catalog > dataset-derived > random (the
    paper's synthetic-statistics mode, seeded for reproducibility).
    """
    if statistics is not None:
        return statistics
    if dataset is not None:
        return StatisticsCatalog.from_dataset(query, dataset)
    return StatisticsCatalog.from_random(query, random.Random(seed))


def make_builder(
    query: BGPQuery,
    statistics: Optional[StatisticsCatalog] = None,
    dataset: Optional[Dataset] = None,
    parameters: CostParameters = PAPER_PARAMETERS,
    seed: int = 0,
) -> PlanBuilder:
    """Assemble the (join graph, estimator, cost) triple for a query.

    Statistics are resolved via :func:`resolve_statistics`.
    """
    join_graph = JoinGraph(query)
    statistics = resolve_statistics(query, statistics, dataset, seed)
    estimator = CardinalityEstimator(join_graph, statistics)
    return PlanBuilder(join_graph, estimator, parameters)


def optimize(
    query: BGPQuery,
    algorithm: str = "td-auto",
    statistics: Optional[StatisticsCatalog] = None,
    dataset: Optional[Dataset] = None,
    partitioning: Optional[PartitioningMethod] = None,
    parameters: CostParameters = PAPER_PARAMETERS,
    timeout_seconds: Optional[float] = None,
    seed: int = 0,
    plan_cache: Optional[PlanCache] = None,
    jobs: int = 1,
    verify: bool = False,
) -> OptimizationResult:
    """Optimize a BGP query into a k-ary bushy plan.

    Back-compat shim: builds a one-shot
    :class:`~repro.core.session.Optimizer` session from these keywords.
    Every deprecated-kwarg path warns (once per process per path,
    behaviour unchanged either way): passing session state per call
    (``plan_cache`` / ``jobs`` / ``verify`` — the ballooning-signature
    path) points at the session API, and ``timeout_seconds`` — the
    pre-governance alias slated for removal in 2.0 — points at
    ``deadline_seconds``.

    Parameters
    ----------
    query:
        The parsed query.
    algorithm:
        ``"td-cmd"``, ``"td-cmdp"``, ``"hgr-td-cmd"``, or ``"td-auto"``
        (case-insensitive).
    statistics / dataset:
        Cardinality sources; see :func:`resolve_statistics`.
    partitioning:
        The data partitioning method; enables local-query detection.
        ``None`` means every multi-pattern subquery is distributed.
    parameters:
        Cost-model constants (defaults to the paper's Table II).
    timeout_seconds:
        DEPRECATED alias for the governance deadline (removed in 2.0);
        aborts with :class:`OptimizationTimeout` past this budget.
    plan_cache:
        A :class:`~repro.core.plan_cache.PlanCache`; a signature hit
        short-circuits enumeration entirely, and fresh results are
        stored for the next repetition.
    jobs:
        With ``jobs > 1`` and a parallelizable algorithm (``td-cmd`` /
        ``td-cmdp``), the root division space is split across worker
        processes (see :mod:`.parallel`); other algorithms run serially.
    verify:
        Run the plan-invariant verifier (:mod:`repro.analysis`) on
        every returned plan.  A fresh result that fails raises the
        violation; a *cached* plan that fails is invalidated and
        treated as a miss (the query is re-optimized and the fresh,
        verified plan replaces the corrupt entry).
    """
    # imported lazily: session.py imports this module's helpers
    from .session import OptimizeOptions, Optimizer

    global _shim_warned, _timeout_warned
    if (plan_cache is not None or jobs != 1 or verify) and not _shim_warned:
        _shim_warned = True
        warnings.warn(
            "passing session state (plan_cache/jobs/verify) to optimize() "
            "per call is deprecated; build an Optimizer session instead: "
            "Optimizer(OptimizeOptions(...)).optimize(query)",
            DeprecationWarning,
            stacklevel=2,
        )
    if timeout_seconds is not None and not _timeout_warned:
        _timeout_warned = True
        warnings.warn(
            "optimize(timeout_seconds=...) is deprecated and will be "
            "removed in 2.0; use deadline_seconds (same semantics, plus "
            "anytime=True for graceful degradation)",
            DeprecationWarning,
            stacklevel=2,
        )
    session = Optimizer(
        OptimizeOptions(
            algorithm=algorithm,
            statistics=statistics,
            dataset=dataset,
            partitioning=partitioning,
            parameters=parameters,
            # mapped straight to the governance deadline after the
            # facade's own deprecation warning above (the warning names
            # this call path; OptimizeOptions.timeout_seconds has its
            # own, so the fold must not pass timeout_seconds through)
            deadline_seconds=timeout_seconds,
            seed=seed,
            plan_cache=plan_cache,
            jobs=jobs,
            verify=verify,
        )
    )
    return session.optimize(query)


#: one DeprecationWarning per process for the ballooning-signature path
_shim_warned = False
#: one DeprecationWarning per process for the facade's timeout alias
_timeout_warned = False
