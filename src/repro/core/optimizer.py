"""The public optimizer facade.

:func:`optimize` wires a query, its statistics, a partitioning method,
and the cost model into the chosen algorithm and returns an
:class:`~repro.core.enumeration.OptimizationResult`.  This is the entry
point the examples, tests, and benchmarks use::

    from repro import optimize, parse_query
    result = optimize(parse_query(text), algorithm="td-auto")
    print(result.plan.describe())
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..partitioning.base import PartitioningMethod
from ..rdf.dataset import Dataset
from ..sparql.ast import BGPQuery
from .auto import AutonomousOptimizer
from .cardinality import CardinalityEstimator, StatisticsCatalog
from .cost import CostParameters, PAPER_PARAMETERS, PlanBuilder
from .enumeration import OptimizationResult, TopDownEnumerator
from .join_graph import JoinGraph
from .local_query import LocalQueryIndex
from .pruning import PrunedTopDownEnumerator
from .reduction import ReductionOptimizer

ALGORITHMS: Dict[str, type] = {
    "td-cmd": TopDownEnumerator,
    "td-cmdp": PrunedTopDownEnumerator,
    "hgr-td-cmd": ReductionOptimizer,
    "td-auto": AutonomousOptimizer,
}


def make_builder(
    query: BGPQuery,
    statistics: Optional[StatisticsCatalog] = None,
    dataset: Optional[Dataset] = None,
    parameters: CostParameters = PAPER_PARAMETERS,
    seed: int = 0,
) -> PlanBuilder:
    """Assemble the (join graph, estimator, cost) triple for a query.

    Statistics resolution order: explicit catalog > dataset-derived >
    random (the paper's synthetic-statistics mode, seeded for
    reproducibility).
    """
    join_graph = JoinGraph(query)
    if statistics is None:
        if dataset is not None:
            statistics = StatisticsCatalog.from_dataset(query, dataset)
        else:
            statistics = StatisticsCatalog.from_random(query, random.Random(seed))
    estimator = CardinalityEstimator(join_graph, statistics)
    return PlanBuilder(join_graph, estimator, parameters)


def optimize(
    query: BGPQuery,
    algorithm: str = "td-auto",
    statistics: Optional[StatisticsCatalog] = None,
    dataset: Optional[Dataset] = None,
    partitioning: Optional[PartitioningMethod] = None,
    parameters: CostParameters = PAPER_PARAMETERS,
    timeout_seconds: Optional[float] = None,
    seed: int = 0,
) -> OptimizationResult:
    """Optimize a BGP query into a k-ary bushy plan.

    Parameters
    ----------
    query:
        The parsed query.
    algorithm:
        ``"td-cmd"``, ``"td-cmdp"``, ``"hgr-td-cmd"``, or ``"td-auto"``
        (case-insensitive).
    statistics / dataset:
        Cardinality sources; see :func:`make_builder`.
    partitioning:
        The data partitioning method; enables local-query detection.
        ``None`` means every multi-pattern subquery is distributed.
    parameters:
        Cost-model constants (defaults to the paper's Table II).
    timeout_seconds:
        Abort with :class:`OptimizationTimeout` past this budget.
    """
    key = algorithm.lower()
    if key not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        )
    builder = make_builder(query, statistics, dataset, parameters, seed)
    local_index = LocalQueryIndex(builder.join_graph, partitioning)
    implementation = ALGORITHMS[key](
        builder.join_graph,
        builder,
        local_index=local_index,
        timeout_seconds=timeout_seconds,
    )
    return implementation.optimize()
