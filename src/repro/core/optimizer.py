"""The public optimizer facade.

:func:`optimize` wires a query, its statistics, a partitioning method,
and the cost model into the chosen algorithm and returns an
:class:`~repro.core.enumeration.OptimizationResult`.  This is the entry
point the examples, tests, and benchmarks use::

    from repro import optimize, parse_query
    result = optimize(parse_query(text), algorithm="td-auto")
    print(result.plan.describe())
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..partitioning.base import PartitioningMethod
from ..rdf.dataset import Dataset
from ..sparql.ast import BGPQuery
from .auto import AutonomousOptimizer
from .cardinality import CardinalityEstimator, StatisticsCatalog
from .cost import CostParameters, PAPER_PARAMETERS, PlanBuilder
from .enumeration import OptimizationResult, TopDownEnumerator
from .join_graph import JoinGraph
from .local_query import LocalQueryIndex
from .plan_cache import PlanCache
from .pruning import PrunedTopDownEnumerator
from .reduction import ReductionOptimizer

ALGORITHMS: Dict[str, type] = {
    "td-cmd": TopDownEnumerator,
    "td-cmdp": PrunedTopDownEnumerator,
    "hgr-td-cmd": ReductionOptimizer,
    "td-auto": AutonomousOptimizer,
}

#: algorithms whose root division space the intra-query parallel search
#: can split across workers (see :mod:`.parallel`)
PARALLELIZABLE_ALGORITHMS = ("td-cmd", "td-cmdp")


def resolve_statistics(
    query: BGPQuery,
    statistics: Optional[StatisticsCatalog] = None,
    dataset: Optional[Dataset] = None,
    seed: int = 0,
) -> StatisticsCatalog:
    """Resolve the statistics source for one query.

    Resolution order: explicit catalog > dataset-derived > random (the
    paper's synthetic-statistics mode, seeded for reproducibility).
    """
    if statistics is not None:
        return statistics
    if dataset is not None:
        return StatisticsCatalog.from_dataset(query, dataset)
    return StatisticsCatalog.from_random(query, random.Random(seed))


def make_builder(
    query: BGPQuery,
    statistics: Optional[StatisticsCatalog] = None,
    dataset: Optional[Dataset] = None,
    parameters: CostParameters = PAPER_PARAMETERS,
    seed: int = 0,
) -> PlanBuilder:
    """Assemble the (join graph, estimator, cost) triple for a query.

    Statistics are resolved via :func:`resolve_statistics`.
    """
    join_graph = JoinGraph(query)
    statistics = resolve_statistics(query, statistics, dataset, seed)
    estimator = CardinalityEstimator(join_graph, statistics)
    return PlanBuilder(join_graph, estimator, parameters)


def optimize(
    query: BGPQuery,
    algorithm: str = "td-auto",
    statistics: Optional[StatisticsCatalog] = None,
    dataset: Optional[Dataset] = None,
    partitioning: Optional[PartitioningMethod] = None,
    parameters: CostParameters = PAPER_PARAMETERS,
    timeout_seconds: Optional[float] = None,
    seed: int = 0,
    plan_cache: Optional[PlanCache] = None,
    jobs: int = 1,
    verify: bool = False,
) -> OptimizationResult:
    """Optimize a BGP query into a k-ary bushy plan.

    Parameters
    ----------
    query:
        The parsed query.
    algorithm:
        ``"td-cmd"``, ``"td-cmdp"``, ``"hgr-td-cmd"``, or ``"td-auto"``
        (case-insensitive).
    statistics / dataset:
        Cardinality sources; see :func:`resolve_statistics`.
    partitioning:
        The data partitioning method; enables local-query detection.
        ``None`` means every multi-pattern subquery is distributed.
    parameters:
        Cost-model constants (defaults to the paper's Table II).
    timeout_seconds:
        Abort with :class:`OptimizationTimeout` past this budget.
    plan_cache:
        A :class:`~repro.core.plan_cache.PlanCache`; a signature hit
        short-circuits enumeration entirely, and fresh results are
        stored for the next repetition.
    jobs:
        With ``jobs > 1`` and a parallelizable algorithm (``td-cmd`` /
        ``td-cmdp``), the root division space is split across worker
        processes (see :mod:`.parallel`); other algorithms run serially.
    verify:
        Run the plan-invariant verifier (:mod:`repro.analysis`) on
        every returned plan.  A fresh result that fails raises the
        violation; a *cached* plan that fails is invalidated and
        treated as a miss (the query is re-optimized and the fresh,
        verified plan replaces the corrupt entry).
    """
    key = algorithm.lower()
    if key not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        )
    statistics = resolve_statistics(query, statistics, dataset, seed)
    context = None
    if verify:
        # imported lazily: repro.analysis depends on this module
        from ..analysis import VerificationContext

        context = VerificationContext.for_query(
            query,
            statistics=statistics,
            partitioning=partitioning,
            parameters=parameters,
            seed=seed,
        )
    if plan_cache is not None:
        cached = plan_cache.lookup(query, statistics, key, parameters, partitioning)
        if cached is not None:
            if context is None:
                return cached
            from ..analysis import verify_result

            if verify_result(cached, context).ok:
                return cached
            # corrupt rebuild: drop the entry and fall through to a
            # fresh optimization, exactly as if the lookup had missed
            plan_cache.invalidate(query, statistics, key, parameters, partitioning)
    if jobs > 1 and key in PARALLELIZABLE_ALGORITHMS:
        from .parallel import optimize_query_parallel

        result = optimize_query_parallel(
            query,
            algorithm=key,
            jobs=jobs,
            statistics=statistics,
            partitioning=partitioning,
            parameters=parameters,
            timeout_seconds=timeout_seconds,
        )
    else:
        builder = make_builder(query, statistics, parameters=parameters)
        local_index = LocalQueryIndex(builder.join_graph, partitioning)
        implementation = ALGORITHMS[key](
            builder.join_graph,
            builder,
            local_index=local_index,
            timeout_seconds=timeout_seconds,
        )
        result = implementation.optimize()
    if context is not None:
        from ..analysis import verify_result

        verify_result(result, context).raise_if_failed()
    if plan_cache is not None:
        plan_cache.store(query, statistics, key, result, parameters, partitioning)
    return result
