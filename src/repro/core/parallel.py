"""Throughput-oriented parallel plan search (process-pool based).

Two complementary parallelization layers, following Trummer & Koch's
observation that query-optimization search spaces split cleanly across
shared-nothing workers:

* **Inter-query** — :func:`optimize_many` drives a *batch* of
  independent optimization calls through a process pool.  This is the
  server scenario: a stream of queries arrives and each worker runs the
  ordinary serial algorithm, so per-query results (plan, cost, stats)
  are bit-identical to serial execution by construction.

* **Intra-query** — :func:`optimize_query_parallel` parallelizes a
  single TD-CMD / TD-CMDP search.  Two strategies
  (:data:`PARALLEL_STRATEGIES`):

  * ``"memo-shard"`` (the default) — the full DP memo is partitioned
    into popcount tiers and scheduled across a persistent worker pool
    with per-tier work queues and work stealing; see
    :mod:`.memo_shard`.  Every DP subproblem is solved exactly once,
    so the work scales down with the worker count.
  * ``"root-slice"`` — the original scheme: the *root-level*
    connected-multi-division space is split round-robin across
    workers, each running a full memoized sub-search restricted to its
    root slice; the driver picks the cheapest root candidate.  Simple,
    but every worker re-solves almost the whole lower memo.

  Because every candidate's cost is computed by the same arithmetic in
  every worker, the merged plan cost is bit-identical to the serial
  search under both strategies.

Merged :class:`~repro.core.enumeration.EnumerationStats` reconstruct the
serial counters exactly: workers report *exclusive* per-subquery
records (see :class:`~repro.core.enumeration.SubqueryRecord`), which the
driver deduplicates by subquery bitset — a subquery expanded by several
workers is counted once, exactly as the serial memo table would.  The
lone exception is ``memo_hits``, which is inherently a property of the
traversal (it is summed across workers and documented as such).
Worker counts, per-worker subquery counts/wall times, and the achieved
speedup are recorded in the merged stats.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as wait_futures
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..observability import runtime as obs
from ..observability.spans import Span, Tracer
from ..partitioning.base import PartitioningMethod
from ..rdf.dataset import Dataset
from ..rdf.terms import Variable
from ..sparql.ast import BGPQuery
from .cardinality import StatisticsCatalog
from .cost import CostParameters, PAPER_PARAMETERS
from .enumeration import (
    CartesianProductError,
    EnumerationStats,
    OptimizationResult,
    SubqueryRecord,
    TopDownEnumerator,
)
from .governance import (
    AbortCause,
    CancellationToken,
    Deadline,
    QueryAborted,
    QueryBudget,
)
from .local_query import LocalQueryIndex
from .optimizer import (
    PARALLELIZABLE_ALGORITHMS,
    make_builder,
    optimize,
    resolve_statistics,
)
from .plan_cache import PlanCache
from .plans import JoinAlgorithm
from .pruning import PrunedTopDownEnumerator

#: how often the driver polls the cancellation token while a pool runs
_CANCEL_POLL_SECONDS = 0.05

#: one optimization request: a query, optionally paired with statistics
#: (tuples and objects with ``query``/``statistics`` attributes, e.g.
#: :class:`~repro.workloads.generators.WorkloadQuery`, are accepted)
RequestLike = Union[BGPQuery, Tuple[BGPQuery, Optional[StatisticsCatalog]], Any]


#: supported intra-query parallel search strategies
PARALLEL_STRATEGIES = ("memo-shard", "root-slice")


def default_jobs() -> int:
    """Worker-count default: ``REPRO_JOBS`` if set, else available CPUs.

    The environment override pins worker counts in CI, so benchmark
    baselines and chaos episodes do not vary with runner core count.
    """
    override = os.environ.get("REPRO_JOBS")
    if override:
        try:
            value = int(override)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {override!r}"
            ) from None
        return max(1, value)
    try:
        return len(os.sched_getaffinity(0))  # type: ignore[attr-defined]
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# intra-query parallel search
# ----------------------------------------------------------------------
class _RootSliceMixin:
    """Restrict the root division space to a round-robin slice.

    Non-root subqueries see the unrestricted division space, so their
    exclusive stats records stay bit-identical to the serial search.
    """

    slice_index: int = 0
    slice_count: int = 1

    def divisions(
        self, bits: int
    ) -> Iterator[Tuple[Tuple[int, ...], Variable, Sequence[JoinAlgorithm]]]:
        iterator = super().divisions(bits)  # type: ignore[misc]
        if bits != self.join_graph.full or self.slice_count <= 1:
            yield from iterator
            return
        for i, division in enumerate(iterator):
            if i % self.slice_count == self.slice_index:
                yield division


class _SlicedTopDown(_RootSliceMixin, TopDownEnumerator):
    pass


class _SlicedPrunedTopDown(_RootSliceMixin, PrunedTopDownEnumerator):
    pass


_SLICED = {"td-cmd": _SlicedTopDown, "td-cmdp": _SlicedPrunedTopDown}
_SERIAL = {"td-cmd": TopDownEnumerator, "td-cmdp": PrunedTopDownEnumerator}


#: Version stamp on every worker outcome dict.  Bump whenever the
#: outcome schema changes shape or meaning; the merge refuses mixed
#: versions instead of silently skewing counters (a real hazard when a
#: stale pool process built from an older module survives a reload).
_PAYLOAD_SCHEMA_VERSION = 1


def _intra_query_worker(payload: Tuple[Any, ...]) -> Dict[str, Any]:
    """Run one root-slice sub-search (executed inside a pool process).

    When the driver traces, the worker builds a private
    :class:`~repro.observability.spans.Tracer`, activates it for the
    sub-search, and ships it back serialized in the outcome; the driver
    adopts it onto a ``worker-N`` track (deterministic id remapping).
    """
    (
        query,
        statistics,
        algorithm_key,
        partitioning,
        parameters,
        deadline_remaining,
        anytime,
        slice_index,
        slice_count,
        trace,
    ) = payload
    builder = make_builder(query, statistics, parameters=parameters)
    local_index = LocalQueryIndex(builder.join_graph, partitioning)
    # deadlines do not cross process boundaries (clocks are not
    # picklable); the driver ships the *remaining* seconds and each
    # worker re-anchors them on its own monotonic clock
    budget: Optional[QueryBudget] = None
    if deadline_remaining is not None or anytime:
        budget = QueryBudget(
            deadline=(
                Deadline.after(deadline_remaining)
                if deadline_remaining is not None
                else None
            ),
            anytime=anytime,
            query_id=query.name or "",
        )
    enumerator = _SLICED[algorithm_key](
        builder.join_graph,
        builder,
        local_index=local_index,
        budget=budget,
    )
    enumerator.slice_index = slice_index
    enumerator.slice_count = slice_count
    tracer = Tracer(track=f"worker-{slice_index}") if trace else None
    # perf_counter is system-wide monotonic on Linux, so the driver can
    # subtract its own spawn timestamp to measure pool startup; clamped
    # to [0, wall] driver-side in case a platform scopes it per process
    started = time.perf_counter()
    if tracer is not None:
        with obs.activate(tracer):
            with tracer.span(
                "worker", slice_index=slice_index, slice_count=slice_count
            ):
                result = enumerator.optimize()
    else:
        result = enumerator.optimize()
    elapsed = time.perf_counter() - started
    full = builder.join_graph.full
    # an anytime deadline can expire before the root's record exists
    root_record = enumerator.subquery_records.pop(full, SubqueryRecord())
    return {
        "schema": _PAYLOAD_SCHEMA_VERSION,
        "plan": result.plan,
        "cost": result.plan.cost,
        "records": enumerator.subquery_records,
        "root_record": root_record,
        "memo_hits": result.stats.memo_hits,
        "subqueries": result.stats.subqueries_expanded,
        "elapsed": elapsed,
        "started_at": started,
        "degraded": result.stats.degraded,
        "degradation_reason": result.stats.degradation_reason,
        "trace": tracer.to_payload() if tracer is not None else None,
    }


def _merge_worker_stats(
    outcomes: List[Dict[str, Any]],
    root_is_local: bool,
    wall_seconds: float,
    startup_seconds: float = 0.0,
) -> EnumerationStats:
    """Rebuild serial-equivalent counters from per-worker records.

    Non-root subqueries are deduplicated by bitset (each worker's
    exclusive record for a bitset is identical, because the candidate
    set is a function of the bitset alone).  Root records cover disjoint
    division slices and are summed — minus the flat local seed plan,
    which every worker prices but the serial search prices once.

    ``speedup`` divides the summed worker seconds by the wall time
    *minus pool spin-up* (*startup_seconds*): process forking is a
    fixed platform cost, and charging it to the search systematically
    understated small-query speedups.
    """
    versions = {o.get("schema") for o in outcomes}
    if versions - {_PAYLOAD_SCHEMA_VERSION}:
        raise RuntimeError(
            f"worker outcome schema mismatch: driver expects version "
            f"{_PAYLOAD_SCHEMA_VERSION}, workers sent {sorted(versions, key=str)} "
            f"— refusing to merge (counters would silently skew); restart "
            f"the pool so every worker runs the same code"
        )
    records: Dict[int, SubqueryRecord] = {}
    for outcome in outcomes:
        for bits, record in outcome["records"].items():
            records.setdefault(bits, record)
    plans = sum(r.plans_considered for r in records.values())
    divisions = sum(r.divisions_enumerated for r in records.values())
    shorts = sum(r.local_short_circuits for r in records.values())
    root_plans = sum(o["root_record"].plans_considered for o in outcomes)
    if root_is_local:
        root_plans -= len(outcomes) - 1
    root_divisions = sum(o["root_record"].divisions_enumerated for o in outcomes)
    worker_seconds = [o["elapsed"] for o in outcomes]
    startup = min(max(0.0, startup_seconds), wall_seconds)
    search_wall = wall_seconds - startup
    shares = [o["subqueries"] for o in outcomes]
    return EnumerationStats(
        plans_considered=plans + root_plans,
        divisions_enumerated=divisions + root_divisions,
        subqueries_expanded=len(records) + 1,
        memo_hits=sum(o["memo_hits"] for o in outcomes),
        local_short_circuits=shorts,
        workers=len(outcomes),
        per_worker_subqueries=shares,
        per_worker_seconds=worker_seconds,
        speedup=(sum(worker_seconds) / search_wall) if search_wall > 0 else 0.0,
        worker_balance=(min(shares) / max(shares)) if max(shares, default=0) else 0.0,
        pool_startup_seconds=startup,
    )


def _run_cancellable(
    payloads: Sequence[tuple],
    worker: Any,
    max_workers: int,
    cancellation: CancellationToken,
    query_id: str = "",
) -> List[Any]:
    """Drive *worker* over *payloads*, polling a driver-side cancel token.

    Tokens do not cross process boundaries, so cancellation is enforced
    here: between completions the driver re-checks the token and, once
    it fires, abandons the pool (``shutdown(wait=False)`` — queued work
    is cancelled, running workers are orphaned rather than joined) so
    the abort surfaces within one poll interval.  Results come back in
    payload order.
    """
    pool = ProcessPoolExecutor(max_workers=max_workers)
    try:
        futures = [pool.submit(worker, payload) for payload in payloads]
        not_done = set(futures)
        while not_done:
            done, not_done = wait_futures(
                not_done,
                timeout=_CANCEL_POLL_SECONDS,
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                future.result()  # surface worker errors promptly
            if cancellation.cancelled and not_done:
                reason = cancellation.reason
                raise QueryAborted(
                    f"cancelled: {reason}" if reason else "cancelled",
                    cause=AbortCause.CANCELLED,
                    query_id=query_id,
                    phase="optimize",
                )
        return [future.result() for future in futures]
    finally:
        # wait=False: a cancelled pool must not join still-running workers
        pool.shutdown(wait=False, cancel_futures=True)


def optimize_query_parallel(
    query: BGPQuery,
    algorithm: str = "td-cmd",
    jobs: int = 2,
    statistics: Optional[StatisticsCatalog] = None,
    dataset: Optional[Dataset] = None,
    partitioning: Optional[PartitioningMethod] = None,
    parameters: CostParameters = PAPER_PARAMETERS,
    timeout_seconds: Optional[float] = None,
    seed: int = 0,
    budget: Optional[QueryBudget] = None,
    strategy: str = "memo-shard",
) -> OptimizationResult:
    """Optimize one query with the DP search split across workers.

    Only ``td-cmd`` and ``td-cmdp`` are supported — their search is
    driven entirely by the ``divisions`` hook and the memo table, which
    is what gets sharded or sliced (see :data:`PARALLEL_STRATEGIES` and
    the module docstring for the two schemes).  Plan cost is identical
    to the serial search under both strategies; degenerate cases (one
    job, a search space too small to shard, or a Rule-3 local
    short-circuit at the root) transparently fall back to the serial
    path.

    With a *budget*, the remaining deadline allowance and the anytime
    flag travel to every worker (re-anchored on the worker's clock);
    the cancellation token stays driver-side — the driver polls it
    while the pool runs and abandons it on cancel, since tokens do not
    cross process boundaries.  Under ``memo-shard`` an expiring anytime
    deadline yields a complete plan merged from the finished tiers;
    under ``root-slice`` any worker degrading marks the merged result
    degraded.
    """
    key = algorithm.lower()
    if key not in PARALLELIZABLE_ALGORITHMS:
        raise ValueError(
            f"intra-query parallel search supports {PARALLELIZABLE_ALGORITHMS}, "
            f"not {algorithm!r}"
        )
    if strategy not in PARALLEL_STRATEGIES:
        raise ValueError(
            f"unknown parallel strategy {strategy!r}; "
            f"expected one of {PARALLEL_STRATEGIES}"
        )
    started = time.perf_counter()
    if budget is not None:
        budget.check_cancelled(phase="optimize")
    statistics = resolve_statistics(query, statistics, dataset, seed)
    builder = make_builder(query, statistics, parameters=parameters)
    join_graph = builder.join_graph
    if not join_graph.is_connected(join_graph.full):
        raise CartesianProductError(
            "query is disconnected; Cartesian-product-free plans do not exist"
        )
    local_index = LocalQueryIndex(join_graph, partitioning)
    probe = _SERIAL[key](join_graph, builder, local_index=local_index)
    root_is_local = local_index.is_local(join_graph.full)

    def serial_fallback() -> OptimizationResult:
        if budget is None:
            return optimize(
                query,
                algorithm=key,
                statistics=statistics,
                partitioning=partitioning,
                parameters=parameters,
                timeout_seconds=timeout_seconds,
            )
        enumerator = _SERIAL[key](
            join_graph, builder, local_index=local_index, budget=budget
        )
        return enumerator.optimize()

    if root_is_local and probe.local_short_circuit:
        # Rule 3 answers the root immediately; nothing to parallelize
        return serial_fallback()
    if budget is not None and budget.deadline is not None:
        deadline_remaining: Optional[float] = budget.deadline.remaining()
    else:
        deadline_remaining = timeout_seconds
    anytime = budget.anytime if budget is not None else False
    if strategy == "memo-shard":
        from .memo_shard import optimize_memo_sharded

        result = optimize_memo_sharded(
            query,
            key,
            jobs,
            statistics,
            partitioning,
            parameters,
            builder,
            probe,
            budget,
            deadline_remaining,
            anytime,
            started,
        )
        if result is not None:
            return result
        return serial_fallback()
    # raw divisions: the probe pass only counts, and must not inflate
    # the `pruning.*` trace counters
    root_division_count = sum(1 for _ in probe.raw_divisions(join_graph.full))
    jobs = max(1, min(jobs, root_division_count))
    if jobs <= 1:
        return serial_fallback()
    tracer = obs.current_tracer()
    payloads = [
        (
            query,
            statistics,
            key,
            partitioning,
            parameters,
            deadline_remaining,
            anytime,
            index,
            jobs,
            tracer is not None,
        )
        for index in range(jobs)
    ]
    with obs.span(
        "parallel.search",
        strategy="root-slice",
        jobs=jobs,
        algorithm=key,
        root_divisions=root_division_count,
    ) as parallel_span:
        dispatch_at = tracer.now() if tracer is not None else 0.0
        spawn_started = time.perf_counter()
        cancellation = budget.cancellation if budget is not None else None
        if cancellation is None:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(pool.map(_intra_query_worker, payloads))
        else:
            outcomes = _run_cancellable(
                payloads,
                _intra_query_worker,
                jobs,
                cancellation,
                query_id=budget.query_id if budget is not None else "",
            )
        wall = time.perf_counter() - spawn_started
        if tracer is not None:
            parent = parallel_span if isinstance(parallel_span, Span) else None
            for index, outcome in enumerate(outcomes):
                worker_trace = outcome.get("trace")
                if worker_trace is not None:
                    tracer.adopt(
                        worker_trace,
                        track=f"worker-{index}",
                        parent=parent,
                        rebase_to=dispatch_at,
                    )
        parallel_span.set(wall_seconds=wall)
    # earliest worker entry timestamp bounds pool spin-up (fork + import)
    startup = max(0.0, min(o["started_at"] for o in outcomes) - spawn_started)
    best = min(enumerate(outcomes), key=lambda item: (item[1]["cost"], item[0]))[1]
    stats = _merge_worker_stats(outcomes, root_is_local, wall, startup)
    label = f"{probe.algorithm_name}[parallel x{jobs}]"
    degraded = [o for o in outcomes if o["degraded"]]
    if degraded:
        # any slice expiring means the merged search did not cover the
        # whole root space — the merged result is degraded as a whole
        stats.degraded = True
        stats.degradation_reason = degraded[0]["degradation_reason"]
        label += "[anytime]"
    return OptimizationResult(
        plan=best["plan"],
        algorithm=label,
        stats=stats,
        elapsed_seconds=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# inter-query (batch) parallel optimization
# ----------------------------------------------------------------------
def _normalize_request(
    item: RequestLike,
) -> Tuple[BGPQuery, Optional[StatisticsCatalog]]:
    """Accept a query, a (query, statistics) pair, or a workload record."""
    if isinstance(item, BGPQuery):
        return item, None
    if isinstance(item, tuple):
        query, statistics = item
        return query, statistics
    query = getattr(item, "query", None)
    if isinstance(query, BGPQuery):
        return query, getattr(item, "statistics", None)
    raise TypeError(
        f"cannot interpret {type(item).__name__} as an optimization request"
    )


def _batch_worker(payload: Tuple[Any, ...]) -> OptimizationResult:
    """Optimize one query serially (executed inside a pool process)."""
    query, statistics, algorithm, partitioning, parameters, timeout_seconds = payload
    return optimize(
        query,
        algorithm=algorithm,
        statistics=statistics,
        partitioning=partitioning,
        parameters=parameters,
        timeout_seconds=timeout_seconds,
    )


def optimize_many(
    items: Iterable[RequestLike],
    algorithm: str = "td-auto",
    jobs: Optional[int] = None,
    dataset: Optional[Dataset] = None,
    partitioning: Optional[PartitioningMethod] = None,
    parameters: CostParameters = PAPER_PARAMETERS,
    timeout_seconds: Optional[float] = None,
    seed: int = 0,
    plan_cache: Optional[PlanCache] = None,
    cancellation: Optional[CancellationToken] = None,
) -> List[OptimizationResult]:
    """Optimize a batch of queries across a process pool.

    Results are returned in input order.  Each query runs the ordinary
    serial :func:`~repro.core.optimizer.optimize` inside a worker, so
    every per-query result is identical to a serial call; the pool buys
    wall-clock throughput, not different answers.  Statistics are
    resolved in the driver (per item, then *dataset*, then the random
    seed) so workers never re-scan data.

    With *plan_cache* set, lookups happen in the driver before dispatch
    — repeated queries never reach the pool — and fresh results are
    stored on completion.  ``jobs`` defaults to the machine's available
    CPUs; ``jobs=1`` (or a batch of one) skips the pool entirely.

    A *cancellation* token stops the batch promptly: the serial path
    re-checks it before every query, and the pool path polls it between
    completions (see :func:`_run_cancellable`), raising
    :class:`QueryAborted` with :attr:`AbortCause.CANCELLED`.
    """
    requests = [_normalize_request(item) for item in items]
    resolved = [
        (query, resolve_statistics(query, statistics, dataset, seed))
        for query, statistics in requests
    ]
    algorithm = algorithm.lower()
    jobs = default_jobs() if jobs is None else max(1, jobs)
    results: List[Optional[OptimizationResult]] = [None] * len(resolved)
    pending: List[int] = []
    for index, (query, statistics) in enumerate(resolved):
        if plan_cache is not None:
            hit = plan_cache.lookup(
                query, statistics, algorithm, parameters, partitioning
            )
            if hit is not None:
                results[index] = hit
                continue
        pending.append(index)
    payloads = [
        (
            resolved[index][0],
            resolved[index][1],
            algorithm,
            partitioning,
            parameters,
            timeout_seconds,
        )
        for index in pending
    ]
    if jobs <= 1 or len(pending) <= 1:
        for index, payload in zip(pending, payloads):
            if cancellation is not None and cancellation.cancelled:
                reason = cancellation.reason
                raise QueryAborted(
                    f"cancelled: {reason}" if reason else "cancelled",
                    cause=AbortCause.CANCELLED,
                    query_id=resolved[index][0].name or "",
                    phase="optimize",
                )
            results[index] = _batch_worker(payload)
    elif cancellation is not None:
        workers = min(jobs, len(pending))
        for index, result in zip(
            pending, _run_cancellable(payloads, _batch_worker, workers, cancellation)
        ):
            results[index] = result
    else:
        workers = min(jobs, len(pending))
        chunksize = max(1, len(pending) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for index, result in zip(
                pending, pool.map(_batch_worker, payloads, chunksize=chunksize)
            ):
                results[index] = result
    if plan_cache is not None:
        for index in pending:
            query, statistics = resolved[index]
            plan_cache.store(
                query, statistics, algorithm, results[index], parameters, partitioning
            )
    return [result for result in results if result is not None]
