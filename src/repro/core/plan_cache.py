"""Cross-query plan cache keyed by a canonical join-graph signature.

A heavy query workload repeats itself: dashboards, templated API
endpoints, and benchmark drivers send the same BGP shapes with the same
statistics over and over, and every repetition pays full TD-CMD
enumeration.  PHD-Store-style systems amortize that by caching optimizer
output across queries; this module is that layer for the reproduction.

The cache key is a SHA-256 over a canonical form of everything the
optimizer's answer depends on:

* the triple patterns, with variables renamed by first appearance (so
  two queries identical up to variable naming share one entry),
* the per-pattern statistics fingerprint (cardinality plus the
  per-variable distinct-binding counts, canonically named),
* the algorithm, the cost-model parameters, and the partitioning method
  (partitioning changes local-query detection and therefore plans).

Entries store the winning plan in the :mod:`.serialize` wire format with
join variables canonicalized; a hit rebuilds the plan against the *new*
query object, mapping canonical variable ids back to the query's actual
variables, so downstream execution never sees foreign variable names.

Eviction is LRU with hit/miss/eviction counters, and the whole cache
round-trips through JSON so the CLI can keep it warm across processes.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..observability import runtime as obs
from ..partitioning.base import PartitioningMethod
from ..rdf.terms import Variable
from ..sparql.ast import BGPQuery
from .cardinality import StatisticsCatalog
from .cost import CostParameters, PAPER_PARAMETERS
from .enumeration import EnumerationStats, OptimizationResult
from .serialize import plan_from_dict, plan_to_dict


def canonical_variable_map(query: BGPQuery) -> Dict[str, str]:
    """Actual variable name → canonical id, by first appearance.

    Walking patterns in index order and positions in (s, p, o) order
    makes the mapping a pure function of query structure, so queries
    that differ only in variable naming collapse to one signature.
    """
    mapping: Dict[str, str] = {}
    for tp in query:
        for term in tp.terms():
            if isinstance(term, Variable) and term.name not in mapping:
                mapping[term.name] = f"v{len(mapping)}"
    return mapping


def query_signature(
    query: BGPQuery,
    statistics: StatisticsCatalog,
    algorithm: str,
    parameters: CostParameters = PAPER_PARAMETERS,
    partitioning: Optional[PartitioningMethod] = None,
) -> Tuple[str, Dict[str, str]]:
    """The cache key for one optimization call, plus the variable map.

    Returns ``(sha256 hex digest, actual→canonical variable mapping)``;
    the mapping is needed again to canonicalize or restore plans.
    """
    mapping = canonical_variable_map(query)
    patterns: List[Dict[str, Any]] = []
    for index, tp in enumerate(query):
        terms = [
            f"?{mapping[term.name]}" if isinstance(term, Variable) else str(term)
            for term in tp.terms()
        ]
        stats = statistics[index]
        bindings = sorted(
            (mapping[v.name], count) for v, count in stats.bindings.items()
        )
        patterns.append(
            {
                "terms": terms,
                "cardinality": stats.cardinality,
                "bindings": bindings,
            }
        )
    payload = {
        "algorithm": algorithm.lower(),
        "parameters": asdict(parameters),
        "partitioning": repr(partitioning) if partitioning is not None else None,
        "patterns": patterns,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest(), mapping


def _rename_plan(data: Dict[str, Any], rename: Dict[str, str]) -> Dict[str, Any]:
    """A copy of a serialized plan with join-variable names mapped."""
    out = dict(data)
    if out.get("kind") == "join":
        variable = out.get("join_variable")
        if variable is not None:
            out["join_variable"] = rename.get(variable, variable)
        out["children"] = [_rename_plan(child, rename) for child in data["children"]]
    return out


@dataclass
class PlanCacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: entries dropped because a rebuilt plan failed verification
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class PlanCache:
    """An LRU map from canonical query signatures to optimized plans."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self._capacity = capacity
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.stats = PlanCacheStats()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of entries before LRU eviction kicks in."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    # the optimizer-facing API
    # ------------------------------------------------------------------
    def lookup(
        self,
        query: BGPQuery,
        statistics: StatisticsCatalog,
        algorithm: str,
        parameters: CostParameters = PAPER_PARAMETERS,
        partitioning: Optional[PartitioningMethod] = None,
    ) -> Optional[OptimizationResult]:
        """Return the cached result for this call, or ``None`` on a miss.

        A hit rebuilds the stored plan against *query* (pattern objects
        and actual variable names restored) and returns a fresh
        :class:`OptimizationResult` whose ``elapsed_seconds`` measures
        only the lookup itself — that is the latency a repeated-query
        workload actually pays.
        """
        started = time.perf_counter()
        key, mapping = query_signature(
            query, statistics, algorithm, parameters, partitioning
        )
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            obs.event("plan_cache.lookup", hit=False, algorithm=algorithm)
            obs.count("plan_cache.misses")
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        entry["hits"] = int(entry.get("hits", 0)) + 1
        obs.event("plan_cache.lookup", hit=True, algorithm=algorithm)
        obs.count("plan_cache.hits")
        inverse = {canonical: actual for actual, canonical in mapping.items()}
        plan = plan_from_dict(_rename_plan(entry["plan"], inverse), query)
        stats = EnumerationStats(**entry["stats"])
        return OptimizationResult(
            plan=plan,
            algorithm=f"{entry['algorithm']}+cache",
            stats=stats,
            elapsed_seconds=time.perf_counter() - started,
        )

    def store(
        self,
        query: BGPQuery,
        statistics: StatisticsCatalog,
        algorithm: str,
        result: OptimizationResult,
        parameters: CostParameters = PAPER_PARAMETERS,
        partitioning: Optional[PartitioningMethod] = None,
    ) -> str:
        """Insert an optimization result; return its cache key."""
        key, mapping = query_signature(
            query, statistics, algorithm, parameters, partitioning
        )
        entry = {
            "algorithm": result.algorithm,
            "plan": _rename_plan(plan_to_dict(result.plan), mapping),
            "stats": asdict(result.stats),
        }
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        self.stats.stores += 1
        obs.event("plan_cache.store", algorithm=result.algorithm)
        obs.count("plan_cache.stores")
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            obs.count("plan_cache.evictions")
        return key

    def hits_for(
        self,
        query: BGPQuery,
        statistics: StatisticsCatalog,
        algorithm: str,
        parameters: CostParameters = PAPER_PARAMETERS,
        partitioning: Optional[PartitioningMethod] = None,
    ) -> int:
        """Accumulated lookup hits for this call's entry (0 when absent).

        Per-entry recurrence evidence for the adaptive repartitioning
        advisor (:mod:`repro.partitioning.adaptive`): a query shape
        repeatedly served from the cache recurs even though the
        optimizer never re-ran.  Does not touch LRU order or the
        hit/miss statistics — it is a pure read.
        """
        key, _ = query_signature(
            query, statistics, algorithm, parameters, partitioning
        )
        entry = self._entries.get(key)
        if entry is None:
            return 0
        return int(entry.get("hits", 0))

    def invalidate(
        self,
        query: BGPQuery,
        statistics: StatisticsCatalog,
        algorithm: str,
        parameters: CostParameters = PAPER_PARAMETERS,
        partitioning: Optional[PartitioningMethod] = None,
    ) -> bool:
        """Drop the entry for this call, if any.

        The ``--verify`` path uses this when a rebuilt cached plan fails
        invariant verification: the corrupt entry is removed so the
        lookup behaves as a miss and a fresh optimization replaces it.
        """
        key, _ = query_signature(
            query, statistics, algorithm, parameters, partitioning
        )
        return self.invalidate_key(key)

    def invalidate_key(self, key: str) -> bool:
        """Drop one entry by cache key; return whether it existed."""
        if key in self._entries:
            del self._entries[key]
            self.stats.invalidations += 1
            obs.event("plan_cache.invalidate", key=key)
            obs.count("plan_cache.invalidations")
            return True
        return False

    # ------------------------------------------------------------------
    # persistence (the CLI keeps the cache warm across processes)
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the cache to *path* as JSON (LRU order preserved)."""
        payload = {
            "capacity": self._capacity,
            "entries": list(self._entries.items()),
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(
        cls, path: Union[str, Path], capacity: Optional[int] = None
    ) -> "PlanCache":
        """Rebuild a cache saved with :meth:`save`.

        *capacity* overrides the stored capacity (extra entries are
        evicted oldest-first).
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        cache = cls(capacity=capacity or payload["capacity"])
        for key, entry in payload["entries"]:
            cache._entries[key] = entry
            while len(cache._entries) > cache._capacity:
                cache._entries.popitem(last=False)
        return cache

    def __repr__(self) -> str:
        return (
            f"PlanCache({len(self)}/{self._capacity} entries, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
