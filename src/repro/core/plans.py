"""Physical query plans: labeled k-ary bushy trees (Section II-D).

A plan is a tree whose leaves are triple-pattern scans and whose inner
nodes are k-way join operators labeled with a join algorithm (local,
broadcast, or repartition).  Nodes are immutable; cost and cardinality
are attached at construction time by the cost model, so plans can be
compared, stored in memo tables, and pretty-printed without recomputing
anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..rdf.terms import Variable
from ..sparql.ast import TriplePattern
from . import bitset as bs


class JoinAlgorithm(enum.Enum):
    """The three physical join algorithms of Section II-D."""

    LOCAL = "local"
    BROADCAST = "broadcast"
    REPARTITION = "repartition"

    @property
    def symbol(self) -> str:
        """The paper's join-operator glyph (⋈L / ⋈B / ⋈R)."""
        return {"local": "⋈L", "broadcast": "⋈B", "repartition": "⋈R"}[self.value]


@dataclass(frozen=True)
class PlanNode:
    """Common plan-node state.

    ``bits`` is the subquery bitset this node computes; ``cardinality``
    the estimated output size; ``cost`` the cumulative plan cost per
    Eq. 3 (max over children plus this operator's cost).
    """

    bits: int
    cardinality: float
    cost: float

    @property
    def pattern_count(self) -> int:
        """Number of triple patterns this node covers."""
        return bs.popcount(self.bits)

    def walk(self) -> Iterator["PlanNode"]:
        """Yield this node and all descendants, pre-order."""
        yield self

    def leaves(self) -> Iterator["ScanNode"]:
        """All scan leaves of the subtree."""
        for node in self.walk():
            if isinstance(node, ScanNode):
                yield node

    def joins(self) -> Iterator["JoinNode"]:
        """All join operators of the subtree."""
        for node in self.walk():
            if isinstance(node, JoinNode):
                yield node

    def depth(self) -> int:
        """Number of join levels (a bare scan has depth 0)."""
        return 0

    def describe(self, indent: int = 0) -> str:
        """Pretty-print the subtree (implemented by subclasses)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """A leaf: the bindings of one triple pattern."""

    pattern_index: int = -1
    pattern: Optional[TriplePattern] = None

    def describe(self, indent: int = 0) -> str:
        pattern = str(self.pattern) if self.pattern is not None else f"tp{self.pattern_index}"
        return f"{'  ' * indent}scan[{self.pattern_index}] {pattern} (card={self.cardinality:.0f})"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """An inner node: a k-way join with a labeled algorithm."""

    algorithm: JoinAlgorithm = JoinAlgorithm.REPARTITION
    join_variable: Optional[Variable] = None
    children: Tuple[PlanNode, ...] = ()
    operator_cost: float = 0.0

    @property
    def arity(self) -> int:
        """Number of inputs (k of the k-way join)."""
        return len(self.children)

    def walk(self) -> Iterator[PlanNode]:
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        return 1 + max(child.depth() for child in self.children)

    def describe(self, indent: int = 0) -> str:
        variable = f" on {self.join_variable}" if self.join_variable else ""
        head = (
            f"{'  ' * indent}{self.algorithm.symbol}{variable} "
            f"(arity={self.arity}, card={self.cardinality:.0f}, cost={self.cost:.1f})"
        )
        body = "\n".join(child.describe(indent + 1) for child in self.children)
        return f"{head}\n{body}"

    def __str__(self) -> str:
        return self.describe()


def validate_plan(plan: PlanNode, expected_bits: Optional[int] = None) -> None:
    """Check structural invariants; raise ``ValueError`` on violation.

    Invariants (Section II-D):

    * every join's children cover disjoint subqueries,
    * a join's bits are exactly the union of its children's bits,
    * every join has arity ≥ 2,
    * the root covers *expected_bits* when given.
    """
    if expected_bits is not None and plan.bits != expected_bits:
        raise ValueError(
            f"plan covers bitset {plan.bits:#x}, expected {expected_bits:#x}"
        )
    for node in plan.walk():
        if isinstance(node, JoinNode):
            if node.arity < 2:
                raise ValueError(f"join node with arity {node.arity}")
            union = 0
            for child in node.children:
                if union & child.bits:
                    raise ValueError("join children overlap")
                union |= child.bits
            if union != node.bits:
                raise ValueError("join bits do not equal the union of children")
        elif isinstance(node, ScanNode):
            if bs.popcount(node.bits) != 1:
                raise ValueError("scan node must cover exactly one pattern")


def plan_signature(plan: PlanNode) -> str:
    """A canonical, order-insensitive string form (used in tests)."""
    if isinstance(plan, ScanNode):
        return f"s{plan.pattern_index}"
    assert isinstance(plan, JoinNode)
    inner = ",".join(sorted(plan_signature(c) for c in plan.children))
    label = plan.algorithm.value[0]
    variable = plan.join_variable.name if plan.join_variable else ""
    return f"{label}{variable}({inner})"


def count_operators(plan: PlanNode) -> int:
    """Number of join operators in the plan."""
    return sum(1 for _ in plan.joins())
