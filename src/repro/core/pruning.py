"""TD-CMDP: connected multi-division enumeration with pruning (Section IV-A).

Three pruning rules confine the search space of TD-CMD:

* **Rule 1** — for k-way joins with k > 2, only *connected
  complete-multi-divisions* (ccmds: every part contains exactly one
  pattern of Ntp(v_j)) are considered; binary divisions stay unpruned.
* **Rule 2** — broadcast joins are considered only for binary joins
  (only one input has to be shipped).
* **Rule 3** — a local subquery is planned as the flat local join,
  full stop; nothing below it is enumerated.

The paper notes this is very different from MSC's flattest-plan
heuristic: for every subquery TD-CMDP still considers all binary joins
*plus* the complete multi-way joins, at every level.

The rules can be toggled individually (keyword-only constructor flags),
which the ablation benchmark uses to price each rule separately.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from ..observability import runtime as obs
from ..observability.metrics import Counter
from ..rdf.terms import Variable
from . import bitset as bs
from .cmd import enumerate_cbds, enumerate_ccmds, enumerate_cmds
from .cost import PlanBuilder
from .enumeration import InvariantProfile, TopDownEnumerator
from .governance import QueryBudget
from .join_graph import JoinGraph
from .local_query import LocalQueryIndex
from .plans import JoinAlgorithm


class PrunedTopDownEnumerator(TopDownEnumerator):
    """TD-CMDP: TD-CMD with Rules 1–3 (individually toggleable)."""

    algorithm_name = "TD-CMDP"

    def __init__(
        self,
        join_graph: JoinGraph,
        builder: PlanBuilder,
        local_index: Optional[LocalQueryIndex] = None,
        timeout_seconds: Optional[float] = None,
        budget: Optional[QueryBudget] = None,
        *,
        rule1_ccmd_only: bool = True,
        rule2_binary_broadcast: bool = True,
        rule3_local_short_circuit: bool = True,
    ) -> None:
        super().__init__(join_graph, builder, local_index, timeout_seconds, budget)
        self.rule1_ccmd_only = rule1_ccmd_only
        self.rule2_binary_broadcast = rule2_binary_broadcast
        self.local_short_circuit = rule3_local_short_circuit  # Rule 3
        #: rule-hit counters, resolved once per enumerator (an enumerator
        #: lives inside exactly one optimize call, so the active registry
        #: cannot change under the cache); divisions() runs per subquery,
        #: and a lock-guarded registry lookup there is measurable
        self._rule_counters: Optional[Tuple[Counter, Counter, Counter]] = None

    def invariant_profile(self) -> InvariantProfile:
        """The invariants promised by the rules currently switched on."""
        return InvariantProfile(
            broadcast_binary_only=self.rule2_binary_broadcast,
            local_flat_only=self.local_short_circuit,
        )

    def divisions(
        self, bits: int
    ) -> Iterator[Tuple[Tuple[int, ...], Variable, Sequence[JoinAlgorithm]]]:
        """The pruned division space, with Rule 1/2 hit counting.

        With tracing inactive this is a plain pass-through of
        :meth:`_divisions` (zero overhead); with a metrics registry
        active, every yielded division is classified — binary cbd vs
        k > 2 multi-division, and whether Rule 2 pruned its broadcast
        candidate — and the counts are flushed when the generator is
        exhausted (or closed).  Rule 3 hits are the
        ``optimizer.local_short_circuits`` counter.
        """
        registry = obs.metrics()
        if registry is None:
            yield from self._divisions(bits)
            return
        counters = self._rule_counters
        if counters is None:
            counters = self._rule_counters = (
                registry.counter("pruning.rule1_binary_divisions"),
                registry.counter("pruning.rule1_multiway_divisions"),
                registry.counter("pruning.rule2_broadcast_prunes"),
            )
        binary = multiway = broadcast_pruned = 0
        try:
            for division in self._divisions(bits):
                if len(division[0]) == 2:
                    binary += 1
                else:
                    multiway += 1
                    if JoinAlgorithm.BROADCAST not in division[2]:
                        broadcast_pruned += 1
                yield division
        finally:
            counters[0].inc(binary)
            counters[1].inc(multiway)
            counters[2].inc(broadcast_pruned)

    def raw_divisions(
        self, bits: int
    ) -> Iterator[Tuple[Tuple[int, ...], Variable, Sequence[JoinAlgorithm]]]:
        """The pruned division space without rule-hit counting."""
        return self._divisions(bits)

    def _divisions(
        self, bits: int
    ) -> Iterator[Tuple[Tuple[int, ...], Variable, Sequence[JoinAlgorithm]]]:
        both = (JoinAlgorithm.BROADCAST, JoinAlgorithm.REPARTITION)
        repartition_only = (JoinAlgorithm.REPARTITION,)
        multiway_operators = repartition_only if self.rule2_binary_broadcast else both
        if self.rule1_ccmd_only:
            for variable in self.join_graph.join_variables:
                if bs.popcount(self.join_graph.ntp(variable) & bits) < 2:
                    continue
                for part, rest in enumerate_cbds(self.join_graph, bits, variable):
                    yield (part, rest), variable, both
            # Rule 1: k > 2 only through ccmds
            for parts, variable in enumerate_ccmds(
                self.join_graph, bits, minimum_arity=3
            ):
                yield parts, variable, multiway_operators
        else:
            for parts, variable in enumerate_cmds(self.join_graph, bits):
                operators = both if len(parts) == 2 else multiway_operators
                yield parts, variable, operators
