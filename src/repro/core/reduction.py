"""HGR-TD-CMD: heuristic join-graph reduction (Section IV-B).

For large queries the number of triple patterns dominates the cost of
enumeration, so the join graph is first *reduced*: triple patterns that
can be answered by one local join are collapsed into a single vertex.
Choosing the collapse is the NP-hard Join Graph Reduction problem
(Definition 4, Theorem 4), approximated with the classic greedy
weighted set cover (ln n approximation): candidates are the local
queries of Q (connected subqueries of the maximal local queries),
weighted by estimated cardinality, and the greedy step picks the
candidate with the lowest weight per newly covered pattern.

The reduced query is then optimized with plain TD-CMD, and the reduced
plan is expanded back: every super-vertex leaf becomes the flat local
join plan of its patterns, and join costs are re-derived with the
original builder so HGR plans remain cost-comparable with everything
else.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..observability import runtime as obs
from ..rdf.terms import Variable
from ..sparql.ast import BGPQuery
from . import bitset as bs
from .cardinality import CardinalityEstimator, PatternStatistics, StatisticsCatalog
from .cost import PlanBuilder
from .counting import connected_subqueries
from .enumeration import (
    EnumerationStats,
    OptimizationResult,
    TopDownEnumerator,
)
from .governance import QueryBudget
from .join_graph import JoinGraph
from .local_query import LocalQueryIndex
from .plans import JoinNode, PlanNode, ScanNode


@dataclass(frozen=True)
class SuperPattern:
    """A collapsed vertex of the reduced join graph.

    Duck-types the slice of the :class:`TriplePattern` interface the
    join graph and estimator use: ``variables()`` and hashability.
    """

    bits: int
    vars: FrozenSet[Variable]

    def variables(self) -> FrozenSet[Variable]:
        """The variable set of the collapsed part (duck-typed API)."""
        return self.vars

    def __str__(self) -> str:
        return f"group{{{','.join(map(str, bs.to_indices(self.bits)))}}}"


#: Candidate pool size guard: maximal local queries larger than this are
#: used as-is instead of expanding all their connected subqueries.
EXPANSION_LIMIT = 12



def _poll_reduction(budget: Optional[QueryBudget], phase: str) -> None:
    """Budget poll for the reduction phase.

    Cancellation always aborts.  Deadline expiry aborts only *hard*
    (non-anytime) budgets: an anytime query must reach the inner
    enumerator, whose expiry handling degrades to the greedy fallback
    instead of raising — aborting here would break the anytime
    contract (reduction itself is bounded preprocessing).
    """
    if budget is None:
        return
    budget.check_cancelled(phase)
    if not budget.anytime:
        budget.check_deadline(phase)


def candidate_local_queries(
    join_graph: JoinGraph,
    local_index: LocalQueryIndex,
    limit: int = EXPANSION_LIMIT,
    budget: Optional[QueryBudget] = None,
) -> List[int]:
    """The set C of the JGR greedy: local queries of Q, as bitsets.

    All connected subqueries of each maximal local query (Lemma 4 makes
    them local), except that oversized MLQs contribute themselves and
    their patterns only; plus every singleton, so a cover always exists.
    """
    candidates: Set[int] = set()
    for mlq in local_index.maximal_local_queries:
        _poll_reduction(budget, "jgr.candidates")
        if bs.popcount(mlq) <= limit:
            candidates.update(connected_subqueries(join_graph, mlq))
        else:
            candidates.add(mlq)
    for i in range(join_graph.size):
        candidates.add(bs.bit(i))
    return sorted(candidates)


def greedy_join_graph_reduction(
    join_graph: JoinGraph,
    local_index: LocalQueryIndex,
    estimator: CardinalityEstimator,
    budget: Optional[QueryBudget] = None,
) -> List[int]:
    """Solve JGR greedily; return disjoint connected local parts.

    Classic weighted-set-cover greedy: repeatedly pick the candidate
    with minimum ``cardinality / newly-covered-patterns``.  The cover is
    then made disjoint in pick order and each part re-split into
    connected components (subqueries of local queries stay local).
    """
    candidates = candidate_local_queries(join_graph, local_index, budget=budget)
    weights = {c: estimator.cardinality(c) for c in candidates}
    uncovered = join_graph.full
    picked: List[int] = []
    while uncovered:
        # one poll per cover round keeps the greedy cancellable even
        # when the candidate pool is large (JGR runs pre-enumeration)
        _poll_reduction(budget, "jgr.reduce")
        best = None
        # (ratio, bitset) lexicographic: cheapest ratio wins, exact
        # ratio ties break toward the smaller bitset (deterministic)
        best_key = (float("inf"), -1)
        for candidate in candidates:
            gain = bs.popcount(candidate & uncovered)
            if gain == 0:
                continue
            ratio = weights[candidate] / gain
            if (ratio, candidate) < best_key:
                best_key = (ratio, candidate)
                best = candidate
        assert best is not None, "singletons guarantee a cover"
        picked.append(best)
        obs.event(
            "jgr.round",
            pick=best,
            newly_covered=bs.popcount(best & uncovered),
            ratio=best_key[0],
        )
        obs.count("jgr.rounds")
        uncovered &= ~best
    # make parts disjoint in pick order, then split into connected pieces
    parts: List[int] = []
    claimed = 0
    for candidate in picked:
        remainder = candidate & ~claimed
        if not remainder:
            continue
        claimed |= remainder
        parts.extend(join_graph.connected_components(remainder))
    parts.sort()
    return parts


def build_reduced_problem(
    join_graph: JoinGraph,
    estimator: CardinalityEstimator,
    parts: List[int],
    budget: Optional[QueryBudget] = None,
) -> Tuple[JoinGraph, CardinalityEstimator]:
    """Construct the reduced join graph J'(Q) and its estimator.

    Every part becomes a :class:`SuperPattern` whose statistics are the
    original estimator's subquery cardinality and per-variable binding
    counts, so reduced-level costs agree with expanded-plan costs.
    """
    super_patterns = [
        SuperPattern(bits=part, vars=frozenset(join_graph.variables_of(part)))
        for part in parts
    ]
    reduced_query = BGPQuery(super_patterns, name=f"{join_graph.query.name}:reduced")
    reduced_graph = JoinGraph(reduced_query)
    entries: List[PatternStatistics] = []
    for part in parts:
        _poll_reduction(budget, "jgr.build_reduced")
        card = estimator.cardinality(part)
        bindings = {
            v: estimator.bindings(part, v)
            for v in sorted(join_graph.variables_of(part), key=lambda v: v.name)
        }
        entries.append(PatternStatistics(cardinality=card, bindings=bindings))
    catalog = StatisticsCatalog(reduced_query, entries)
    return reduced_graph, CardinalityEstimator(reduced_graph, catalog)


class ReductionOptimizer:
    """HGR-TD-CMD: reduce the join graph, optimize, expand the plan."""

    algorithm_name = "HGR-TD-CMD"

    def __init__(
        self,
        join_graph: JoinGraph,
        builder: PlanBuilder,
        local_index: Optional[LocalQueryIndex] = None,
        timeout_seconds: Optional[float] = None,
        budget: Optional[QueryBudget] = None,
    ) -> None:
        self.join_graph = join_graph
        self.builder = builder
        self.local_index = local_index or LocalQueryIndex(join_graph, None)
        self.timeout_seconds = timeout_seconds
        self.budget = budget

    def optimize(self) -> OptimizationResult:
        """Reduce, optimize the reduced graph, expand the plan."""
        started = time.perf_counter()
        with obs.span("jgr.reduce", patterns=self.join_graph.size) as sp:
            parts = greedy_join_graph_reduction(
                self.join_graph,
                self.local_index,
                self.builder.estimator,
                budget=self.budget,
            )
            sp.set(parts=len(parts))
        if len(parts) == 1:
            # the whole query is one local query
            plan = self.builder.local_join_plan(parts[0])
            stats = EnumerationStats(plans_considered=1, local_short_circuits=1)
            stats.flush_to_metrics()
            return OptimizationResult(
                plan=plan,
                algorithm=self.algorithm_name,
                stats=stats,
                elapsed_seconds=time.perf_counter() - started,
            )
        reduced_graph, reduced_estimator = build_reduced_problem(
            self.join_graph, self.builder.estimator, parts, budget=self.budget
        )
        reduced_builder = PlanBuilder(
            reduced_graph, reduced_estimator, self.builder.parameters
        )
        inner = TopDownEnumerator(
            reduced_graph,
            reduced_builder,
            local_index=None,
            timeout_seconds=self.timeout_seconds,
            budget=self.budget,
        )
        with obs.span("jgr.optimize_reduced", parts=len(parts)):
            reduced_result = inner.optimize()
        with obs.span("jgr.expand"):
            plan = self._expand(reduced_result.plan, parts)
        # the inner search degrading (anytime deadline) degrades the
        # expanded plan too; keep the suffix visible in the label
        suffix = reduced_result.algorithm[len(inner.algorithm_name):]
        return OptimizationResult(
            plan=plan,
            algorithm=f"{self.algorithm_name}{suffix}",
            stats=reduced_result.stats,
            elapsed_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    def _expand(self, node: PlanNode, parts: List[int]) -> PlanNode:
        """Replace super-vertex scans by local plans; re-cost joins."""
        if isinstance(node, ScanNode):
            return self.builder.local_join_plan(parts[node.pattern_index])
        assert isinstance(node, JoinNode)
        children = [self._expand(child, parts) for child in node.children]
        return self.builder.join(node.algorithm, children, node.join_variable)
