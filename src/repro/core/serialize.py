"""Plan serialization: JSON round-trip and Graphviz DOT export.

A deployed optimizer hands plans to an execution tier; these codecs are
the wire format.  ``plan_to_json``/``plan_from_json`` round-trip every
plan the optimizers produce (scans need the query to resolve pattern
objects); ``plan_to_dot`` renders the bushy tree for papers and debug
sessions.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..rdf.terms import Variable
from ..sparql.ast import BGPQuery
from .plans import JoinAlgorithm, JoinNode, PlanNode, ScanNode


def plan_to_dict(plan: PlanNode) -> Dict[str, Any]:
    """Plan tree → plain dictionaries (JSON-compatible)."""
    if isinstance(plan, ScanNode):
        return {
            "kind": "scan",
            "pattern_index": plan.pattern_index,
            "cardinality": plan.cardinality,
            "cost": plan.cost,
        }
    if isinstance(plan, JoinNode):
        return {
            "kind": "join",
            "algorithm": plan.algorithm.value,
            "join_variable": plan.join_variable.name if plan.join_variable else None,
            "cardinality": plan.cardinality,
            "cost": plan.cost,
            "operator_cost": plan.operator_cost,
            "children": [plan_to_dict(child) for child in plan.children],
        }
    raise TypeError(f"cannot serialize {type(plan).__name__}")


def plan_from_dict(data: Dict[str, Any], query: Optional[BGPQuery] = None) -> PlanNode:
    """Dictionaries → plan tree; *query* restores scan pattern objects."""
    kind = data.get("kind")
    if kind == "scan":
        index = data["pattern_index"]
        pattern = query.patterns[index] if query is not None else None
        return ScanNode(
            bits=1 << index,
            cardinality=data["cardinality"],
            cost=data["cost"],
            pattern_index=index,
            pattern=pattern,
        )
    if kind == "join":
        children = tuple(
            plan_from_dict(child, query) for child in data["children"]
        )
        bits = 0
        for child in children:
            bits |= child.bits
        variable = (
            Variable(data["join_variable"]) if data.get("join_variable") else None
        )
        return JoinNode(
            bits=bits,
            cardinality=data["cardinality"],
            cost=data["cost"],
            algorithm=JoinAlgorithm(data["algorithm"]),
            join_variable=variable,
            children=children,
            operator_cost=data.get("operator_cost", 0.0),
        )
    raise ValueError(f"unknown plan node kind {kind!r}")


def plan_to_json(plan: PlanNode, indent: Optional[int] = None) -> str:
    """Serialize a plan tree to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_json(text: str, query: Optional[BGPQuery] = None) -> PlanNode:
    """Parse a JSON string back into a plan tree."""
    return plan_from_dict(json.loads(text), query)


def plan_to_dot(plan: PlanNode, name: str = "plan") -> str:
    """Render the plan as a Graphviz digraph."""
    lines = [f"digraph {json.dumps(name)} {{", "  node [fontname=monospace];"]
    counter = [0]

    def emit(node: PlanNode) -> str:
        identifier = f"n{counter[0]}"
        counter[0] += 1
        if isinstance(node, ScanNode):
            label = f"scan tp{node.pattern_index}\\ncard={node.cardinality:.0f}"
            lines.append(f'  {identifier} [shape=box, label="{label}"];')
        else:
            assert isinstance(node, JoinNode)
            variable = f" on ?{node.join_variable.name}" if node.join_variable else ""
            label = (
                f"{node.algorithm.value} join{variable}\\n"
                f"card={node.cardinality:.0f} cost={node.cost:.1f}"
            )
            lines.append(f'  {identifier} [shape=ellipse, label="{label}"];')
            for child in node.children:
                child_id = emit(child)
                lines.append(f"  {identifier} -> {child_id};")
        return identifier

    emit(plan)
    lines.append("}")
    return "\n".join(lines)
