"""The optimizer session API: :class:`OptimizeOptions` + :class:`Optimizer`.

The :func:`repro.core.optimizer.optimize` facade grew one keyword
argument per subsystem (statistics, partitioning, timeout, plan cache,
parallel jobs, verification, …) until configuration and per-call input
were indistinguishable.  This module redesigns that surface:

* :class:`OptimizeOptions` is the *configuration* — one typed,
  immutable-by-convention dataclass holding everything that used to be
  a keyword argument, plus ``trace`` (observability is a property of a
  session, not a twelfth kwarg);
* :class:`Optimizer` is the *session* — it owns resolved statistics,
  the plan cache, the tracer, and the worker-pool policy **across
  calls**, so repeated optimizations share state the old facade
  rebuilt every time::

      from repro import OptimizeOptions, Optimizer

      session = Optimizer(OptimizeOptions(algorithm="td-cmdp", trace=True))
      for query in workload:
          result = session.optimize(query)
      print(flame_summary(session.tracer))

:func:`~repro.core.optimizer.optimize` remains as a thin back-compat
shim over this class (same keywords, same behaviour); only its
ballooning-signature path — passing session state (``plan_cache``,
``jobs``, ``verify``) per call — earns a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    ContextManager,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine → core)
    from ..engine.metrics import ExecutionMetrics
    from ..partitioning.adaptive import (
        AdaptationReport,
        AdaptiveCluster,
        RepartitioningAdvisor,
    )

from ..observability import Tracer
from ..observability import runtime as obs
from ..partitioning.base import PartitioningMethod
from ..rdf.dataset import Dataset
from ..sparql.ast import BGPQuery
from .cardinality import StatisticsCatalog
from .cost import CostParameters, PAPER_PARAMETERS
from .enumeration import OptimizationResult
from .governance import CancellationToken, Deadline, QueryBudget
from .local_query import LocalQueryIndex
from .plan_cache import PlanCache

#: one DeprecationWarning per process for the timeout_seconds alias
_timeout_shim_warned = False


@dataclass
class OptimizeOptions:
    """Everything that configures an optimization session.

    Field-for-field this matches the keywords of the legacy
    :func:`~repro.core.optimizer.optimize` facade (see ``docs/API.md``
    for the exact mapping, including the CLI flags), plus ``trace``.
    Treat instances as immutable; derive variants with
    :meth:`dataclasses.replace` or :meth:`with_overrides`.
    """

    #: ``"td-cmd"``, ``"td-cmdp"``, ``"hgr-td-cmd"``, or ``"td-auto"``
    #: (case-insensitive)
    algorithm: str = "td-auto"
    #: explicit cardinality catalog (wins over ``dataset`` and ``seed``)
    statistics: Optional[StatisticsCatalog] = None
    #: dataset to derive exact statistics from (per query, cached)
    dataset: Optional[Dataset] = None
    #: data partitioning method; enables local-query detection
    partitioning: Optional[PartitioningMethod] = None
    #: cost-model constants (defaults to the paper's Table II)
    parameters: CostParameters = field(default_factory=lambda: PAPER_PARAMETERS)
    #: DEPRECATED alias for :attr:`deadline_seconds` (pre-governance
    #: name; folded into it by ``__post_init__``, one warning per process)
    timeout_seconds: Optional[float] = None
    #: seed for synthetic statistics (the paper's random-statistics mode)
    seed: int = 0
    #: cross-query plan cache owned by the session
    plan_cache: Optional[PlanCache] = None
    #: worker processes for the intra-query parallel search
    jobs: int = 1
    #: intra-query parallel scheme when ``jobs > 1``: ``"memo-shard"``
    #: (popcount-tiered memo sharding with work stealing) or
    #: ``"root-slice"`` (the legacy root-division round-robin); see
    #: :data:`repro.core.parallel.PARALLEL_STRATEGIES`
    parallel_strategy: str = "memo-shard"
    #: run the plan-invariant verifier on every returned plan
    verify: bool = False
    #: collect spans + metrics for every call (``session.tracer``)
    trace: bool = False
    #: execution engine for plan execution driven from this session's
    #: options: any registered name (``"reference"`` — term tuples, the
    #: oracle; ``"columnar"`` — dictionary-encoded ids with indexed
    #: scans; ``"pipelined"`` — streaming chunk pipeline) or a ready
    #: :class:`~repro.engine.base.Engine` instance
    engine: Any = "reference"
    #: wall-clock deadline for each query's whole lifecycle (optimize,
    #: and execution when the same budget is handed to the executor)
    deadline_seconds: Optional[float] = None
    #: ceiling on intermediate rows produced during execution
    row_budget: Optional[int] = None
    #: query-wide retry budget across all operators (on top of the
    #: per-operator :class:`~repro.engine.recovery.RetryPolicy` cap)
    retry_budget: Optional[int] = None
    #: on optimizer deadline, return the best complete plan so far
    #: (flagged ``stats.degraded``) instead of raising
    anytime: bool = False
    #: cooperative cancel flag shared with parallel search drivers
    cancellation: Optional[CancellationToken] = None
    #: enable workload-adaptive repartitioning: the session owns a
    #: :class:`~repro.partitioning.adaptive.RepartitioningAdvisor` and
    #: :meth:`Optimizer.observe_execution` drives the feedback loop
    #: against a bound :class:`~repro.partitioning.adaptive.AdaptiveCluster`
    adapt: bool = False
    #: run an adaptation round every N observed executions
    adapt_every: int = 16
    #: ceiling on adaptive replication, as a fraction of the dataset's
    #: triples (extra stored copies summed across workers)
    replication_budget: float = 0.1

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None:
            global _timeout_shim_warned
            if not _timeout_shim_warned:
                _timeout_shim_warned = True
                warnings.warn(
                    "OptimizeOptions.timeout_seconds is deprecated and "
                    "will be removed in 2.0; use deadline_seconds (same "
                    "semantics, plus anytime=True for graceful "
                    "degradation)",
                    DeprecationWarning,
                    stacklevel=3,
                )
            if self.deadline_seconds is None:
                self.deadline_seconds = self.timeout_seconds

    @property
    def governed(self) -> bool:
        """Whether any governance limit is configured.

        False means :meth:`Optimizer.budget_for` returns ``None`` and
        every budget check in the pipeline reduces to one ``is None``
        test — the zero-cost-off guarantee.
        """
        return (
            self.deadline_seconds is not None
            or self.row_budget is not None
            or self.retry_budget is not None
            or self.cancellation is not None
            or self.anytime
        )

    def with_overrides(self, **overrides: Any) -> "OptimizeOptions":
        """A copy with *overrides* applied (``dataclasses.replace``)."""
        return replace(self, **overrides)

    @property
    def algorithm_key(self) -> str:
        """The lower-cased registry key for :attr:`algorithm`."""
        return self.algorithm.lower()


class Optimizer:
    """An optimization session: state that outlives a single query.

    The session owns

    * **statistics** — catalogs resolved from :attr:`OptimizeOptions.dataset`
      (or the random seed) are cached per query object, so re-optimizing
      a query never re-scans the data;
    * **the plan cache** — :attr:`OptimizeOptions.plan_cache`, consulted and
      populated by every call (verification-gated when ``verify=True``);
    * **the tracer** — created once when ``trace=True``; every call adds
      an ``optimize`` root span to it (see ``docs/OBSERVABILITY.md``);
    * **jobs** — the parallel-search policy applied to every call.

    Construction validates the algorithm eagerly, so a typo fails at
    session setup rather than mid-workload.
    """

    def __init__(
        self, options: Optional[OptimizeOptions] = None, **overrides: Any
    ) -> None:
        base = options if options is not None else OptimizeOptions()
        if overrides:
            base = base.with_overrides(**overrides)
        from .optimizer import ALGORITHMS  # late: optimizer imports us lazily

        if base.algorithm_key not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {base.algorithm!r}; "
                f"choose from {sorted(ALGORITHMS)}"
            )
        if base.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {base.jobs}")
        from .parallel import PARALLEL_STRATEGIES  # late: parallel imports core

        if base.parallel_strategy not in PARALLEL_STRATEGIES:
            raise ValueError(
                f"unknown parallel strategy {base.parallel_strategy!r}; "
                f"choose from {PARALLEL_STRATEGIES}"
            )
        from ..engine.base import Engine  # late: engine depends on core
        from ..engine.executor import ENGINES  # registers all backends

        if not isinstance(base.engine, Engine) and base.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {base.engine!r}; choose from {list(ENGINES)}"
            )
        if base.adapt_every < 1:
            raise ValueError(f"adapt_every must be >= 1, got {base.adapt_every}")
        if base.replication_budget < 0:
            raise ValueError(
                f"replication_budget must be >= 0, got {base.replication_budget}"
            )
        self.options = base
        self.plan_cache = base.plan_cache
        self.tracer: Optional[Tracer] = Tracer() if base.trace else None
        #: resolved statistics per query object (the strong reference to
        #: the query keeps ``id()`` from being recycled)
        self._statistics: Dict[int, Tuple[BGPQuery, StatisticsCatalog]] = {}
        #: the adaptive-repartitioning feedback loop (``adapt=True``)
        self.advisor: Optional["RepartitioningAdvisor"] = None
        self._adaptive_cluster: Optional["AdaptiveCluster"] = None
        if base.adapt:
            # imported lazily: partitioning.adaptive depends on engine,
            # which depends on core
            from ..partitioning.adaptive import RepartitioningAdvisor

            self.advisor = RepartitioningAdvisor(adapt_every=base.adapt_every)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def optimize(
        self, query: BGPQuery, budget: Optional[QueryBudget] = None
    ) -> OptimizationResult:
        """Optimize one query under this session's options.

        *budget* overrides the session-derived :meth:`budget_for`
        envelope — pass one explicitly to share a single budget across
        the query's whole lifecycle (optimize *and* execute), as the
        CLI ``run`` command does.
        """
        if budget is None:
            budget = self.budget_for(query)
        scope: ContextManager[object] = (
            obs.activate(self.tracer) if self.tracer is not None else nullcontext()
        )
        with scope:
            with obs.span(
                "optimize",
                query=query.name or f"q{len(query)}",
                algorithm=self.options.algorithm_key,
                patterns=len(query),
            ) as root:
                result = self._optimize(query, budget)
                root.set(
                    algorithm_used=result.algorithm,
                    cost=result.cost,
                    plans_considered=result.stats.plans_considered,
                    elapsed_seconds=result.elapsed_seconds,
                )
                return result

    def budget_for(self, query: BGPQuery) -> Optional[QueryBudget]:
        """A fresh :class:`QueryBudget` for *query*, or ``None``.

        ``None`` exactly when no governance field is set
        (:attr:`OptimizeOptions.governed`), so ungoverned sessions pay
        nothing.  Each call starts a fresh deadline and fresh row/retry
        counters; the cancellation token is shared session-wide (one
        cancel stops every in-flight query of this session).
        """
        options = self.options
        if not options.governed:
            return None
        deadline = (
            Deadline.after(options.deadline_seconds)
            if options.deadline_seconds is not None
            else None
        )
        return QueryBudget(
            deadline=deadline,
            row_budget=options.row_budget,
            retry_budget=options.retry_budget,
            cancellation=options.cancellation,
            anytime=options.anytime,
            query_id=query.name or f"q{len(query)}",
        )

    def tracing(self) -> ContextManager[object]:
        """Activate this session's tracer for work outside :meth:`optimize`.

        Lets callers record adjacent phases — plan execution, exports —
        onto the same trace::

            with session.tracing():
                executor.execute(result.plan, query)

        A no-op context manager when the session does not trace.
        """
        if self.tracer is None:
            return nullcontext()
        return obs.activate(self.tracer)

    def bind_cluster(self, cluster: "AdaptiveCluster") -> None:
        """Attach the adaptive cluster this session's feedback loop drives.

        Requires ``OptimizeOptions(adapt=True)``.  When the session has
        no partitioning configured, the cluster's base method becomes
        the session partitioning, so the optimizer and the layout agree
        from the first query on.
        """
        if self.advisor is None:
            raise ValueError(
                "bind_cluster requires OptimizeOptions(adapt=True)"
            )
        self._adaptive_cluster = cluster
        if self.options.partitioning is None:
            self.options = self.options.with_overrides(
                partitioning=cluster.base_method
            )

    def observe_execution(
        self,
        query: BGPQuery,
        metrics: "ExecutionMetrics",
        budget: Optional[QueryBudget] = None,
    ) -> Optional["AdaptationReport"]:
        """Feed one executed query into the adaptive feedback loop.

        Call once per :meth:`~repro.engine.executor.Executor.execute`
        with the metrics it returned.  The advisor heats the query's
        shape and predicates (plan-cache hits count as recurrence);
        every ``adapt_every`` observations a batch of proposals is
        applied to the bound cluster under the session's replication
        budget.  When the batch changes the layout, the session's
        partitioning is swapped for the cluster's
        :meth:`~repro.partitioning.adaptive.AdaptiveCluster.adapted_method`,
        so subsequent optimizations see the hot queries as local and
        plan-cache keys roll over to the new layout fingerprint.

        Returns the :class:`~repro.partitioning.adaptive.AdaptationReport`
        when an adaptation round ran, else ``None``.  A no-op unless
        ``adapt=True``.
        """
        advisor = self.advisor
        if advisor is None:
            return None
        with self.tracing():
            cache_hits = 0
            if self.plan_cache is not None:
                statistics = self.resolve_statistics(query)
                cache_hits = self.plan_cache.hits_for(
                    query,
                    statistics,
                    self.options.algorithm_key,
                    self.options.parameters,
                    self.options.partitioning,
                )
            advisor.observe(query, metrics, cache_hits=cache_hits)
            cluster = self._adaptive_cluster
            if cluster is None or not advisor.due():
                return None
            proposals = advisor.propose()
            if not proposals:
                return None
            with obs.span(
                "adaptive.apply",
                proposals=len(proposals),
                epoch=cluster.epoch,
            ) as sp:
                report = cluster.apply(
                    proposals,
                    replication_budget=self.options.replication_budget,
                    budget=budget,
                )
                advisor.mark_handled(report)
                if report.changed:
                    self.options = self.options.with_overrides(
                        partitioning=cluster.adapted_method()
                    )
                    obs.count("adaptive.migrations", report.migrations)
                    obs.count(
                        "adaptive.replicated_triples", report.replicated_triples
                    )
                sp.set(
                    applied=len(report.applied),
                    skipped=len(report.skipped),
                    migrations=report.migrations,
                    replicated_triples=report.replicated_triples,
                    epoch_after=report.epoch,
                )
            return report

    def optimize_many(self, queries: Iterable[BGPQuery]) -> List[OptimizationResult]:
        """Optimize a batch of queries, reusing all session state.

        Runs serially through :meth:`optimize` (sharing the statistics
        cache, plan cache, and tracer); for process-pool batch
        throughput use :func:`repro.core.parallel.optimize_many`, which
        trades session state for parallelism.
        """
        return [self.optimize(query) for query in queries]

    def resolve_statistics(self, query: BGPQuery) -> StatisticsCatalog:
        """The session's statistics for *query* (resolved once, cached).

        Resolution order matches the legacy facade: explicit catalog >
        dataset-derived > seeded random.
        """
        explicit = self.options.statistics
        if explicit is not None:
            return explicit
        cached = self._statistics.get(id(query))
        if cached is not None:
            return cached[1]
        from .optimizer import resolve_statistics

        with obs.span("statistics.resolve") as sp:
            catalog = resolve_statistics(
                query, None, self.options.dataset, self.options.seed
            )
            sp.set(
                source="dataset" if self.options.dataset is not None else "random",
                patterns=len(query),
            )
        self._statistics[id(query)] = (query, catalog)
        return catalog

    def prime_statistics(
        self, query: BGPQuery, catalog: StatisticsCatalog
    ) -> None:
        """Pre-seed the session's statistics cache for *query*.

        Used when per-query catalogs exist up front (e.g. the benchmark
        queries ship exact statistics) but the session should stay
        configured without a global :attr:`OptimizeOptions.statistics`.
        """
        self._statistics[id(query)] = (query, catalog)

    # ------------------------------------------------------------------
    # the optimization pipeline (one call)
    # ------------------------------------------------------------------
    def _optimize(
        self, query: BGPQuery, budget: Optional[QueryBudget]
    ) -> OptimizationResult:
        from .optimizer import ALGORITHMS, PARALLELIZABLE_ALGORITHMS, make_builder

        options = self.options
        key = options.algorithm_key
        if budget is not None:
            budget.check_cancelled(phase="optimize")
        statistics = self.resolve_statistics(query)
        context = None
        if options.verify:
            with obs.span("verify.context"):
                context = self._verification_context(query, statistics)
        cached = self._cache_lookup(query, statistics, key, context)
        if cached is not None:
            return cached
        if options.jobs > 1 and key in PARALLELIZABLE_ALGORITHMS:
            from .parallel import optimize_query_parallel

            result = optimize_query_parallel(
                query,
                algorithm=key,
                jobs=options.jobs,
                statistics=statistics,
                partitioning=options.partitioning,
                parameters=options.parameters,
                budget=budget,
                strategy=options.parallel_strategy,
            )
        else:
            with obs.span("build", patterns=len(query)):
                builder = make_builder(
                    query, statistics, parameters=options.parameters
                )
                local_index = LocalQueryIndex(
                    builder.join_graph, options.partitioning
                )
                implementation = ALGORITHMS[key](
                    builder.join_graph,
                    builder,
                    local_index=local_index,
                    timeout_seconds=None,
                    budget=budget,
                )
            result = implementation.optimize()
        if context is not None:
            with obs.span("verify", cached=False) as sp:
                from ..analysis import verify_result

                report = verify_result(result, context)
                sp.set(ok=report.ok)
                obs.count("optimizer.verifications")
                report.raise_if_failed()
        if self.plan_cache is not None and not result.stats.degraded:
            # anytime-degraded plans are deliberately not cached: they
            # are the best answer under *this* deadline, not the query's
            # best plan, and must not shadow a future complete search
            self.plan_cache.store(
                query, statistics, key, result, options.parameters,
                options.partitioning,
            )
        return result

    def _verification_context(
        self, query: BGPQuery, statistics: StatisticsCatalog
    ) -> Any:
        """Build the invariant-verifier context for one query."""
        # imported lazily: repro.analysis depends on repro.core
        from ..analysis import VerificationContext

        return VerificationContext.for_query(
            query,
            statistics=statistics,
            partitioning=self.options.partitioning,
            parameters=self.options.parameters,
            seed=self.options.seed,
        )

    def _cache_lookup(
        self,
        query: BGPQuery,
        statistics: StatisticsCatalog,
        key: str,
        context: Any,
    ) -> Optional[OptimizationResult]:
        """Plan-cache lookup, with the verification gate on hits.

        A cached plan that fails verification is invalidated and
        treated as a miss, exactly as if the lookup had missed.
        """
        if self.plan_cache is None:
            return None
        options = self.options
        cached = self.plan_cache.lookup(
            query, statistics, key, options.parameters, options.partitioning
        )
        if cached is None:
            return None
        if context is None:
            return cached
        with obs.span("verify", cached=True) as sp:
            from ..analysis import verify_result

            ok = verify_result(cached, context).ok
            sp.set(ok=ok)
            obs.count("optimizer.verifications")
        if ok:
            return cached
        # corrupt rebuild: drop the entry and fall through to a fresh
        # optimization, exactly as if the lookup had missed
        self.plan_cache.invalidate(
            query, statistics, key, options.parameters, options.partitioning
        )
        return None

    def __repr__(self) -> str:
        flags = [self.options.algorithm_key]
        if self.options.jobs > 1:
            flags.append(f"jobs={self.options.jobs}")
        if self.plan_cache is not None:
            flags.append(f"cache={len(self.plan_cache)}")
        if self.tracer is not None:
            flags.append(f"spans={len(self.tracer)}")
        return f"Optimizer({', '.join(flags)})"
