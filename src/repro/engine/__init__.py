"""Simulated parallel execution engine (the RDF-3X + Hadoop stand-in)."""

from .base import (
    ColumnarEngine,
    Engine,
    EngineSpec,
    ReferenceEngine,
    StreamingContext,
    engine_spec,
    engine_specs,
    register_engine,
    resolve_engine,
)
from .cluster import Cluster
from .columnar import (
    EncodedRelation,
    evaluate_encoded,
    hash_join_encoded,
    iter_pattern_rows,
    multi_join_encoded,
    scan_pattern_encoded,
)
from .executor import ENGINES, ExecutionError, Executor, evaluate_reference
from .pipelined import PipelinedEngine, plan_depth
from .explain import ExplainReport, OperatorExplain, explain
from .faults import (
    FailStop,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultModel,
    Straggler,
    Transient,
    default_models,
)
from .mapreduce import (
    COLUMNAR_SHUFFLE_FACTOR,
    CrossoverAnalysis,
    MapReduceSchedule,
    MapReduceSimulator,
    Stage,
    compile_stages,
    overhead_crossover,
    overhead_crossover_analysis,
)
from .metrics import ExecutionMetrics, OperatorMetrics
from .recovery import (
    DEFAULT_RETRY_POLICY,
    CircuitBreaker,
    FaultToleranceError,
    RecoveryManager,
    RetryPolicy,
)
from .relations import Relation, hash_join, multi_join, scan_pattern

__all__ = [
    "Cluster",
    "explain",
    "ExplainReport",
    "OperatorExplain",
    "MapReduceSchedule",
    "MapReduceSimulator",
    "Stage",
    "compile_stages",
    "overhead_crossover",
    "overhead_crossover_analysis",
    "CrossoverAnalysis",
    "Executor",
    "ExecutionError",
    "evaluate_reference",
    "ExecutionMetrics",
    "OperatorMetrics",
    "FaultInjector",
    "FaultEvent",
    "FaultKind",
    "FaultModel",
    "FailStop",
    "Transient",
    "Straggler",
    "default_models",
    "RetryPolicy",
    "RecoveryManager",
    "CircuitBreaker",
    "FaultToleranceError",
    "DEFAULT_RETRY_POLICY",
    "Relation",
    "scan_pattern",
    "hash_join",
    "multi_join",
    "ENGINES",
    "Engine",
    "EngineSpec",
    "StreamingContext",
    "ReferenceEngine",
    "ColumnarEngine",
    "PipelinedEngine",
    "engine_spec",
    "engine_specs",
    "register_engine",
    "resolve_engine",
    "plan_depth",
    "iter_pattern_rows",
    "COLUMNAR_SHUFFLE_FACTOR",
    "EncodedRelation",
    "scan_pattern_encoded",
    "hash_join_encoded",
    "multi_join_encoded",
    "evaluate_encoded",
]
