"""Simulated parallel execution engine (the RDF-3X + Hadoop stand-in)."""

from .cluster import Cluster
from .executor import ExecutionError, Executor, evaluate_reference
from .explain import ExplainReport, OperatorExplain, explain
from .mapreduce import (
    MapReduceSchedule,
    MapReduceSimulator,
    Stage,
    compile_stages,
    overhead_crossover,
)
from .metrics import ExecutionMetrics, OperatorMetrics
from .relations import Relation, hash_join, multi_join, scan_pattern

__all__ = [
    "Cluster",
    "explain",
    "ExplainReport",
    "OperatorExplain",
    "MapReduceSchedule",
    "MapReduceSimulator",
    "Stage",
    "compile_stages",
    "overhead_crossover",
    "Executor",
    "ExecutionError",
    "evaluate_reference",
    "ExecutionMetrics",
    "OperatorMetrics",
    "Relation",
    "scan_pattern",
    "hash_join",
    "multi_join",
]
