"""The engine protocol: a formal contract for physical execution backends.

Historically the executor dispatched on a hard-coded tuple
``ENGINES = ("reference", "columnar")`` with per-method string
branching.  This module replaces that with an explicit surface:

* :class:`Engine` — the abstract protocol every backend implements:
  how to scan a pattern on the cluster, how to multi-join co-located
  relations, how to route a binding for repartitioning, and how to
  materialize the final result (:meth:`Engine.decode`);
* :class:`EngineSpec` — one registry entry per backend: the factory
  plus the analytic properties other subsystems derive choices from
  (the MapReduce simulator's shuffle discount, whether the backend is
  encoded/streaming);
* :data:`ENGINES` — a live *view* over the registry that keeps the
  historical tuple ergonomics (``in``, ``list()``, iteration for test
  parametrization, tuple-style ``repr`` in error messages), so nothing
  hand-maintains the set of engine names anymore.

The CLI ``--engine`` choices, ``OptimizeOptions.engine`` validation,
:class:`~repro.engine.executor.Executor` dispatch, and
:class:`~repro.engine.mapreduce.MapReduceSimulator` pricing all read
this registry; adding a backend is one :func:`register_engine` call
(see ``docs/API.md`` § "Engine protocol").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Tuple, Union

from ..sparql.ast import TriplePattern
from .columnar import (
    EncodedRelation,
    multi_join_encoded,
    scan_pattern_encoded,
)
from .relations import Relation, multi_join, scan_pattern

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from .cluster import Cluster


class Engine(ABC):
    """A physical execution backend the :class:`Executor` runs plans on.

    Implementations choose the row representation (term tuples,
    dictionary ids, …) and the access paths; the executor keeps operator
    semantics, plan shapes, and the priced cost model engine-neutral.
    A backend with :attr:`streaming` set additionally implements
    :meth:`run_streaming` and takes over the whole plan, pulling
    fixed-size row chunks through scan→join→project instead of
    materializing every intermediate.
    """

    #: registry name of the backend (matches its :class:`EngineSpec`)
    name: str = ""
    #: True when the backend executes plans as a chunk pipeline via
    #: :meth:`run_streaming` instead of the materialized operator walk
    streaming: bool = False

    @abstractmethod
    def scan(self, cluster: "Cluster", pattern: TriplePattern) -> List[object]:
        """Evaluate one triple pattern per worker; one relation per slot."""

    @abstractmethod
    def join(self, relations: List[object]) -> object:
        """k-ary multi-join of co-located relations (greedy pair order)."""

    @abstractmethod
    def route(self, cluster: "Cluster") -> Callable[[object], int]:
        """The repartition routing function bound to *cluster*.

        The returned callable maps one join-variable binding (a term or
        a dictionary id, per the backend's representation) to the live
        worker that owns it.
        """

    def empty_like(self, relation: object) -> object:
        """A fresh empty relation with *relation*'s schema."""
        return relation.empty_like()  # type: ignore[attr-defined]

    def decode(self, relation: object) -> Relation:
        """Materialize the final result as a term-level :class:`Relation`."""
        return relation.decode()  # type: ignore[attr-defined]

    def run_streaming(self, context: "StreamingContext") -> Tuple[object, float]:
        """Execute a whole plan as a chunk pipeline (streaming backends).

        Returns ``(result relation, critical path cost)``; only called
        when :attr:`streaming` is True.
        """
        raise NotImplementedError(
            f"engine {self.name!r} does not support streaming execution"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


@dataclass
class StreamingContext:
    """Everything a streaming backend needs for one ``execute()`` run.

    Built by the executor so streaming engines share the exact
    governance envelope, recovery manager, and metrics sink of the
    materialized path.
    """

    cluster: "Cluster"
    parameters: object
    plan: object
    query: object
    metrics: object
    recovery: object
    budget: object
    limit: "int | None"
    started: float


class ReferenceEngine(Engine):
    """Term-tuple relations: the original, oracle implementation."""

    name = "reference"

    def scan(self, cluster: "Cluster", pattern: TriplePattern) -> List[Relation]:
        return [scan_pattern(graph, pattern) for graph in cluster.worker_graphs()]

    def join(self, relations: List[Relation]) -> Relation:
        return multi_join(relations)

    def route(self, cluster: "Cluster") -> Callable[[object], int]:
        return cluster.route


class ColumnarEngine(Engine):
    """Dictionary-encoded relations with indexed fragment scans."""

    name = "columnar"

    def scan(
        self, cluster: "Cluster", pattern: TriplePattern
    ) -> List[EncodedRelation]:
        return [
            scan_pattern_encoded(fragment, pattern)
            for fragment in cluster.worker_fragments()
        ]

    def join(self, relations: List[EncodedRelation]) -> EncodedRelation:
        return multi_join_encoded(relations)

    def route(self, cluster: "Cluster") -> Callable[[object], int]:
        return cluster.route_id


@dataclass(frozen=True)
class EngineSpec:
    """One registered backend: its factory plus analytic properties."""

    #: registry key (the ``--engine`` choice / ``OptimizeOptions.engine``)
    name: str
    #: one-line description (CLI help is generated from these)
    description: str
    #: zero-argument constructor for a fresh :class:`Engine` instance
    factory: Callable[[], Engine]
    #: shuffle-width discount the MapReduce simulator applies to the
    #: per-tuple transfer constants (β): encoded rows ship fixed-width
    #: ids instead of serialized terms
    shuffle_factor: float = 1.0
    #: whether rows are dictionary-encoded ids (late materialization)
    encoded: bool = False
    #: whether the backend pipelines chunks instead of materializing
    streaming: bool = False


#: registration-ordered registry of engine specs
_REGISTRY: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add *spec* to the registry (name collisions are an error)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"engine {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def engine_spec(name: str) -> EngineSpec:
    """The :class:`EngineSpec` registered under *name*.

    Raises the executor's historical error shape for unknown names so
    every consumer reports the same message.
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValueError(f"unknown engine {name!r}; expected one of {ENGINES}")
    return spec


def engine_specs() -> List[EngineSpec]:
    """All registered specs in registration order."""
    return list(_REGISTRY.values())


def resolve_engine(engine: Union[str, Engine]) -> Tuple[str, Engine]:
    """Resolve a registered name or an :class:`Engine` instance.

    Returns ``(name, instance)``: a name builds a fresh instance from
    its spec's factory; an instance passes through (its :attr:`Engine.name`
    need not be registered — bring-your-own backends are allowed).
    """
    if isinstance(engine, Engine):
        return engine.name or type(engine).__name__, engine
    return engine, engine_spec(engine).factory()


class _EngineRegistryView:
    """A live, tuple-flavoured view of the registered engine names.

    Keeps every historical ``ENGINES`` idiom working against the
    registry: ``"columnar" in ENGINES``, ``list(ENGINES)``, pytest
    parametrization, and f-string interpolation in error messages
    (``repr`` renders like the tuple it replaced).
    """

    def __iter__(self) -> Iterator[str]:
        return iter(_REGISTRY)

    def __contains__(self, name: object) -> bool:
        return name in _REGISTRY

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __getitem__(self, index: int) -> str:
        return tuple(_REGISTRY)[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (tuple, list)):
            return tuple(_REGISTRY) == tuple(other)
        return NotImplemented

    def __repr__(self) -> str:
        return repr(tuple(_REGISTRY))


#: execution engines plans can run on — a live view over the registry
ENGINES = _EngineRegistryView()


register_engine(
    EngineSpec(
        name="reference",
        description="term tuples; the original, oracle implementation",
        factory=ReferenceEngine,
    )
)
register_engine(
    EngineSpec(
        name="columnar",
        description=(
            "dictionary-encoded ids with indexed scans; identical "
            "results, faster execution"
        ),
        factory=ColumnarEngine,
        shuffle_factor=0.25,
        encoded=True,
    )
)
