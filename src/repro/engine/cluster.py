"""The simulated cluster: workers holding partitioned data.

Plays the role of the paper's 10-node RDF-3X + Hadoop testbed.  A
:class:`Cluster` owns one :class:`~repro.rdf.triples.RDFGraph` per
worker (produced by a partitioning method) plus the term-hash routing
used by repartition joins.

The cluster is *fault-aware*: workers can be marked dead
(:meth:`fail_worker`), in which case their partition is re-routed to
the next live worker from the durable replica the partitioning retains
(``partitioning.node_graphs`` is never mutated — it is the HDFS-replica
stand-in), repartition routing skips dead workers, and scans read the
degraded layout through :meth:`worker_graphs`.  A fully healthy cluster
behaves exactly as before faults existed — the healthy paths return the
original structures untouched.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..partitioning.base import Partitioning, PartitioningMethod, hash_term
from ..rdf.dataset import Dataset
from ..rdf.encoding import EncodedGraph, TermDictionary
from ..rdf.terms import Term
from ..rdf.triples import RDFGraph, Triple


class Cluster:
    """A set of workers with partitioned RDF data.

    For the columnar engine, every worker additionally serves an
    :class:`~repro.rdf.encoding.EncodedGraph` *fragment* of its graph,
    built lazily against one cluster-wide
    :class:`~repro.rdf.encoding.TermDictionary` (the dataset's when the
    cluster was built from one), so ids are join-compatible across
    workers and repartition shuffles move bare integers.
    """

    def __init__(
        self,
        partitioning: Partitioning,
        dictionary: Optional[TermDictionary] = None,
    ) -> None:
        self.partitioning = partitioning
        self.workers: List[RDFGraph] = partitioning.node_graphs
        if not self.workers:
            raise ValueError(
                "a cluster needs at least one worker; the partitioning "
                f"{partitioning.method_name!r} produced no node graphs"
            )
        self._dictionary = dictionary
        # liveness/fragment state below is unlocked by design: a Cluster
        # is owned by one executor thread (chaos suites mutate liveness
        # between queries, never during one).  A multi-threaded server
        # must either confine each Cluster to a session thread or add a
        # lock + `#: guarded-by:` declarations (concurrency audit, PR 8).
        #: lazily encoded per-worker fragments; invalidated per worker
        #: by :meth:`fail_worker` (the re-encode is the replica re-scan)
        self._fragments: Dict[int, EncodedGraph] = {}
        self._dead: Set[int] = set()
        #: degraded-mode graph overrides: dead workers -> empty graph,
        #: re-route targets -> their graph merged with the lost partition
        self._override: Dict[int, RDFGraph] = {}
        #: callbacks invoked by :meth:`heal` (e.g. a circuit breaker
        #: closing once its quarantined workers come back)
        self._heal_listeners: List[Callable[[], None]] = []
        #: layout epoch: bumped on every liveness change
        #: (:meth:`fail_worker` and :meth:`heal`).  Streaming scans
        #: snapshot it and restart from the degraded layout when it
        #: moves mid-stream — the sink's set semantics absorb the
        #: re-emitted prefix, so restart-from-scratch is idempotent.
        self.epoch = 0

    @classmethod
    def build(
        cls, dataset: Dataset, method: PartitioningMethod, cluster_size: int = 10
    ) -> "Cluster":
        """Partition *dataset* with *method* across *cluster_size* workers.

        The dataset's term dictionary (already fed during its
        statistics pass) becomes the cluster-wide id space, so fragment
        encoding is pure lookups — the dataset is never re-interned.
        """
        if cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
        return cls(method.partition(dataset, cluster_size), dataset.dictionary)

    @property
    def size(self) -> int:
        """Number of worker slots (dead workers keep their slot)."""
        return len(self.workers)

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    @property
    def live_size(self) -> int:
        """Number of workers still alive."""
        return self.size - len(self._dead)

    @property
    def live_workers(self) -> List[int]:
        """Indexes of the workers still alive, ascending."""
        return [i for i in range(self.size) if i not in self._dead]

    @property
    def failed_workers(self) -> List[int]:
        """Indexes of the workers that have crashed, ascending."""
        return sorted(self._dead)

    def is_live(self, worker: int) -> bool:
        """Whether *worker* is still alive."""
        return worker not in self._dead

    def worker_graph(self, worker: int) -> RDFGraph:
        """The graph *worker* currently serves (empty once it is dead)."""
        return self._override.get(worker, self.workers[worker])

    def worker_graphs(self) -> List[RDFGraph]:
        """Per-slot effective graphs; the original list while pristine.

        The fast path keys on overrides, not liveness: adaptive
        migration (:mod:`repro.partitioning.adaptive`) merges replicas
        into *healthy* workers, and those placements must be visible to
        scans exactly like a re-routed partition is.
        """
        if not self._override:
            return self.workers
        return [self.worker_graph(i) for i in range(self.size)]

    # ------------------------------------------------------------------
    # encoded fragments (columnar engine)
    # ------------------------------------------------------------------
    @property
    def dictionary(self) -> TermDictionary:
        """The cluster-wide term↔id table (created on first use)."""
        if self._dictionary is None:
            self._dictionary = TermDictionary()
        return self._dictionary

    def worker_fragment(self, worker: int) -> EncodedGraph:
        """The encoded fragment *worker* currently serves (cached).

        Built from :meth:`worker_graph`, so degraded layouts are
        reflected: a re-route target's fragment is re-encoded from its
        merged graph — the simulated replica re-scan of recovery.
        """
        fragment = self._fragments.get(worker)
        if fragment is None:
            fragment = EncodedGraph.from_graph(
                self.worker_graph(worker), self.dictionary
            )
            self._fragments[worker] = fragment
        return fragment

    def worker_fragments(self) -> List[EncodedGraph]:
        """Per-slot encoded fragments under the current liveness state."""
        return [self.worker_fragment(i) for i in range(self.size)]

    def merge_replica(self, worker: int, triples: Iterable[Triple]) -> int:
        """Merge *triples* into the graph *worker* serves; count additions.

        The shared replica primitive behind fail-stop re-routing and
        adaptive migration (:mod:`repro.partitioning.adaptive`): the
        worker's served graph is rebuilt as a copy (so
        ``partitioning.node_graphs`` — the durable replica — is never
        mutated) and its encoded fragment is invalidated, forcing the
        next columnar scan to re-encode from the merged graph (the
        simulated replica re-scan).  Does **not** bump the epoch; the
        caller owns the batching of layout changes.
        """
        merged = RDFGraph(self.worker_graph(worker))
        added = merged.add_all(triples)
        self._override[worker] = merged
        self._fragments.pop(worker, None)
        return added

    def fail_worker(self, worker: int) -> Tuple[int, int]:
        """Crash *worker* and re-route its partition in degraded mode.

        The lost partition (recovered from the durable replica — the
        partitioning's untouched node graph, plus anything a previous
        re-route or adaptive migration already merged into this worker)
        is merged into the next live worker's graph.  Returns
        ``(target, triples_moved)`` so the caller can price the replica
        re-scan.
        """
        if not 0 <= worker < self.size:
            raise ValueError(f"no such worker {worker} (cluster size {self.size})")
        if worker in self._dead:
            raise ValueError(f"worker {worker} is already dead")
        if self.live_size <= 1:
            raise ValueError("cannot fail the last live worker")
        lost_graph = self.worker_graph(worker)
        self._dead.add(worker)
        live = self.live_workers
        target = next((i for i in live if i > worker), live[0])
        self.merge_replica(target, lost_graph)
        self._override[worker] = RDFGraph()
        self._fragments.pop(worker, None)
        self.epoch += 1
        return target, len(lost_graph)

    def add_heal_listener(self, callback: Callable[[], None]) -> None:
        """Register *callback* to run whenever the cluster heals."""
        self._heal_listeners.append(callback)

    def heal(self) -> None:
        """Resurrect every worker and restore the original layout.

        Heal listeners run afterwards, so anything tracking liveness
        (the executor's circuit breaker) observes the healthy cluster.
        """
        self._dead.clear()
        self._override.clear()
        self._fragments.clear()
        self.epoch += 1
        for callback in self._heal_listeners:
            callback()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, term: Term) -> int:
        """The worker a term hashes to (repartition-join routing).

        Dead workers are skipped deterministically: the original target
        slot is folded onto the list of live workers, so routing stays
        a pure function of (term, liveness state).
        """
        target = hash_term(term, self.size)
        if target in self._dead:
            live = self.live_workers
            target = live[target % len(live)]
        return target

    def route_id(self, ident: int) -> int:
        """The worker a term *id* hashes to (columnar repartition).

        Same liveness-folding contract as :meth:`route`, but the hash
        is integer arithmetic on the dictionary id — no term is ever
        decoded (or stringified) to route a shuffled row.  The two
        routings may place the same binding on different workers; that
        only changes *where* a row is joined, never the result or the
        shipped-tuple counts.
        """
        target = ((ident * 2654435761) & 0xFFFFFFFF) % self.size
        if target in self._dead:
            live = self.live_workers
            target = live[target % len(live)]
        return target

    def __repr__(self) -> str:
        sizes = [len(g) for g in self.worker_graphs()]
        dead = f", dead={self.failed_workers}" if self._dead else ""
        return (
            f"Cluster({self.size} workers, method={self.partitioning.method_name}, "
            f"loads={sizes}{dead})"
        )
