"""The simulated cluster: workers holding partitioned data.

Plays the role of the paper's 10-node RDF-3X + Hadoop testbed.  A
:class:`Cluster` owns one :class:`~repro.rdf.triples.RDFGraph` per
worker (produced by a partitioning method) plus the term-hash routing
used by repartition joins.
"""

from __future__ import annotations

from typing import List

from ..partitioning.base import Partitioning, PartitioningMethod, hash_term
from ..rdf.dataset import Dataset
from ..rdf.terms import Term
from ..rdf.triples import RDFGraph


class Cluster:
    """A set of workers with partitioned RDF data."""

    def __init__(self, partitioning: Partitioning) -> None:
        self.partitioning = partitioning
        self.workers: List[RDFGraph] = partitioning.node_graphs

    @classmethod
    def build(
        cls, dataset: Dataset, method: PartitioningMethod, cluster_size: int = 10
    ) -> "Cluster":
        """Partition *dataset* with *method* across *cluster_size* workers."""
        return cls(method.partition(dataset, cluster_size))

    @property
    def size(self) -> int:
        """Number of workers."""
        return len(self.workers)

    def route(self, term: Term) -> int:
        """The worker a term hashes to (repartition-join routing)."""
        return hash_term(term, self.size)

    def __repr__(self) -> str:
        sizes = [len(g) for g in self.workers]
        return (
            f"Cluster({self.size} workers, method={self.partitioning.method_name}, "
            f"loads={sizes})"
        )
