"""Columnar execution: relations over dictionary-encoded integer keys.

The reference engine (:mod:`repro.engine.relations`) joins sets of rich
:class:`~repro.rdf.terms.Term` tuples; every hash and equality check
walks dataclass fields and strings.  This module is the id-encoded
counterpart: an :class:`EncodedRelation` holds rows of plain ``int``
tuples keyed into a shared :class:`~repro.rdf.encoding.TermDictionary`,
scans read contiguous slices of the per-predicate sorted indexes of an
:class:`~repro.rdf.encoding.EncodedGraph`, and joins/projections never
touch a term object.  Terms are **materialized late**: only when the
final result is read (:meth:`EncodedRelation.decode`) are ids mapped
back to terms, so the whole pipeline moves machine integers — exactly
why the paper's prototype can treat per-worker evaluation (RDF-3X) as
essentially free next to optimization time.

Operator semantics are identical to the reference engine (set
semantics, same schemas, same tuple counts), which is what the
``columnar ≡ reference`` property tests pin down.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..rdf.encoding import EncodedGraph, TermDictionary
from ..rdf.terms import Variable
from ..sparql.ast import TriplePattern
from .relations import Relation, greedy_multi_join

#: one encoded binding row: term ids, positionally aligned to the schema
IdRow = Tuple[int, ...]


def _row_getter(positions: List[int]) -> Callable[[IdRow], IdRow]:
    """A C-speed row builder: ``row -> tuple(row[p] for p in positions)``.

    ``operator.itemgetter`` runs the whole gather in C, but returns a
    bare item (not a 1-tuple) for a single position and cannot express
    the empty gather — both wrapped here so callers always get a row.
    """
    if not positions:
        return lambda row: ()
    if len(positions) == 1:
        p = positions[0]
        return lambda row: (row[p],)
    return itemgetter(*positions)


class EncodedRelation:
    """An immutable-schema set of integer binding rows.

    Mirrors :class:`~repro.engine.relations.Relation` field for field
    (variables sorted by name, ``rows`` as a set, positional access),
    plus the :attr:`dictionary` needed to materialize terms at the very
    end of execution.
    """

    __slots__ = ("variables", "rows", "dictionary", "_positions")

    def __init__(
        self,
        variables: Iterable[Variable],
        dictionary: TermDictionary,
        rows: Optional[Set[IdRow]] = None,
    ):
        self.variables: Tuple[Variable, ...] = tuple(
            sorted(set(variables), key=lambda v: v.name)
        )
        self.dictionary = dictionary
        self.rows: Set[IdRow] = rows if rows is not None else set()
        self._positions: Dict[Variable, int] = {
            v: i for i, v in enumerate(self.variables)
        }

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[IdRow]:
        return iter(self.rows)

    def position(self, variable: Variable) -> int:
        """Column index of *variable* in the schema."""
        return self._positions[variable]

    def has_variable(self, variable: Variable) -> bool:
        """Whether *variable* is part of the schema."""
        return variable in self._positions

    def project(self, variables: Iterable[Variable]) -> "EncodedRelation":
        """Project onto *variables* (set semantics; identity is free).

        Like :meth:`Relation.project`, projecting onto the full schema
        returns ``self`` without rebuilding rows.
        """
        kept = [
            v
            for v in sorted(set(variables), key=lambda v: v.name)
            if v in self._positions
        ]
        if tuple(kept) == self.variables:
            return self
        emit = _row_getter([self._positions[v] for v in kept])
        return EncodedRelation(kept, self.dictionary, set(map(emit, self.rows)))

    def union_inplace(self, other: "EncodedRelation") -> None:
        """Add *other*'s rows (schemas must match exactly)."""
        if other.variables != self.variables:
            raise ValueError("union requires identical schemas")
        self.rows.update(other.rows)

    def empty_like(self) -> "EncodedRelation":
        """A fresh empty relation with this schema and dictionary."""
        return EncodedRelation(self.variables, self.dictionary)

    def decode(self) -> Relation:
        """Materialize terms: the equivalent reference :class:`Relation`.

        This is the *only* place the columnar pipeline touches term
        objects — late materialization pays the decoding cost once, on
        final result rows only, never on intermediates.
        """
        decode = self.dictionary.decode
        rows = {tuple(decode(ident) for ident in row) for row in self.rows}
        return Relation(self.variables, rows)

    def __repr__(self) -> str:
        names = ",".join(v.name for v in self.variables)
        return f"EncodedRelation([{names}], {len(self.rows)} rows)"


def scan_pattern_encoded(
    fragment: EncodedGraph, pattern: TriplePattern
) -> EncodedRelation:
    """Match one triple pattern against an encoded fragment.

    Pattern constants are looked up (never interned) in the fragment's
    dictionary; an unknown constant matches nothing and short-circuits
    to an empty relation.  Bound-predicate patterns — the overwhelmingly
    common case — read contiguous index slices and build rows by
    zipping flat integer columns; variable-predicate patterns fall back
    to the generic id-triple iterator with the same repeated-variable
    checks as the reference scan.
    """
    dictionary = fragment.dictionary
    variables = sorted(pattern.variables(), key=lambda v: v.name)
    relation = EncodedRelation(variables, dictionary)
    subject, predicate, object_ = pattern.subject, pattern.predicate, pattern.object

    # encode the constants; an unknown constant matches nothing
    subject_id = object_id = predicate_id = None
    if not isinstance(subject, Variable):
        subject_id = dictionary.lookup(subject)
        if subject_id is None:
            return relation
    if not isinstance(object_, Variable):
        object_id = dictionary.lookup(object_)
        if object_id is None:
            return relation
    if not isinstance(predicate, Variable):
        predicate_id = dictionary.lookup(predicate)
        if predicate_id is None:
            return relation
        return _scan_bound_predicate(
            fragment, relation, subject, object_, subject_id, object_id, predicate_id
        )

    # variable predicate: generic path over the id-triple iterator
    terms = pattern.terms()
    first_source: Dict[Variable, int] = {}
    checks: List[Tuple[int, int]] = []
    for position, term in enumerate(terms):
        if isinstance(term, Variable):
            if term in first_source:
                checks.append((first_source[term], position))
            else:
                first_source[term] = position
    emit = _row_getter([first_source[v] for v in relation.variables])
    rows = relation.rows
    for t in fragment.scan(subject_id, None, object_id):  # lint: disable=LINT014 per-scan row loop; the executor polls at the operator boundary
        if checks and any(t[a] != t[b] for a, b in checks):
            continue
        rows.add(emit(t))
    return relation


def _scan_bound_predicate(
    fragment: EncodedGraph,
    relation: EncodedRelation,
    subject,
    object_,
    subject_id: Optional[int],
    object_id: Optional[int],
    predicate_id: int,
) -> EncodedRelation:
    """The indexed fast paths for a concrete-predicate pattern."""
    index = fragment.index_for(predicate_id)
    if index is None:
        return relation
    subject_var = subject if isinstance(subject, Variable) else None
    object_var = object_ if isinstance(object_, Variable) else None
    if subject_var is not None and object_var is not None:
        if subject_var == object_var:
            # ?x p ?x — keep only the diagonal
            relation.rows.update(
                (s,)
                for s, o in zip(index.spo_subjects, index.spo_objects)
                if s == o
            )
        elif relation.variables[0] == subject_var:
            relation.rows.update(zip(index.spo_subjects, index.spo_objects))
        else:
            relation.rows.update(zip(index.spo_objects, index.spo_subjects))
    elif subject_var is not None:
        assert object_id is not None
        relation.rows.update((s,) for s in index.subjects_for(object_id))
    elif object_var is not None:
        assert subject_id is not None
        relation.rows.update((o,) for o in index.objects_for(subject_id))
    else:
        assert subject_id is not None and object_id is not None
        if index.contains(subject_id, object_id):
            relation.rows.add(())
    return relation


def iter_pattern_rows(
    fragment: EncodedGraph, pattern: TriplePattern
) -> Iterator[IdRow]:
    """Stream one pattern's binding rows from an encoded fragment.

    The generator twin of :func:`scan_pattern_encoded` for the
    pipelined engine: rows come out one at a time (schema order:
    variables sorted by name) instead of being materialized into a
    relation, so a consumer can chunk, bound its buffering, and stop
    early on ``LIMIT``.  Rows are *not* deduplicated here — downstream
    set semantics (chunk joins, the sink) absorb duplicates, exactly as
    cross-worker duplicates are absorbed in the materialized engines.
    """
    dictionary = fragment.dictionary
    subject, predicate, object_ = pattern.subject, pattern.predicate, pattern.object

    subject_id = object_id = predicate_id = None
    if not isinstance(subject, Variable):
        subject_id = dictionary.lookup(subject)
        if subject_id is None:
            return
    if not isinstance(object_, Variable):
        object_id = dictionary.lookup(object_)
        if object_id is None:
            return
    if not isinstance(predicate, Variable):
        predicate_id = dictionary.lookup(predicate)
        if predicate_id is None:
            return
        index = fragment.index_for(predicate_id)
        if index is None:
            return
        subject_var = subject if isinstance(subject, Variable) else None
        object_var = object_ if isinstance(object_, Variable) else None
        if subject_var is not None and object_var is not None:
            if subject_var == object_var:
                for s, o in zip(index.spo_subjects, index.spo_objects):
                    if s == o:
                        yield (s,)
            elif subject_var.name <= object_var.name:
                yield from zip(index.spo_subjects, index.spo_objects)
            else:
                yield from zip(index.spo_objects, index.spo_subjects)
        elif subject_var is not None:
            assert object_id is not None
            for s in index.subjects_for(object_id):
                yield (s,)
        elif object_var is not None:
            assert subject_id is not None
            for o in index.objects_for(subject_id):
                yield (o,)
        else:
            assert subject_id is not None and object_id is not None
            if index.contains(subject_id, object_id):
                yield ()
        return

    # variable predicate: generic path, same repeated-variable checks
    # as scan_pattern_encoded
    variables = sorted(pattern.variables(), key=lambda v: v.name)
    terms = pattern.terms()
    first_source: Dict[Variable, int] = {}
    checks: List[Tuple[int, int]] = []
    for position, term in enumerate(terms):
        if isinstance(term, Variable):
            if term in first_source:
                checks.append((first_source[term], position))
            else:
                first_source[term] = position
    emit = _row_getter([first_source[v] for v in variables])
    for t in fragment.scan(subject_id, None, object_id):
        if checks and any(t[a] != t[b] for a, b in checks):
            continue
        yield emit(t)


def hash_join_encoded(
    left: EncodedRelation, right: EncodedRelation
) -> EncodedRelation:
    """Natural hash join on all shared variables, over integer keys.

    Structurally identical to the reference
    :func:`~repro.engine.relations.hash_join` (build on the smaller
    side, positional output templates, Cartesian degeneration without
    shared variables) — but keys and rows are plain ``int`` tuples, so
    hashing and equality are single machine comparisons instead of
    dataclass walks.
    """
    shared = [v for v in left.variables if right.has_variable(v)]
    out_vars = sorted(
        set(left.variables) | set(right.variables), key=lambda v: v.name
    )
    result = EncodedRelation(out_vars, left.dictionary)
    rows = result.rows
    if not shared:
        width = len(left.variables)
        emit = _row_getter(
            [
                left.position(v) if left.has_variable(v)
                else width + right.position(v)
                for v in result.variables
            ]
        )
        for lrow in left.rows:  # lint: disable=LINT014 per-join row loop; callers poll at the operator/chunk boundary
            for rrow in right.rows:
                rows.add(emit(lrow + rrow))
        return result
    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    # join keys gathered in C; a single shared variable keys on the bare
    # int (itemgetter unwraps it), which hashes faster than a 1-tuple
    # and is used consistently on both sides
    build_key = itemgetter(*(build.position(v) for v in shared))
    probe_key = itemgetter(*(probe.position(v) for v in shared))
    # output rows are a C gather over the concatenated (build + probe)
    # row; shared variables read from the build side (equal by the key)
    width = len(build.variables)
    emit = _row_getter(
        [
            build.position(v) if build.has_variable(v)
            else width + probe.position(v)
            for v in result.variables
        ]
    )
    table: Dict[object, List[IdRow]] = {}
    for row in build.rows:
        table.setdefault(build_key(row), []).append(row)
    for prow in probe.rows:  # lint: disable=LINT014 per-join row loop; callers poll at the operator/chunk boundary
        bucket = table.get(probe_key(prow))
        if bucket is None:
            continue
        for brow in bucket:
            rows.add(emit(brow + prow))
    return result


def multi_join_encoded(relations: List[EncodedRelation]) -> EncodedRelation:
    """Join k encoded relations: smallest first, smallest connected next."""
    return greedy_multi_join(relations, hash_join_encoded)


def evaluate_encoded(query, fragment: EncodedGraph) -> Relation:
    """Single-node columnar evaluation, decoded (test/bench oracle)."""
    relations = [scan_pattern_encoded(fragment, tp) for tp in query]
    result = multi_join_encoded(relations)
    if query.projection:
        result = result.project(query.projection)
    return result.decode()
