"""The plan executor: runs k-ary bushy plans on the simulated cluster.

Every plan node is evaluated into a *distributed relation* — one
:class:`~repro.engine.relations.Relation` per worker:

* **scan** — each worker matches the pattern against its local graph;
* **local join** — each worker joins its own child relations, no data
  moves (correct exactly when the optimizer proved the subquery local);
* **broadcast join** — the k−1 globally smaller inputs are collected
  and replicated to every worker holding the largest input;
* **repartition join** — every input row is rehashed to the worker
  owning its join-variable binding, then joined there.

The executor records actual tuple movement per operator and prices the
plan's critical path with the paper's cost model (Eq. 3 over measured
counts), which is the "query processing time" the Table V reproduction
reports alongside wall-clock time.

Execution is optionally *fault-tolerant*: given a
:class:`~repro.engine.faults.FaultInjector`, every operator attempt
passes an operator boundary where a seeded fault may fire, and a
:class:`~repro.engine.recovery.RecoveryManager` retries, re-routes
crashed workers' partitions, and prices the recovery overhead into the
critical path.  Without an injector (or with ``fault_rate=0``) the
executor takes exactly the historical zero-overhead path.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (analysis → core)
    from ..analysis.plan_verifier import PlanVerifier

from ..core.cost import CostParameters, PAPER_PARAMETERS
from ..core.governance import QueryAborted, QueryBudget
from ..core.plans import JoinAlgorithm, JoinNode, PlanNode, ScanNode
from ..observability import runtime as obs
from ..observability.spans import NULL_SPAN, Span
from ..rdf.terms import Variable
from ..rdf.triples import RDFGraph
from ..sparql.ast import BGPQuery
from .base import (
    ENGINES,
    Engine,
    StreamingContext,
    resolve_engine,
)
from .cluster import Cluster
from .faults import FaultInjector
from .metrics import ExecutionMetrics, OperatorMetrics
from .recovery import (
    DEFAULT_RETRY_POLICY,
    CircuitBreaker,
    RecoveryManager,
    RetryPolicy,
)
from .relations import Relation, multi_join, scan_pattern

# importing the streaming backend registers its EngineSpec, so every
# consumer of ENGINES (CLI choices, session validation, benchmarks)
# sees "pipelined" as soon as the executor is importable
from . import pipelined as _pipelined  # noqa: F401  (registration side effect)

DistributedRelation = List[Relation]


def _subtree_predicates(node: PlanNode) -> List[str]:
    """Sorted predicate labels of the scans under *node*.

    Variable predicates label as ``"?<name>"``.  Used to attribute one
    shipped input's tuple count to the predicates whose data it
    carries (see ``OperatorMetrics.shipped_by_predicate``).
    """
    labels = {
        f"?{leaf.pattern.predicate.name}"
        if isinstance(leaf.pattern.predicate, Variable)
        else str(leaf.pattern.predicate)
        for leaf in node.leaves()
        if leaf.pattern is not None
    }
    return sorted(labels)


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed (malformed node)."""


class Executor:
    """Executes plans against a :class:`Cluster`.

    ``engine`` selects the physical backend rows flow through — a
    registered name (any entry of :data:`~repro.engine.base.ENGINES`)
    or a ready :class:`~repro.engine.base.Engine` instance
    (bring-your-own backends need not be registered):

    * ``"reference"`` — :class:`~repro.engine.relations.Relation` over
      term tuples; the original, oracle implementation.
    * ``"columnar"`` — :class:`~repro.engine.columnar.EncodedRelation`
      over dictionary ids with indexed fragment scans; terms are only
      materialized once, on the final projected result.
    * ``"pipelined"`` — chunked streaming over encoded ids
      (:mod:`~repro.engine.pipelined`); identical result rows, bounded
      inter-operator buffering, early first row and ``LIMIT`` pushdown.

    Every engine executes the *same* plans and returns the same result
    rows.  The two materialized engines additionally match each other's
    tuple counts and priced critical path exactly (the engine changes
    wall-clock time, never the cost model's inputs); the streaming
    engine evaluates joins globally, so its counts price the pipeline
    topology it actually ran — without the cross-worker duplicate
    production replicated partitionings cause — and its critical path
    can come out lower.

    With a fault injector, a cluster that loses workers stays degraded
    after :meth:`execute` returns (as a real cluster would); call
    :meth:`Cluster.heal` or build a fresh cluster to restore it.
    """

    def __init__(
        self,
        cluster: Cluster,
        parameters: CostParameters = PAPER_PARAMETERS,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        plan_verifier: Optional["PlanVerifier"] = None,
        engine: Union[str, Engine] = "reference",
        circuit_breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.engine, self._impl = resolve_engine(engine)
        self.cluster = cluster
        self.parameters = parameters
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        #: opt-in worker quarantine (changes seeded fault trajectories,
        #: so it is never on by default); closes again when the cluster
        #: heals
        self.circuit_breaker = circuit_breaker
        if circuit_breaker is not None:
            cluster.add_heal_listener(circuit_breaker.reset)
        # engine dispatch, resolved once: the k-way join and the
        # repartition routing function (the routing callable reads the
        # cluster's *current* liveness state at call time)
        self._multi_join = self._impl.join
        self._route = self._impl.route(cluster)
        #: optional pre-execution gate: a plan failing invariant
        #: verification raises before any operator runs (``--verify``)
        self.plan_verifier = plan_verifier
        self._recovery: Optional[RecoveryManager] = None
        self._budget: Optional[QueryBudget] = None
        #: distributed relations computed but not yet consumed; a
        #: fail-stop migrates the dead worker's slice in each of them
        self._inflight: List[DistributedRelation] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: PlanNode,
        query: Optional[BGPQuery] = None,
        budget: Optional[QueryBudget] = None,
        limit: Optional[int] = None,
    ) -> Tuple[Relation, ExecutionMetrics]:
        """Run *plan*; return the (deduplicated, projected) result.

        When *query* is given and has a projection, the final relation
        is projected onto it.

        A *limit* caps the result at that many rows.  Streaming engines
        push it into the pipeline (execution stops as soon as the limit
        is reached; ``metrics.limit_pushdown`` is set); materialized
        engines truncate the final result deterministically (rows
        sorted by string form).  The two selections may keep different
        rows — a LIMIT without ORDER BY never promises which.

        A *budget* is checked at every operator boundary (streaming
        engines: at every chunk boundary): the produced rows are
        charged against its row budget, its deadline and cancellation
        token are polled, and the recovery manager charges every retry
        against its query-wide retry budget.  A breach raises
        :class:`~repro.core.governance.QueryAborted` enriched with the
        partial metrics, the fault-event attempt history, and the open
        span trace — execution never degrades partially, there is no
        partial answer to degrade to.
        """
        if self.plan_verifier is not None:
            self.plan_verifier.check(plan)
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        metrics = ExecutionMetrics()
        if self.fault_injector is not None and self.fault_injector.active:
            self.fault_injector.reset()  # replay from the seed every run
            self._recovery = RecoveryManager(
                self.cluster,
                self.fault_injector,
                self.retry_policy,
                self.parameters,
                budget=budget,
                breaker=self.circuit_breaker,
            )
            metrics.fault_injection_enabled = True
        else:
            self._recovery = None
        self._budget = budget
        self._inflight = []
        with obs.span(
            "execute",
            workers=self.cluster.size,
            fault_injection=metrics.fault_injection_enabled,
            engine=self.engine,
            streaming=self._impl.streaming,
        ) as sp:
            started = time.perf_counter()
            try:
                if self._impl.streaming:
                    # the engine pulls chunks through the whole plan;
                    # projection/LIMIT already happened in its sink
                    context = StreamingContext(
                        cluster=self.cluster,
                        parameters=self.parameters,
                        plan=plan,
                        query=query,
                        metrics=metrics,
                        recovery=self._recovery,
                        budget=budget,
                        limit=limit,
                        started=started,
                    )
                    streamed, critical = self._impl.run_streaming(context)
                    result = self._impl.decode(streamed)
                else:
                    distributed, critical = self._execute(plan, metrics)
                    result = self._collect(distributed)
                    if query is not None and query.projection:
                        result = result.project(query.projection)
                    # late materialization: decode only the final rows
                    # (the reference engine's decode is the identity)
                    result = self._impl.decode(result)
                    if limit is not None and len(result) > limit:
                        kept = set(sorted(result.rows, key=str)[:limit])
                        result = Relation(result.variables, kept)
            except QueryAborted as abort:
                metrics.wall_seconds = time.perf_counter() - started
                self._enrich_abort(abort, metrics, query)
                raise
            metrics.wall_seconds = time.perf_counter() - started
            metrics.result_rows = len(result)
            metrics.critical_path_cost = critical
            if metrics.first_row_seconds is None:
                # materialized engines: the first row is only available
                # once the whole result is — reconcile to wall time
                metrics.first_row_seconds = metrics.wall_seconds
            if self._recovery is not None:
                metrics.workers_failed = self._recovery.workers_failed
            if sp is not NULL_SPAN:
                sp.set(
                    result_rows=metrics.result_rows,
                    operators=len(metrics.operators),
                    simulated_time=metrics.critical_path_cost,
                    wall_seconds=metrics.wall_seconds,
                    workers_failed=metrics.workers_failed,
                )
                self._flush_metrics(metrics)
        self._inflight = []
        return result, metrics

    # ------------------------------------------------------------------
    # governance
    # ------------------------------------------------------------------
    def _govern(self, op: OperatorMetrics) -> None:
        """One operator-boundary budget check (no budget → no-op)."""
        budget = self._budget
        if budget is None:
            return
        budget.charge_rows(
            op.tuples_produced, phase="execute", operator=op.operator
        )
        budget.check_deadline(phase="execute", operator=op.operator)
        budget.check_cancelled(phase="execute", operator=op.operator)

    def _enrich_abort(
        self,
        abort: QueryAborted,
        metrics: ExecutionMetrics,
        query: Optional[BGPQuery],
    ) -> None:
        """Attach execution context to an abort on its way out."""
        metrics.abort_cause = abort.cause.value
        if self._recovery is not None:
            metrics.workers_failed = self._recovery.workers_failed
        if abort.partial_metrics is None:
            abort.partial_metrics = metrics
        if not abort.query_id and query is not None:
            abort.query_id = query.name or ""
        if not abort.attempts and self._recovery is not None:
            abort.attempts = tuple(self._recovery.injector.events)
        if not abort.trace:
            tracer = obs.current_tracer()
            if tracer is not None:
                abort.trace = tracer.open_span_names()
        obs.count("governance.aborts")
        obs.event(
            "governance.abort",
            cause=abort.cause.value,
            phase=abort.phase,
            operator=abort.operator,
        )

    def _flush_metrics(self, metrics: ExecutionMetrics) -> None:
        """Mirror one execution's totals into the active metrics registry.

        Called once per :meth:`execute` (never per operator or per
        tuple), matching the reconciliation contract of
        :meth:`~repro.engine.metrics.ExecutionMetrics.summary`.
        """
        registry = obs.metrics()
        if registry is None:
            return
        registry.counter("engine.tuples_read").inc(metrics.total_tuples_read)
        registry.counter("engine.tuples_shipped").inc(metrics.total_tuples_shipped)
        registry.counter("engine.tuples_produced").inc(metrics.total_tuples_produced)
        registry.counter("engine.result_rows").inc(metrics.result_rows)
        registry.counter("engine.retries").inc(metrics.total_retries)
        registry.counter("engine.faults_injected").inc(metrics.total_faults_injected)
        registry.histogram("engine.simulated_time").observe(
            metrics.critical_path_cost
        )
        breakdown = sorted(metrics.shipped_by_predicate.items())
        for predicate, count in breakdown:
            registry.counter(
                f"engine.tuples_shipped.predicate.{predicate}"
            ).inc(count)

    # ------------------------------------------------------------------
    # node evaluation
    # ------------------------------------------------------------------
    def _execute(
        self, node: PlanNode, metrics: ExecutionMetrics
    ) -> Tuple[DistributedRelation, float]:
        if isinstance(node, ScanNode):
            return self._execute_scan(node, metrics)
        if isinstance(node, JoinNode):
            return self._execute_join(node, metrics)
        raise ExecutionError(f"unknown plan node type {type(node).__name__}")

    def _execute_scan(
        self, node: ScanNode, metrics: ExecutionMetrics
    ) -> Tuple[DistributedRelation, float]:
        if node.pattern is None:
            raise ExecutionError("scan node carries no pattern")
        sp = obs.span("scan", pattern=node.pattern_index)
        started = time.perf_counter()

        def run_once() -> Tuple[DistributedRelation, OperatorMetrics]:
            relations = self._impl.scan(self.cluster, node.pattern)
            produced = sum(len(r) for r in relations)
            op = OperatorMetrics(
                operator=f"scan[{node.pattern_index}]",
                algorithm="scan",
                tuples_read=produced,
                tuples_produced=produced,
            )
            return relations, op

        with sp:
            if self._recovery is None:
                relations, op = run_once()
            else:
                relations, op = self._recovery.run_operator(
                    f"scan[{node.pattern_index}]", run_once, self._inflight
                )
                self._inflight.append(relations)
            op.wall_seconds = time.perf_counter() - started
            if sp is not NULL_SPAN:
                self._annotate(sp, op)
        metrics.operators.append(op)
        self._govern(op)
        return relations, op.recovery_cost

    def _execute_join(
        self, node: JoinNode, metrics: ExecutionMetrics
    ) -> Tuple[DistributedRelation, float]:
        with obs.span(
            "join", algorithm=node.algorithm.value, arity=node.arity
        ) as sp:
            children: List[DistributedRelation] = []
            child_critical = 0.0
            for child in node.children:
                relation, critical = self._execute(child, metrics)
                children.append(relation)
                child_critical = max(child_critical, critical)
            started = time.perf_counter()

            def run_once() -> Tuple[DistributedRelation, OperatorMetrics]:
                if node.algorithm is JoinAlgorithm.LOCAL:
                    return self._local_join(node, children)
                if node.algorithm is JoinAlgorithm.BROADCAST:
                    return self._broadcast_join(node, children)
                return self._repartition_join(node, children)

            if self._recovery is None:
                result, op = run_once()
            else:
                result, op = self._recovery.run_operator(
                    self._label(node), run_once, self._inflight
                )
                for child in children:  # lint: disable=LINT014 bounded by operator arity; _govern polls at the operator boundary below
                    self._discard_inflight(child)
                self._inflight.append(result)
            op.wall_seconds = time.perf_counter() - started
            if sp is not NULL_SPAN:
                self._annotate(sp, op, simulated_cost=op.simulated_cost(self.parameters))
        metrics.operators.append(op)
        self._govern(op)
        return result, child_critical + op.total_cost(self.parameters)

    @staticmethod
    def _annotate(sp: "Span", op: OperatorMetrics, **extra: float) -> None:
        """Copy one operator's counters onto its span (tracing active)."""
        sp.set(
            operator=op.operator,
            tuples_read=op.tuples_read,
            tuples_shipped=op.tuples_shipped,
            tuples_produced=op.tuples_produced,
            wall_seconds=op.wall_seconds,
            retries=op.retries,
            faults_injected=op.faults_injected,
            recovery_cost=op.recovery_cost,
            **extra,
        )

    # -- local ----------------------------------------------------------
    def _local_join(
        self, node: JoinNode, children: Sequence[DistributedRelation]
    ) -> Tuple[DistributedRelation, OperatorMetrics]:
        read = sum(len(r) for child in children for r in child)
        result: DistributedRelation = []
        for worker in range(self.cluster.size):
            result.append(self._multi_join([child[worker] for child in children]))
        op = OperatorMetrics(
            operator=self._label(node),
            algorithm=JoinAlgorithm.LOCAL.value,
            tuples_read=read,
            tuples_shipped=0,
            tuples_produced=sum(len(r) for r in result),
        )
        return result, op

    # -- broadcast -------------------------------------------------------
    def _broadcast_join(
        self, node: JoinNode, children: Sequence[DistributedRelation]
    ) -> Tuple[DistributedRelation, OperatorMetrics]:
        read = sum(len(r) for child in children for r in child)
        sizes = [sum(len(r) for r in child) for child in children]
        largest = max(range(len(children)), key=lambda i: sizes[i])
        broadcast: List[Relation] = []
        shipped = 0
        by_predicate: Dict[str, int] = {}
        for i, child in enumerate(children):  # lint: disable=LINT014 operator-boundary cadence: _govern charges rows and polls after every operator
            if i == largest:
                continue
            collected = self._collect(child)
            moved = len(collected) * self.cluster.live_size
            shipped += moved
            predicates = _subtree_predicates(node.children[i])
            for predicate in predicates:
                by_predicate[predicate] = by_predicate.get(predicate, 0) + moved
            broadcast.append(collected)
        result: DistributedRelation = []
        for worker in range(self.cluster.size):
            result.append(
                self._multi_join([children[largest][worker]] + broadcast)
            )
        op = OperatorMetrics(
            operator=self._label(node),
            algorithm=JoinAlgorithm.BROADCAST.value,
            tuples_read=read,
            tuples_shipped=shipped,
            tuples_produced=sum(len(r) for r in result),
            shipped_by_predicate=by_predicate,
        )
        return result, op

    # -- repartition ------------------------------------------------------
    def _repartition_join(
        self, node: JoinNode, children: Sequence[DistributedRelation]
    ) -> Tuple[DistributedRelation, OperatorMetrics]:
        variable = node.join_variable or self._common_variable(children)
        read = sum(len(r) for child in children for r in child)
        shipped = 0
        by_predicate: Dict[str, int] = {}
        route = self._route
        repartitioned: List[List[Relation]] = []
        for index, child in enumerate(children):  # lint: disable=LINT014 operator-boundary cadence: _govern charges rows and polls after every operator
            buckets = [child[0].empty_like() for _ in range(self.cluster.size)]
            child_shipped = 0
            for relation in child:  # lint: disable=LINT014 operator-boundary cadence: _govern charges rows and polls after every operator
                if not relation.has_variable(variable):
                    raise ExecutionError(
                        f"repartition input lacks join variable {variable}"
                    )
                position = relation.position(variable)
                for row in relation.rows:
                    target = route(row[position])
                    buckets[target].rows.add(row)
                    child_shipped += 1
            shipped += child_shipped
            predicates = _subtree_predicates(node.children[index])
            for predicate in predicates:
                by_predicate[predicate] = (
                    by_predicate.get(predicate, 0) + child_shipped
                )
            repartitioned.append(buckets)
        result: DistributedRelation = []
        for worker in range(self.cluster.size):
            result.append(
                self._multi_join([child[worker] for child in repartitioned])
            )
        op = OperatorMetrics(
            operator=self._label(node),
            algorithm=JoinAlgorithm.REPARTITION.value,
            tuples_read=read,
            tuples_shipped=shipped,
            tuples_produced=sum(len(r) for r in result),
            shipped_by_predicate=by_predicate,
        )
        return result, op

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _collect(self, distributed: DistributedRelation) -> Relation:
        """Union a distributed relation on one node (deduplicating)."""
        if not distributed:
            raise ExecutionError(
                "cannot collect a distributed relation with no workers"
            )
        merged = distributed[0].empty_like()
        for relation in distributed:
            merged.union_inplace(relation)
        return merged

    def _discard_inflight(self, distributed: DistributedRelation) -> None:
        """Drop a consumed distributed relation from the in-flight registry."""
        for index, candidate in enumerate(self._inflight):
            if candidate is distributed:
                del self._inflight[index]
                return

    @staticmethod
    def _common_variable(children: Sequence[DistributedRelation]) -> Variable:
        shared = set(children[0][0].variables)
        for child in children[1:]:
            shared &= set(child[0].variables)
        if not shared:
            raise ExecutionError("repartition join without a shared variable")
        return sorted(shared, key=lambda v: v.name)[0]

    @staticmethod
    def _label(node: JoinNode) -> str:
        variable = f"?{node.join_variable.name}" if node.join_variable else "?"
        return f"{node.algorithm.value}-join({node.arity}) on {variable}"


def evaluate_reference(query: BGPQuery, graph: RDFGraph) -> Relation:
    """Single-node reference evaluation (correctness oracle for tests)."""
    relations = [scan_pattern(graph, tp) for tp in query]
    result = multi_join(relations)
    if query.projection:
        result = result.project(query.projection)
    return result
