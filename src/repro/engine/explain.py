"""EXPLAIN ANALYZE: estimated vs. measured, per operator.

Table VI of the paper argues the cost model "provides a good indication
of the general quality of the plans".  :func:`explain` instruments that
claim for a single plan: it executes the plan, aligns each join
operator's *estimated* cardinality and cost with the *measured* tuple
counts and priced cost, and reports the estimation error (q-error) per
operator — the standard way to audit a cardinality estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, TYPE_CHECKING

from ..core.cost import CostParameters, PAPER_PARAMETERS
from ..core.plans import JoinNode, PlanNode
from ..sparql.ast import BGPQuery
from .cluster import Cluster
from .executor import Executor
from .relations import Relation

if TYPE_CHECKING:  # pragma: no cover
    from .faults import FaultInjector
    from .recovery import RetryPolicy


@dataclass
class OperatorExplain:
    """One operator's estimated-vs-measured row."""

    operator: str
    algorithm: str
    arity: int
    estimated_cardinality: float
    actual_cardinality: int
    estimated_cost: float
    actual_cost: float

    @property
    def q_error(self) -> float:
        """max(est/act, act/est), the symmetric cardinality error."""
        estimated = max(self.estimated_cardinality, 1.0)
        actual = max(float(self.actual_cardinality), 1.0)
        return max(estimated / actual, actual / estimated)


@dataclass
class ExplainReport:
    rows: List[OperatorExplain]
    result_rows: int
    estimated_plan_cost: float
    measured_plan_cost: float
    #: True when a LIMIT was pushed into the streaming pipeline (the
    #: measured counts then cover only the prefix that ran)
    limit_pushdown: bool = False

    @property
    def max_q_error(self) -> float:
        """The worst per-operator q-error."""
        return max((row.q_error for row in self.rows), default=1.0)

    def render(self) -> str:
        """The report as an aligned plain-text table."""
        lines = [
            f"{'operator':34s} {'arity':>5s} {'est.card':>10s} {'act.card':>10s} "
            f"{'q-err':>7s} {'est.cost':>10s} {'act.cost':>10s}"
        ]
        lines.append("-" * len(lines[0]))
        for row in self.rows:
            lines.append(
                f"{row.operator:34s} {row.arity:>5d} "
                f"{row.estimated_cardinality:>10.0f} {row.actual_cardinality:>10d} "
                f"{row.q_error:>7.2f} {row.estimated_cost:>10.2f} "
                f"{row.actual_cost:>10.2f}"
            )
        lines.append(
            f"plan: estimated cost {self.estimated_plan_cost:.2f}, "
            f"measured cost {self.measured_plan_cost:.2f}, "
            f"result rows {self.result_rows}, max q-error {self.max_q_error:.2f}"
        )
        if self.limit_pushdown:
            lines.append(
                "note: LIMIT pushed into the stream — execution stopped "
                "early, so measured counts cover only the prefix that ran"
            )
        return "\n".join(lines)


def explain(
    plan: PlanNode,
    cluster: Cluster,
    query: Optional[BGPQuery] = None,
    parameters: CostParameters = PAPER_PARAMETERS,
    fault_injector: Optional["FaultInjector"] = None,
    retry_policy: Optional["RetryPolicy"] = None,
    engine: str = "reference",
    limit: Optional[int] = None,
) -> Tuple[Relation, ExplainReport]:
    """Execute *plan* and build the estimated-vs-measured report.

    Join operators are aligned with execution metrics by post-order
    position (the executor appends one metrics record per operator in
    evaluation order, which is exactly a post-order walk; retried
    operators still produce a single record, so fault injection keeps
    the alignment).
    """
    from .recovery import DEFAULT_RETRY_POLICY

    executor = Executor(
        cluster,
        parameters,
        fault_injector=fault_injector,
        retry_policy=retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY,
        engine=engine,
    )
    relation, metrics = executor.execute(plan, query, limit=limit)
    joins_postorder = _joins_postorder(plan)
    join_metrics = [op for op in metrics.operators if op.algorithm != "scan"]
    rows: List[OperatorExplain] = []
    for node, measured in zip(joins_postorder, join_metrics):
        # actual produced counts include per-worker duplicates; the
        # deduplicated output is what the estimate predicts, so collect
        # the per-operator produced count as reported
        rows.append(
            OperatorExplain(
                operator=measured.operator,
                algorithm=measured.algorithm,
                arity=node.arity,
                estimated_cardinality=node.cardinality,
                actual_cardinality=measured.tuples_produced,
                estimated_cost=node.operator_cost,
                actual_cost=measured.simulated_cost(parameters),
            )
        )
    report = ExplainReport(
        rows=rows,
        result_rows=len(relation),
        estimated_plan_cost=plan.cost,
        measured_plan_cost=metrics.critical_path_cost,
        limit_pushdown=metrics.limit_pushdown,
    )
    return relation, report


def _joins_postorder(plan: PlanNode) -> List[JoinNode]:
    result: List[JoinNode] = []

    def walk(node: PlanNode) -> None:
        if isinstance(node, JoinNode):
            for child in node.children:
                walk(child)
            result.append(node)

    walk(plan)
    return result
