"""Deterministic fault injection for the simulated cluster.

The paper's prototype runs bushy plans as waves of Hadoop jobs, and
Hadoop's defining operational property is surviving worker failure
mid-job.  This module supplies the *injection* half of that story: a
seeded :class:`FaultInjector` that decides, at every operator boundary
(one attempt of one operator plays the role of one MapReduce task
wave), whether a fault fires, of which kind, and on which worker.
Recovery — bounded retries, backoff pricing, and stage-level
re-execution — lives in :mod:`repro.engine.recovery`.

Three pluggable fault models mirror the failure taxonomy of the
MapReduce literature:

* **fail-stop** (:class:`FailStop`) — a worker crashes and stays dead;
  its partition must be re-routed to survivors (degraded mode) from the
  durable replica the partitioning retains;
* **transient** (:class:`Transient`) — one operator attempt fails on
  one worker (lost task output, spurious I/O error); a retry of the
  same attempt succeeds;
* **straggler** (:class:`Straggler`) — nothing fails, but one worker
  runs the operator ``slowdown``× slower, stretching the stage barrier.

Everything is deterministic: the injector owns a ``random.Random``
seeded at construction, the executor replays it from the seed at the
start of every ``execute()``, and fault sites are drawn in plan
post-order — so a (seed, plan, dataset) triple always yields the same
fault sequence.  That determinism is what makes failure overhead
measurable per plan shape and the recovery path property-testable.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


class FaultKind(enum.Enum):
    """The three failure classes the injector can produce."""

    FAIL_STOP = "fail-stop"
    TRANSIENT = "transient"
    STRAGGLER = "straggler"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what happened, to whom, and where in the plan."""

    kind: FaultKind
    worker: int
    slowdown: float = 1.0
    operator: str = ""
    attempt: int = 0

    def __str__(self) -> str:
        extra = f" ×{self.slowdown:.1f}" if self.kind is FaultKind.STRAGGLER else ""
        return (
            f"{self.kind.value}@worker{self.worker}{extra} "
            f"({self.operator}, attempt {self.attempt})"
        )


class FaultModel(abc.ABC):
    """A pluggable generator of one fault class."""

    #: short identifier used in reports and CLI output
    name: str = "abstract"

    @abc.abstractmethod
    def draw(self, rng: random.Random, live_workers: Sequence[int]) -> FaultEvent:
        """Draw one fault against the currently live workers."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FailStop(FaultModel):
    """A worker crashes permanently (Hadoop task-tracker death)."""

    name = "fail-stop"

    def draw(self, rng: random.Random, live_workers: Sequence[int]) -> FaultEvent:
        return FaultEvent(FaultKind.FAIL_STOP, worker=rng.choice(list(live_workers)))


class Transient(FaultModel):
    """One operator attempt fails on one worker; the retry succeeds."""

    name = "transient"

    def draw(self, rng: random.Random, live_workers: Sequence[int]) -> FaultEvent:
        return FaultEvent(FaultKind.TRANSIENT, worker=rng.choice(list(live_workers)))


class Straggler(FaultModel):
    """One worker runs the operator ``slowdown``× slower than its peers."""

    name = "straggler"

    def __init__(self, min_slowdown: float = 2.0, max_slowdown: float = 8.0) -> None:
        if min_slowdown < 1.0 or max_slowdown < min_slowdown:
            raise ValueError(
                "straggler slowdowns need 1 <= min_slowdown <= max_slowdown, "
                f"got [{min_slowdown}, {max_slowdown}]"
            )
        self.min_slowdown = min_slowdown
        self.max_slowdown = max_slowdown

    def draw(self, rng: random.Random, live_workers: Sequence[int]) -> FaultEvent:
        return FaultEvent(
            FaultKind.STRAGGLER,
            worker=rng.choice(list(live_workers)),
            slowdown=rng.uniform(self.min_slowdown, self.max_slowdown),
        )

    def __repr__(self) -> str:
        return f"Straggler({self.min_slowdown}, {self.max_slowdown})"


def default_models() -> Tuple[FaultModel, ...]:
    """The standard equally-weighted model mix (fail-stop, transient, straggler)."""
    return (FailStop(), Transient(), Straggler())


class FaultInjector:
    """Seeded, deterministic fault source fired at operator boundaries.

    ``fault_rate`` is the per-operator-attempt probability that *some*
    fault fires; which model produces it is a second (weighted) draw.
    A fail-stop drawn when only one worker is still alive is downgraded
    to a transient fault — killing the last replica holder would lose
    data, which is exactly the scenario a real cluster's minimum
    replication factor exists to prevent.

    The injector records every event it produces in :attr:`events`;
    :meth:`reset` rewinds it to the seed (the executor does this at the
    start of every ``execute()`` so repeated runs are identical).
    """

    def __init__(
        self,
        fault_rate: float,
        seed: int = 0,
        models: Optional[Sequence[FaultModel]] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not 0.0 <= fault_rate <= 1.0:
            raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
        self.fault_rate = fault_rate
        self.seed = seed
        self.models: Tuple[FaultModel, ...] = tuple(
            models if models is not None else default_models()
        )
        if weights is not None and len(weights) != len(self.models):
            raise ValueError(f"{len(weights)} weights for {len(self.models)} models")
        self.weights: Optional[Tuple[float, ...]] = (
            tuple(weights) if weights is not None else None
        )
        self.events: List[FaultEvent] = []
        self._rng = random.Random(seed)

    @property
    def active(self) -> bool:
        """Whether this injector can produce faults at all."""
        return self.fault_rate > 0.0 and bool(self.models)

    def reset(self) -> None:
        """Rewind to the seed; the next draw sequence repeats exactly."""
        self._rng = random.Random(self.seed)
        self.events = []

    def draw(
        self, operator: str, attempt: int, live_workers: Sequence[int]
    ) -> Optional[FaultEvent]:
        """One boundary decision: None (no fault) or a recorded event."""
        if not self.active or not live_workers:
            return None
        if self._rng.random() >= self.fault_rate:
            return None
        model = self._rng.choices(self.models, weights=self.weights, k=1)[0]
        event = model.draw(self._rng, live_workers)
        if event.kind is FaultKind.FAIL_STOP and len(live_workers) <= 1:
            # never kill the last replica holder; degrade to transient
            event = FaultEvent(FaultKind.TRANSIENT, worker=event.worker)
        event = dataclasses.replace(event, operator=operator, attempt=attempt)
        self.events.append(event)
        return event

    def __repr__(self) -> str:
        names = ",".join(m.name for m in self.models)
        return (
            f"FaultInjector(rate={self.fault_rate}, seed={self.seed}, "
            f"models=[{names}], events={len(self.events)})"
        )
