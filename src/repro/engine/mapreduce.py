"""MapReduce stage compilation: the Hadoop substrate behind the paper.

The paper's prototype runs distributed joins as Hadoop jobs, and the
whole flat-plan discussion (MSC's motivation, Section IV) exists
because every MapReduce job pays a fixed startup overhead on top of its
data costs: fewer levels → fewer sequential job waves.  The cost model
of Table I deliberately omits that overhead; this module makes it
explicit so the trade-off can be studied:

* :func:`compile_stages` lowers a bushy plan onto MapReduce *stages* —
  every distributed join is one job; jobs whose inputs are ready run in
  the same wave (children of independent subtrees run concurrently,
  exactly the ``max`` in Eq. 3); local joins and scans ride along with
  the job that consumes them (map-side work);
* :class:`MapReduceSimulator` prices a schedule: per-wave sequential
  barrier, per-job startup overhead, plus the Table I data costs.

The ablation bench sweeps the startup overhead and shows the paper's
observation both ways: with large overheads the flattest plan (MSC)
wins; with small overheads the cost-optimal bushy plan (TD-CMD) wins —
"the flattest plan is not always the best plan".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..core.cost import CostParameters, PAPER_PARAMETERS
from ..core.plans import JoinAlgorithm, JoinNode, PlanNode, ScanNode
from .executor import ENGINES  # importing the executor registers all backends
from .base import engine_spec
from .recovery import DEFAULT_RETRY_POLICY, RetryPolicy

#: shuffle-width discount of the encoded engines: a dictionary-encoded
#: row ships 8-byte ids instead of serialized terms, so the per-tuple
#: transfer constants (β) shrink by roughly this factor.  The value is
#: a deliberate round figure — the simulator studies *trends*, and the
#: executor's priced costs stay engine-neutral; only this opt-in
#: analytic model applies the discount.  Kept as a named constant for
#: API compatibility; the registry's per-engine ``shuffle_factor``
#: (see :class:`~repro.engine.base.EngineSpec`) is what the simulator
#: actually reads.
COLUMNAR_SHUFFLE_FACTOR = 0.25


@dataclass
class Stage:
    """One MapReduce job: a distributed join plus its map-side inputs."""

    job_id: int
    wave: int  # 0-based wave index; waves run sequentially
    algorithm: JoinAlgorithm
    arity: int
    input_cardinalities: List[float]
    output_cardinality: float

    def data_cost(self, parameters: CostParameters) -> float:
        """The job's Table I data cost (I/O + transfer + join)."""
        return parameters.operator_cost(
            self.algorithm, self.input_cardinalities, self.output_cardinality
        )


@dataclass
class MapReduceSchedule:
    """A plan lowered to waves of concurrent jobs."""

    stages: List[Stage] = field(default_factory=list)

    @property
    def job_count(self) -> int:
        """Total number of MapReduce jobs."""
        return len(self.stages)

    @property
    def wave_count(self) -> int:
        """Number of sequential job waves (the plan's 'levels')."""
        if not self.stages:
            return 0
        return max(stage.wave for stage in self.stages) + 1

    def jobs_in_wave(self, wave: int) -> List[Stage]:
        """The jobs scheduled in wave *wave*."""
        return [stage for stage in self.stages if stage.wave == wave]


def compile_stages(plan: PlanNode) -> MapReduceSchedule:
    """Lower a bushy plan to MapReduce stages.

    A node's wave = max(children's waves) + 1 for distributed joins;
    scans and local joins are wave −1 (map-side, no job of their own).
    """
    schedule = MapReduceSchedule()
    counter = [0]

    def lower(node: PlanNode) -> int:
        """Return the wave index after which *node*'s output is ready."""
        if isinstance(node, ScanNode):
            return -1
        assert isinstance(node, JoinNode)
        child_wave = -1
        for child in node.children:
            child_wave = max(child_wave, lower(child))
        if node.algorithm is JoinAlgorithm.LOCAL:
            # local joins piggyback on the consuming job's map phase
            return child_wave
        wave = child_wave + 1
        schedule.stages.append(
            Stage(
                job_id=counter[0],
                wave=wave,
                algorithm=node.algorithm,
                arity=node.arity,
                input_cardinalities=[c.cardinality for c in node.children],
                output_cardinality=node.cardinality,
            )
        )
        counter[0] += 1
        return wave

    lower(plan)
    return schedule


class MapReduceSimulator:
    """Price a schedule with per-job startup overhead and fault cost.

    ``makespan`` = Σ over waves of (startup + max *expected* job cost
    in the wave): jobs inside a wave run concurrently, waves are
    sequential — a faithful reduction of how Hadoop executes a bushy
    plan's levels.

    With ``fault_rate > 0`` each job's cost is inflated analytically:
    every attempt fails independently with probability ``fault_rate``
    and is retried under *retry_policy*, so the expected job cost is
    ``data_cost × E[attempts] + E[backoff]`` (both truncated at the
    policy's retry budget).  This is the closed-form counterpart of the
    executor's injected-fault measurements: deeper plans pay the fault
    tax once per wave on the critical path, which is the shape-vs-
    robustness trade-off `bench_fault_tolerance` sweeps.

    The per-tuple transfer constants (β) are scaled by the registered
    engine's ``shuffle_factor`` (:class:`~repro.engine.base.EngineSpec`)
    before pricing — the encoded engines (``columnar``, ``pipelined``)
    shuffle fixed-width dictionary ids instead of serialized terms and
    declare :data:`COLUMNAR_SHUFFLE_FACTOR`.  The default engine keeps
    the historical engine-neutral pricing.
    """

    def __init__(
        self,
        parameters: CostParameters = PAPER_PARAMETERS,
        job_startup_cost: float = 0.0,
        fault_rate: float = 0.0,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        engine: str = "reference",
    ) -> None:
        if not 0.0 <= fault_rate < 1.0:
            raise ValueError(
                f"fault_rate must be in [0, 1) for expected-cost pricing, "
                f"got {fault_rate}"
            )
        # registry-driven pricing: each backend's spec declares its
        # shuffle-width discount (raises the historical error for
        # unknown names)
        shuffle_factor = engine_spec(engine).shuffle_factor
        if shuffle_factor != 1.0:
            parameters = replace(
                parameters,
                beta_broadcast=parameters.beta_broadcast * shuffle_factor,
                beta_repartition=parameters.beta_repartition * shuffle_factor,
            )
        self.parameters = parameters
        self.job_startup_cost = job_startup_cost
        self.fault_rate = fault_rate
        self.retry_policy = retry_policy
        self.engine = engine

    def expected_job_cost(self, stage: Stage) -> float:
        """One job's data cost inflated by expected retries and backoff."""
        base = stage.data_cost(self.parameters)
        if self.fault_rate <= 0.0:
            return base
        return base * self.retry_policy.expected_attempts(
            self.fault_rate
        ) + self.retry_policy.expected_backoff(self.fault_rate)

    def makespan(self, schedule: MapReduceSchedule) -> float:
        """Σ over waves of (startup + max expected job cost in the wave)."""
        total = 0.0
        for wave in range(schedule.wave_count):
            jobs = schedule.jobs_in_wave(wave)
            total += self.job_startup_cost + max(
                self.expected_job_cost(job) for job in jobs
            )
        return total

    def simulate_plan(self, plan: PlanNode) -> Tuple[MapReduceSchedule, float]:
        """Compile *plan* to stages and price its makespan."""
        schedule = compile_stages(plan)
        return schedule, self.makespan(schedule)


@dataclass(frozen=True)
class CrossoverAnalysis:
    """Which plan wins as the per-job startup overhead ``o`` grows.

    Compares ``flat_data + o·flat_waves`` against
    ``bushy_data + o·bushy_waves`` over ``o ≥ 0``:

    * ``flat_always_wins`` — flat's makespan never exceeds bushy's;
    * ``flat_never_wins`` — flat never strictly beats bushy;
    * otherwise ``crossover`` is the overhead where the winner flips —
      flat wins *above* it when it is the flatter plan
      (``wave_difference > 0``) and *below* it when it is the deeper
      plan.

    This replaces the old scalar API's conflation of "flat never wins"
    with "flat always wins" (both returned ``None``).
    """

    flat_data: float
    bushy_data: float
    flat_waves: int
    bushy_waves: int
    crossover: Optional[float]
    flat_always_wins: bool
    flat_never_wins: bool

    @property
    def wave_difference(self) -> int:
        """``bushy_waves − flat_waves`` (> 0 when flat is flatter)."""
        return self.bushy_waves - self.flat_waves

    def describe(self) -> str:
        """A one-cell human-readable verdict for reports."""
        if self.flat_always_wins:
            return "flat always wins"
        if self.flat_never_wins:
            return "flat never wins"
        side = "above" if self.wave_difference > 0 else "below"
        return f"flat wins {side} o={self.crossover:.1f}"


def overhead_crossover_analysis(
    flat_plan: PlanNode,
    bushy_plan: PlanNode,
    parameters: CostParameters = PAPER_PARAMETERS,
) -> CrossoverAnalysis:
    """Full win/lose analysis of *flat_plan* vs *bushy_plan* over ``o ≥ 0``."""
    flat = compile_stages(flat_plan)
    bushy = compile_stages(bushy_plan)
    simulator = MapReduceSimulator(parameters, job_startup_cost=0.0)
    flat_data = simulator.makespan(flat) if flat.stages else 0.0
    bushy_data = simulator.makespan(bushy) if bushy.stages else 0.0
    wave_difference = bushy.wave_count - flat.wave_count
    crossover: Optional[float] = None
    if wave_difference == 0:
        # parallel makespan lines: the data costs decide at every o
        always = flat_data < bushy_data
        never = not always
    elif wave_difference > 0:
        # flat is flatter: it wins at large o, so it either always wins
        # or starts winning at the intersection point
        point = (flat_data - bushy_data) / wave_difference
        if point <= 0.0:
            always, never = True, False
        else:
            always, never, crossover = False, False, point
    else:
        # flat is the *deeper* plan: overhead only hurts it, so it wins
        # at most on a bounded prefix of o values
        if flat_data >= bushy_data:
            always, never = False, True
        else:
            always, never = False, False
            crossover = (flat_data - bushy_data) / wave_difference
    return CrossoverAnalysis(
        flat_data=flat_data,
        bushy_data=bushy_data,
        flat_waves=flat.wave_count,
        bushy_waves=bushy.wave_count,
        crossover=crossover,
        flat_always_wins=always,
        flat_never_wins=never,
    )


def overhead_crossover(
    flat_plan: PlanNode,
    bushy_plan: PlanNode,
    parameters: CostParameters = PAPER_PARAMETERS,
) -> Optional[float]:
    """The job-startup cost at which *flat_plan* starts beating *bushy_plan*.

    Backwards-compatible scalar view of
    :func:`overhead_crossover_analysis`: returns ``None`` whenever the
    flat plan is not strictly flatter (which covers both "flat never
    wins" *and* "flat always wins because its data cost is lower" —
    the two cases the analysis object distinguishes), ``0.0`` when the
    flatter flat plan wins at every overhead, and the break-even
    overhead otherwise.
    """
    analysis = overhead_crossover_analysis(flat_plan, bushy_plan, parameters)
    if analysis.wave_difference <= 0:
        return None  # the flat plan is not actually flatter
    if analysis.crossover is None:
        return 0.0  # flat always wins
    return analysis.crossover
