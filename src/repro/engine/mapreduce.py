"""MapReduce stage compilation: the Hadoop substrate behind the paper.

The paper's prototype runs distributed joins as Hadoop jobs, and the
whole flat-plan discussion (MSC's motivation, Section IV) exists
because every MapReduce job pays a fixed startup overhead on top of its
data costs: fewer levels → fewer sequential job waves.  The cost model
of Table I deliberately omits that overhead; this module makes it
explicit so the trade-off can be studied:

* :func:`compile_stages` lowers a bushy plan onto MapReduce *stages* —
  every distributed join is one job; jobs whose inputs are ready run in
  the same wave (children of independent subtrees run concurrently,
  exactly the ``max`` in Eq. 3); local joins and scans ride along with
  the job that consumes them (map-side work);
* :class:`MapReduceSimulator` prices a schedule: per-wave sequential
  barrier, per-job startup overhead, plus the Table I data costs.

The ablation bench sweeps the startup overhead and shows the paper's
observation both ways: with large overheads the flattest plan (MSC)
wins; with small overheads the cost-optimal bushy plan (TD-CMD) wins —
"the flattest plan is not always the best plan".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.cost import CostParameters, PAPER_PARAMETERS
from ..core.plans import JoinAlgorithm, JoinNode, PlanNode, ScanNode


@dataclass
class Stage:
    """One MapReduce job: a distributed join plus its map-side inputs."""

    job_id: int
    wave: int  # 0-based wave index; waves run sequentially
    algorithm: JoinAlgorithm
    arity: int
    input_cardinalities: List[float]
    output_cardinality: float

    def data_cost(self, parameters: CostParameters) -> float:
        """The job's Table I data cost (I/O + transfer + join)."""
        return parameters.operator_cost(
            self.algorithm, self.input_cardinalities, self.output_cardinality
        )


@dataclass
class MapReduceSchedule:
    """A plan lowered to waves of concurrent jobs."""

    stages: List[Stage] = field(default_factory=list)

    @property
    def job_count(self) -> int:
        """Total number of MapReduce jobs."""
        return len(self.stages)

    @property
    def wave_count(self) -> int:
        """Number of sequential job waves (the plan's 'levels')."""
        if not self.stages:
            return 0
        return max(stage.wave for stage in self.stages) + 1

    def jobs_in_wave(self, wave: int) -> List[Stage]:
        """The jobs scheduled in wave *wave*."""
        return [stage for stage in self.stages if stage.wave == wave]


def compile_stages(plan: PlanNode) -> MapReduceSchedule:
    """Lower a bushy plan to MapReduce stages.

    A node's wave = max(children's waves) + 1 for distributed joins;
    scans and local joins are wave −1 (map-side, no job of their own).
    """
    schedule = MapReduceSchedule()
    counter = [0]

    def lower(node: PlanNode) -> int:
        """Return the wave index after which *node*'s output is ready."""
        if isinstance(node, ScanNode):
            return -1
        assert isinstance(node, JoinNode)
        child_wave = -1
        for child in node.children:
            child_wave = max(child_wave, lower(child))
        if node.algorithm is JoinAlgorithm.LOCAL:
            # local joins piggyback on the consuming job's map phase
            return child_wave
        wave = child_wave + 1
        schedule.stages.append(
            Stage(
                job_id=counter[0],
                wave=wave,
                algorithm=node.algorithm,
                arity=node.arity,
                input_cardinalities=[c.cardinality for c in node.children],
                output_cardinality=node.cardinality,
            )
        )
        counter[0] += 1
        return wave

    lower(plan)
    return schedule


class MapReduceSimulator:
    """Price a schedule with per-job startup overhead.

    ``makespan`` = Σ over waves of (startup + max data cost in the
    wave): jobs inside a wave run concurrently, waves are sequential —
    a faithful reduction of how Hadoop executes a bushy plan's levels.
    """

    def __init__(
        self,
        parameters: CostParameters = PAPER_PARAMETERS,
        job_startup_cost: float = 0.0,
    ) -> None:
        self.parameters = parameters
        self.job_startup_cost = job_startup_cost

    def makespan(self, schedule: MapReduceSchedule) -> float:
        """Σ over waves of (startup + max data cost in the wave)."""
        total = 0.0
        for wave in range(schedule.wave_count):
            jobs = schedule.jobs_in_wave(wave)
            total += self.job_startup_cost + max(
                job.data_cost(self.parameters) for job in jobs
            )
        return total

    def simulate_plan(self, plan: PlanNode) -> Tuple[MapReduceSchedule, float]:
        """Compile *plan* to stages and price its makespan."""
        schedule = compile_stages(plan)
        return schedule, self.makespan(schedule)


def overhead_crossover(
    flat_plan: PlanNode,
    bushy_plan: PlanNode,
    parameters: CostParameters = PAPER_PARAMETERS,
) -> Optional[float]:
    """The job-startup cost at which *flat_plan* starts beating *bushy_plan*.

    Solves ``flat_data + o·flat_waves = bushy_data + o·bushy_waves`` for
    the overhead ``o``; returns None when the flat plan never wins (or
    always wins).
    """
    flat = compile_stages(flat_plan)
    bushy = compile_stages(bushy_plan)
    simulator = MapReduceSimulator(parameters, job_startup_cost=0.0)
    flat_data = simulator.makespan(flat) if flat.stages else 0.0
    bushy_data = simulator.makespan(bushy) if bushy.stages else 0.0
    wave_difference = bushy.wave_count - flat.wave_count
    if wave_difference <= 0:
        return None  # the flat plan is not actually flatter
    crossover = (flat_data - bushy_data) / wave_difference
    return max(crossover, 0.0)
