"""Execution metrics: what the simulated cluster measures.

Each operator records tuples read (I/O), tuples shipped over the
network, and tuples produced; :class:`ExecutionMetrics` aggregates them
and derives a *simulated time* by pricing the actual (not estimated)
tuple counts with the paper's cost model — the per-plan critical path
of Eq. 3 — so "query processing time" in the Table V reproduction is a
deterministic function of the real data movement the plan caused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.cost import CostParameters
from ..core.plans import JoinAlgorithm


@dataclass
class OperatorMetrics:
    """One executed operator's actual tuple counts.

    ``retries``/``faults_injected``/``recovery_cost`` stay at their
    zero defaults unless a fault injector was active: ``retries``
    counts failed attempts that were re-run, ``faults_injected`` counts
    every fault that hit the operator (including stragglers, which
    don't retry), and ``recovery_cost`` is the priced overhead —
    backoff waits, wasted attempts, replica re-scans, lineage
    re-shipping, and straggler delay — the fault handling added on top
    of :meth:`simulated_cost`.
    """

    operator: str
    algorithm: str
    tuples_read: int = 0
    tuples_shipped: int = 0
    tuples_produced: int = 0
    wall_seconds: float = 0.0
    retries: int = 0
    faults_injected: int = 0
    recovery_cost: float = 0.0
    #: ``tuples_shipped`` attributed to the scan predicates under each
    #: shipped input ("?x" for variable predicates).  An input covering
    #: several predicates credits its full count to each of them, so
    #: the breakdown can sum to more than ``tuples_shipped`` — it
    #: answers "which predicates' data moved", not "how do the bytes
    #: split".  Populated by the materialized engines; streaming
    #: operators price their own topology and leave it empty.
    shipped_by_predicate: Dict[str, int] = field(default_factory=dict)

    def simulated_cost(self, parameters: CostParameters) -> float:
        """Price this operator with Table I using actual counts."""
        if self.algorithm == "scan":
            return 0.0
        algorithm = JoinAlgorithm(self.algorithm)
        io = parameters.alpha * self.tuples_read
        if algorithm is JoinAlgorithm.LOCAL:
            transfer = 0.0
        elif algorithm is JoinAlgorithm.BROADCAST:
            # tuples_shipped already accounts for the ×n fan-out
            transfer = parameters.beta_broadcast * self.tuples_shipped
        else:
            transfer = parameters.beta_repartition * self.tuples_shipped
        gamma = {
            JoinAlgorithm.LOCAL: parameters.gamma_local,
            JoinAlgorithm.BROADCAST: parameters.gamma_broadcast,
            JoinAlgorithm.REPARTITION: parameters.gamma_repartition,
        }[algorithm]
        return io + transfer + gamma * self.tuples_produced

    def total_cost(self, parameters: CostParameters) -> float:
        """Data cost plus the recovery surcharge this operator paid."""
        return self.simulated_cost(parameters) + self.recovery_cost


@dataclass
class ExecutionMetrics:
    """Aggregated metrics for one executed plan.

    The fault fields are only populated (and only surface in
    :meth:`summary`) when the executor ran with an active fault
    injector; fault-free execution reports exactly what it always did.
    """

    operators: List[OperatorMetrics] = field(default_factory=list)
    result_rows: int = 0
    wall_seconds: float = 0.0
    critical_path_cost: float = 0.0
    fault_injection_enabled: bool = False
    workers_failed: int = 0
    #: the :class:`~repro.core.governance.AbortCause` value when this
    #: run was stopped by governance (empty for completed runs)
    abort_cause: str = ""
    #: seconds from execution start until the first distinct result row
    #: was available.  Streaming engines stamp it when the sink admits
    #: its first row (with an ``executor.first_row`` span event);
    #: materialized engines reconcile it to ``wall_seconds`` — their
    #: first row only exists once everything does.
    first_row_seconds: Optional[float] = None
    #: high-water mark of rows held in inter-operator chunk buffers
    #: (streaming engines only; bounded by chunk_size × pipeline depth).
    #: Operator working state — hash build tables, the sink's dedup set
    #: — is deliberately outside this accounting: the bound is about
    #: what pipelining buffers *between* operators.
    peak_buffered_rows: int = 0
    #: True when a LIMIT was pushed into the pipeline (execution
    #: stopped as soon as the limit was reached, instead of truncating
    #: a fully materialized result)
    limit_pushdown: bool = False

    @property
    def total_tuples_read(self) -> int:
        """Σ tuples read across all operators."""
        return sum(op.tuples_read for op in self.operators)

    @property
    def total_tuples_shipped(self) -> int:
        """Σ tuples moved over the (simulated) network."""
        return sum(op.tuples_shipped for op in self.operators)

    @property
    def total_tuples_produced(self) -> int:
        """Σ tuples produced across all operators."""
        return sum(op.tuples_produced for op in self.operators)

    @property
    def shipped_by_predicate(self) -> Dict[str, int]:
        """Per-predicate shipped-tuples attribution, merged over operators.

        See :attr:`OperatorMetrics.shipped_by_predicate` for the
        attribution rule (an operator may credit one shipment to
        several predicates).  Empty when nothing was shipped or the
        engine does not attribute shipments (streaming).
        """
        merged: Dict[str, int] = {}
        for op in self.operators:
            for predicate, count in op.shipped_by_predicate.items():
                merged[predicate] = merged.get(predicate, 0) + count
        return merged

    @property
    def total_retries(self) -> int:
        """Σ failed attempts that were re-run across all operators."""
        return sum(op.retries for op in self.operators)

    @property
    def total_faults_injected(self) -> int:
        """Σ faults injected across all operators."""
        return sum(op.faults_injected for op in self.operators)

    @property
    def total_recovery_cost(self) -> float:
        """Σ priced recovery overhead across all operators."""
        return sum(op.recovery_cost for op in self.operators)

    def summary(self) -> Dict[str, object]:
        """The headline numbers as a flat dictionary.

        Values are numeric except ``abort_cause`` (a string), which
        only appears when governance stopped the run.
        """
        data: Dict[str, object] = {
            "result_rows": self.result_rows,
            "tuples_read": self.total_tuples_read,
            "tuples_shipped": self.total_tuples_shipped,
            "tuples_produced": self.total_tuples_produced,
            "wall_seconds": self.wall_seconds,
            "simulated_time": self.critical_path_cost,
        }
        breakdown = self.shipped_by_predicate
        if breakdown:
            data["shipped_by_predicate"] = dict(
                sorted(breakdown.items(), key=lambda kv: (-kv[1], kv[0]))
            )
        if self.first_row_seconds is not None:
            data["first_row_seconds"] = self.first_row_seconds
        if self.peak_buffered_rows:
            data["peak_buffered_rows"] = self.peak_buffered_rows
        if self.limit_pushdown:
            data["limit_pushdown"] = True
        if self.fault_injection_enabled:
            data["faults_injected"] = self.total_faults_injected
            data["retries"] = self.total_retries
            data["workers_failed"] = self.workers_failed
            data["recovery_cost"] = self.total_recovery_cost
        if self.abort_cause:
            data["abort_cause"] = self.abort_cause
        return data
