"""Streaming pipelined execution: chunked generators over encoded rows.

Both materialized engines evaluate every plan node into a complete
distributed relation before its parent runs, which caps result sizes
and makes "time to first row" equal "time to last row".  This backend
pipelines instead: every operator is a generator of fixed-size id-tuple
chunks, pulled lazily from the sink down through scan→join→project —
the streaming-partial-matches idea of the partial-evaluation literature
(PAPERS.md), applied to the encoded/columnar representation.

Shape of one plan's pipeline:

* the **spine** is the chain of probe sides — per join, the child the
  optimizer estimates largest streams through; the remaining children
  are materialized into deduplicated hash build tables (they are the
  globally smaller inputs, mirroring which sides the broadcast join
  collects);
* joins are evaluated *globally* (one conceptual stream, not one per
  worker).  That is result-invariant: per-worker results always union
  into the global join, and it frees the stream from the data layout —
  which is what makes fail-stop recovery a pure replay;
* **projection and LIMIT push down** into the sink: every chunk is
  projected as it arrives, and reaching ``LIMIT`` distinct rows stops
  pulling — generator laziness halts every upstream operator;
* **buffering is bounded**: each inter-operator stream holds at most
  one chunk at a time (acquire-on-yield / release-on-consume
  accounting feeds ``metrics.peak_buffered_rows``), so the buffered
  high-water mark is ≤ chunk_size × pipeline depth by construction.
  Hash build tables and the sink's dedup set are working state, not
  inter-operator buffers, and sit outside the bound.
* **governance is per chunk**: produced rows are charged against
  ``QueryBudget.charge_rows`` and the deadline/cancellation polled at
  every chunk boundary — a streaming query aborts mid-stream instead
  of after materializing.

Fault handling is *eagerly negotiated*: before any chunk flows, the
recovery manager resolves every operator's seeded fault draws in plan
post-order (:meth:`~repro.engine.recovery.RecoveryManager.negotiate`),
applying fail-stops to the cluster immediately; the stream then runs on
the final degraded layout, which cannot change the result because
:meth:`~repro.engine.cluster.Cluster.fail_worker` preserves the global
triple set.  Mid-stream layout changes (a worker killed *while* a scan
streams, as a chaos test may do) are caught by the cluster's layout
``epoch``: the scan restarts from the degraded layout and the sink's
set semantics absorb the re-emitted prefix.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.plans import JoinAlgorithm, JoinNode, PlanNode, ScanNode
from ..observability import runtime as obs
from .base import (
    ColumnarEngine,
    EngineSpec,
    StreamingContext,
    engine_spec,
    register_engine,
)
from .columnar import (
    EncodedRelation,
    IdRow,
    _row_getter,
    hash_join_encoded,
    iter_pattern_rows,
)
from .metrics import OperatorMetrics

#: default rows per chunk; small enough to bound buffering, large
#: enough that per-chunk governance polls are amortized
DEFAULT_CHUNK_SIZE = 1024

#: one pipelined stream: chunks of encoded rows in the schema's order
ChunkStream = Iterator[List[IdRow]]


def plan_depth(plan: PlanNode) -> int:
    """Operators on the longest root-to-leaf path (the pipeline depth).

    The buffered-row bound the bench gates is
    ``chunk_size × plan_depth(plan)``: at most one in-flight chunk per
    stream stage, and no chain of concurrently live stages is longer
    than the deepest root-to-leaf operator path.
    """
    children = getattr(plan, "children", ())
    if not children:
        return 1
    return 1 + max(plan_depth(child) for child in children)


def _label(node: JoinNode) -> str:
    """The executor's operator label (kept identical across engines)."""
    variable = f"?{node.join_variable.name}" if node.join_variable else "?"
    return f"{node.algorithm.value}-join({node.arity}) on {variable}"


def _postorder(plan: PlanNode) -> List[PlanNode]:
    result: List[PlanNode] = []

    def walk(node: PlanNode) -> None:
        for child in getattr(node, "children", ()):
            walk(child)
        result.append(node)

    walk(plan)
    return result


class PipelinedEngine(ColumnarEngine):
    """Chunked streaming execution over the encoded representation.

    Inherits the columnar access paths (the registry's materialized
    fallbacks for :meth:`scan`/:meth:`join`/:meth:`route`), but the
    executor routes whole plans through :meth:`run_streaming` instead.
    Results are identical (as row multisets) to the columnar engine.
    """

    name = "pipelined"
    streaming = True

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size

    def run_streaming(
        self, context: StreamingContext
    ) -> Tuple[EncodedRelation, float]:
        return _StreamingRun(self, context).execute()


class _StreamingRun:
    """One plan's pipeline: compilation, draining, and accounting."""

    def __init__(self, engine: PipelinedEngine, context: StreamingContext) -> None:
        self.engine = engine
        self.ctx = context
        self.cluster = context.cluster
        self.parameters = context.parameters
        self.metrics = context.metrics
        self.recovery = context.recovery
        self.budget = context.budget
        self.chunk_size = engine.chunk_size
        self._buffered = 0
        self._peak = 0
        #: id(plan node) -> its OperatorMetrics record
        self._ops: Dict[int, OperatorMetrics] = {}

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def execute(self) -> Tuple[EncodedRelation, float]:
        plan = self.ctx.plan
        nodes = _postorder(plan)
        outcomes = {}
        if self.recovery is not None:
            # eager fault negotiation: resolve every operator's seeded
            # draws (same draw order as the materialized post-order
            # walk) before any chunk flows; fail-stops degrade the
            # cluster now and the stream runs on the final layout
            for node in nodes:
                outcomes[id(node)] = self.recovery.negotiate(
                    self._node_label(node)
                )
        template, stream = self._compile(plan)
        result = self._drain(template, stream)
        self.metrics.peak_buffered_rows = self._peak
        for node in nodes:
            outcome = outcomes.get(id(node))
            if outcome is not None:
                outcome.apply(self._ops[id(node)], self.parameters)
        return result, self._critical_path(plan)

    @staticmethod
    def _node_label(node: PlanNode) -> str:
        if isinstance(node, ScanNode):
            return f"scan[{node.pattern_index}]"
        return _label(node)

    def _critical_path(self, node: PlanNode) -> float:
        child_critical = 0.0
        for child in getattr(node, "children", ()):  # lint: disable=LINT014 bounded by plan arity; runs once post-drain
            child_critical = max(child_critical, self._critical_path(child))
        op = self._ops[id(node)]
        return child_critical + op.total_cost(self.parameters)

    # ------------------------------------------------------------------
    # governance + buffer accounting
    # ------------------------------------------------------------------
    def _govern(self, operator: str) -> None:
        """One chunk-boundary poll (no budget → no-op)."""
        budget = self.budget
        if budget is None:
            return
        budget.check_deadline(phase="execute", operator=operator)
        budget.check_cancelled(phase="execute", operator=operator)

    def _charge(self, operator: str, rows: int) -> None:
        """Charge *rows* produced at a chunk boundary against the budget."""
        budget = self.budget
        if budget is None:
            return
        budget.charge_rows(rows, phase="execute", operator=operator)

    def _account(self, stream: ChunkStream) -> ChunkStream:
        """Track one stream's in-flight chunk in the buffered high-water.

        A chunk is 'buffered' from the moment its producer yields it
        until the consumer finishes with it (resumes the producer or
        closes the stream) — exactly the inter-operator hand-off window
        the chunk_size × depth bound is about.
        """
        for chunk in stream:
            size = len(chunk)
            self._buffered += size
            if self._buffered > self._peak:
                self._peak = self._buffered
            try:
                yield chunk
            finally:
                self._buffered -= size

    # ------------------------------------------------------------------
    # compilation: plan node -> (schema template, chunk stream)
    # ------------------------------------------------------------------
    def _compile(self, node: PlanNode) -> Tuple[EncodedRelation, ChunkStream]:
        if isinstance(node, ScanNode):
            return self._compile_scan(node)
        if isinstance(node, JoinNode):
            return self._compile_join(node)
        from .executor import ExecutionError  # late: executor imports us

        raise ExecutionError(f"unknown plan node type {type(node).__name__}")

    def _register(self, node: PlanNode, op: OperatorMetrics) -> None:
        # children register before parents, so metrics.operators is the
        # same post-order walk the materialized engines append in (the
        # alignment EXPLAIN relies on)
        self._ops[id(node)] = op
        self.metrics.operators.append(op)

    # -- scans ----------------------------------------------------------
    def _compile_scan(self, node: ScanNode) -> Tuple[EncodedRelation, ChunkStream]:
        if node.pattern is None:
            from .executor import ExecutionError  # late: executor imports us

            raise ExecutionError("scan node carries no pattern")
        op = OperatorMetrics(
            operator=f"scan[{node.pattern_index}]", algorithm="scan"
        )
        self._register(node, op)
        variables = sorted(node.pattern.variables(), key=lambda v: v.name)
        template = EncodedRelation(variables, self.cluster.dictionary)
        return template, self._account(self._scan_chunks(node, op))

    def _scan_chunks(self, node: ScanNode, op: OperatorMetrics) -> ChunkStream:
        """Stream one pattern's rows across all workers, chunked.

        Restarts from scratch whenever the cluster's layout epoch moves
        mid-stream (a fail-stop between chunks): the degraded layout
        still covers the global triple set, and the sink's set
        semantics make re-emission idempotent.  Counters keep counting
        re-emitted rows — replayed work is real work.
        """
        cluster = self.cluster
        pattern = node.pattern
        chunk_size = self.chunk_size
        while True:
            epoch = cluster.epoch
            chunk: List[IdRow] = []
            restarted = False
            for worker in range(cluster.size):
                if cluster.epoch != epoch:
                    restarted = True
                    break
                fragment = cluster.worker_fragment(worker)
                for row in iter_pattern_rows(fragment, pattern):
                    chunk.append(row)
                    if len(chunk) >= chunk_size:
                        if cluster.epoch != epoch:
                            restarted = True
                            break
                        op.tuples_read += len(chunk)
                        op.tuples_produced += len(chunk)
                        self._charge(op.operator, len(chunk))
                        yield chunk
                        chunk = []
                if restarted:
                    break
            if restarted or cluster.epoch != epoch:
                obs.event(
                    "executor.stream_restart",
                    operator=op.operator,
                    epoch=cluster.epoch,
                )
                continue
            if chunk:
                op.tuples_read += len(chunk)
                op.tuples_produced += len(chunk)
                self._charge(op.operator, len(chunk))
                yield chunk
            return

    # -- joins ----------------------------------------------------------
    def _compile_join(self, node: JoinNode) -> Tuple[EncodedRelation, ChunkStream]:
        compiled = [self._compile(child) for child in node.children]
        op = OperatorMetrics(operator=_label(node), algorithm=node.algorithm.value)
        self._register(node, op)
        # the probe (streamed) side is the child the optimizer estimates
        # largest — the same side the broadcast join keeps distributed;
        # ties break on the lowest child index for determinism
        sizes = [child.cardinality for child in node.children]
        probe_index = max(range(len(compiled)), key=lambda i: (sizes[i], -i))
        builds: List[EncodedRelation] = []
        for index, (template, stream) in enumerate(compiled):
            if index == probe_index:
                continue
            relation = template.empty_like()
            for chunk in stream:
                self._govern(op.operator)
                relation.rows.update(chunk)
            builds.append(relation)
            op.tuples_read += len(relation)
        if node.algorithm is JoinAlgorithm.BROADCAST:
            # collected build sides are replicated to every live worker
            op.tuples_shipped += sum(len(b) for b in builds) * self.cluster.live_size
        elif node.algorithm is JoinAlgorithm.REPARTITION:
            # every build row moves once to its hash target; probe rows
            # are added per chunk as they stream through
            op.tuples_shipped += sum(len(b) for b in builds)
        probe_template, probe_stream = compiled[probe_index]
        out_vars = set(probe_template.variables)
        for build in builds:
            out_vars.update(build.variables)
        out_template = EncodedRelation(out_vars, self.cluster.dictionary)
        stream = self._account(
            self._join_chunks(node, op, probe_template, builds, probe_stream)
        )
        return out_template, stream

    def _join_chunks(
        self,
        node: JoinNode,
        op: OperatorMetrics,
        probe_template: EncodedRelation,
        builds: List[EncodedRelation],
        probe_stream: ChunkStream,
    ) -> ChunkStream:
        """Join each probe chunk through the build tables; re-chunk output."""
        chunk_size = self.chunk_size
        repartition = node.algorithm is JoinAlgorithm.REPARTITION
        for chunk in probe_stream:
            self._govern(op.operator)
            op.tuples_read += len(chunk)
            if repartition:
                op.tuples_shipped += len(chunk)
            current = EncodedRelation(
                probe_template.variables, probe_template.dictionary, set(chunk)
            )
            for build in builds:
                current = hash_join_encoded(current, build)
                if not current.rows:
                    break
            if not current.rows:
                continue
            op.tuples_produced += len(current.rows)
            self._charge(op.operator, len(current.rows))
            buffer: List[IdRow] = []
            for row in current.rows:
                buffer.append(row)
                if len(buffer) >= chunk_size:
                    yield buffer
                    buffer = []
            if buffer:
                yield buffer

    # ------------------------------------------------------------------
    # the sink: project per chunk, dedup, stop at LIMIT
    # ------------------------------------------------------------------
    def _drain(
        self, template: EncodedRelation, stream: ChunkStream
    ) -> EncodedRelation:
        query = self.ctx.query
        limit = self.ctx.limit
        metrics = self.metrics
        if query is not None and getattr(query, "projection", None):
            kept = [
                v
                for v in sorted(set(query.projection), key=lambda v: v.name)
                if template.has_variable(v)
            ]
        else:
            kept = list(template.variables)
        emit = _row_getter([template.position(v) for v in kept])
        result = EncodedRelation(kept, template.dictionary)
        rows = result.rows
        reached_limit = limit == 0  # LIMIT 0 never pulls a single chunk
        while not reached_limit:
            chunk = next(stream, None)
            if chunk is None:
                break
            self._govern("sink")
            for row in chunk:
                if limit is not None and len(rows) >= limit:
                    reached_limit = True
                    break
                rows.add(emit(row))
            if rows and metrics.first_row_seconds is None:
                first = time.perf_counter() - self.ctx.started
                metrics.first_row_seconds = first
                obs.event(
                    "executor.first_row",
                    seconds=first,
                    engine=self.engine.name,
                )
        if hasattr(stream, "close"):
            stream.close()  # release the in-flight chunk accounting now
        if limit is not None:
            metrics.limit_pushdown = True
        return result


register_engine(
    EngineSpec(
        name="pipelined",
        description=(
            "streaming chunk pipeline over encoded ids; identical "
            "results, bounded buffering, early first row and LIMIT "
            "pushdown"
        ),
        factory=PipelinedEngine,
        # encoded rows shuffle fixed-width ids, same as columnar
        shuffle_factor=engine_spec("columnar").shuffle_factor,
        encoded=True,
        streaming=True,
    )
)
