"""Fault recovery: bounded retries, backoff pricing, stage recovery.

This is the *recovery* half of the fault-tolerance subsystem
(:mod:`repro.engine.faults` is the injection half).  It mirrors how the
paper's Hadoop substrate actually survives failures:

* **transient fault** — the task's output is lost; the attempt is
  re-executed after a backoff.  The wasted attempt's data cost and the
  simulated backoff are charged to the operator's ``recovery_cost``,
  which the executor prices into the plan's critical path (a retried
  task stretches its stage barrier).
* **fail-stop crash** — the worker is marked dead and its partition is
  re-routed to the next live worker *from the durable replica* the
  partitioning retains (HDFS keeps block replicas; our stand-in is the
  original per-worker graph, which recovery never mutates).  In-flight
  intermediate relations — the outputs of already-finished stages,
  durable in HDFS terms — migrate the dead worker's slice to the same
  survivor, so only the lost worker's lineage is touched and every
  other worker's work is preserved.  Recovery cost = replica re-scan
  (``α`` per triple) + intermediate re-shipping (``β_repartition`` per
  row) + backoff.
* **straggler** — the operator still succeeds, but the slow worker's
  share of the stage is stretched by the slowdown factor; the extra
  time is charged as recovery cost (speculative execution would cap
  it; we price the uncapped pessimistic case).

Retries are bounded by :class:`RetryPolicy`; exhausting them raises
:class:`FaultToleranceError`, the simulated analogue of a Hadoop job
abort.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Set, Tuple, TYPE_CHECKING

from ..core.cost import CostParameters
from ..core.governance import AbortCause, QueryAborted, QueryBudget
from ..observability import runtime as obs
from .faults import FaultEvent, FaultInjector, FaultKind
from .metrics import OperatorMetrics
from .relations import Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports nothing here)
    from .cluster import Cluster

#: one operator attempt: () -> (distributed relation, its metrics record)
AttemptRunner = Callable[[], Tuple[List[Relation], OperatorMetrics]]


@dataclass
class FaultOutcome:
    """The resolved fault history of one operator, priced lazily.

    Produced by :meth:`RecoveryManager.negotiate` for streaming
    execution, where operators have no materialized attempt to re-run:
    the draw loop is resolved *eagerly* (fail-stops applied to the
    cluster, backoff and re-route costs fixed), while the parts of the
    recovery price that depend on the operator's eventual tuple counts
    — wasted transient attempts and the straggler stretch — are
    deferred to :meth:`apply`, called once the stream has drained and
    the operator's metrics are final.
    """

    retries: int = 0
    faults_injected: int = 0
    #: backoff waits + fail-stop re-routes + quarantines, priced eagerly
    fixed_cost: float = 0.0
    #: transient attempts whose output was lost; each costs one full
    #: ``simulated_cost`` of the operator when finalized
    wasted_attempts: int = 0
    #: the straggler that ended the draw loop, if any
    straggler: Optional[FaultEvent] = None
    #: live workers when the straggler hit (its share denominator)
    live_size: int = 1

    def apply(self, op: OperatorMetrics, parameters: CostParameters) -> None:
        """Stamp this outcome onto *op* using its final tuple counts."""
        op.retries = self.retries
        op.faults_injected = self.faults_injected
        recovery = self.fixed_cost
        if self.wasted_attempts:
            recovery += self.wasted_attempts * op.simulated_cost(parameters)
        if self.straggler is not None:
            base = op.simulated_cost(parameters)
            if base <= 0.0:
                base = parameters.alpha * op.tuples_read
            share = base / max(self.live_size, 1)
            recovery += (self.straggler.slowdown - 1.0) * share
        op.recovery_cost = recovery


class FaultToleranceError(QueryAborted):
    """Raised when an operator exhausts its retry budget (job abort).

    A :class:`~repro.core.governance.QueryAborted` with cause
    ``RETRY_EXHAUSTED``, so front-ends classify it with the rest of the
    abort taxonomy; it carries the operator identity and the full
    per-attempt :class:`~repro.engine.faults.FaultEvent` history.  The
    message-only constructor form stays supported for back-compat.
    """

    def __init__(
        self,
        message: str,
        *,
        operator: str = "",
        attempts: Tuple[FaultEvent, ...] = (),
        query_id: str = "",
    ) -> None:
        super().__init__(
            message,
            cause=AbortCause.RETRY_EXHAUSTED,
            query_id=query_id,
            phase="execute",
            operator=operator,
            attempts=attempts,
        )


class CircuitBreaker:
    """Quarantine workers that keep faulting (deterministic window).

    The window is a count of recent fault *events*, not a wall-clock
    interval, so seeded chaos runs trip it reproducibly: a worker
    appearing ``threshold`` times among the last ``window`` recorded
    faults opens its breaker.  The recovery manager drains an
    open-breaker worker exactly like a fail-stop (replica re-route), so
    a flaky-but-alive worker stops eating retries.  ``reset()`` closes
    every breaker — :class:`~repro.engine.executor.Executor` registers
    it as a :meth:`~repro.engine.cluster.Cluster.heal` listener.
    """

    def __init__(self, threshold: int = 3, window: int = 16) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if window < threshold:
            raise ValueError(
                f"window ({window}) must be >= threshold ({threshold})"
            )
        self.threshold = threshold
        self.window = window
        self._lock = threading.Lock()
        self._recent: Deque[int] = deque(maxlen=window)  #: guarded-by: _lock
        self._open: Set[int] = set()  #: guarded-by: _lock
        #: cumulative breaker openings (survives :meth:`reset`); written
        #: only under the lock, read lock-free (int reads are atomic)
        self.trips = 0

    @property
    def open_workers(self) -> List[int]:
        """Workers currently quarantined, ascending."""
        with self._lock:
            return sorted(self._open)

    def state(self, worker: int) -> str:
        """``"open"`` (quarantined) or ``"closed"`` for *worker*."""
        with self._lock:
            return "open" if worker in self._open else "closed"

    def record_fault(self, worker: int) -> bool:
        """Record one fault against *worker*; True if this trips it.

        Window append + count + trip happen under one lock acquisition
        so two threads recording the same worker's faults cannot both
        observe a below-threshold count (lost trip) or double-count the
        cumulative ``trips``.
        """
        with self._lock:
            if worker in self._open:
                return False
            self._recent.append(worker)
            if sum(1 for w in self._recent if w == worker) >= self.threshold:
                self._trip_locked(worker)
                return True
            return False

    def trip(self, worker: int) -> None:
        """Open *worker*'s breaker (idempotent)."""
        with self._lock:
            self._trip_locked(worker)

    def _trip_locked(self, worker: int) -> None:
        # caller holds self._lock (the analyzer proves every call site)
        if worker not in self._open:
            self._open.add(worker)
            self.trips += 1

    def reset(self) -> None:
        """Close every breaker and forget the event window."""
        with self._lock:
            self._recent.clear()
            self._open.clear()

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(threshold={self.threshold}, window={self.window}, "
            f"open={self.open_workers}, trips={self.trips})"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff, priced in cost units.

    The ``retry``-th backoff (1-based) costs
    ``backoff_base * backoff_multiplier ** (retry - 1)`` simulated cost
    units — the same currency as Table I, so backoff waits land on the
    critical path alongside data movement.
    """

    max_retries: int = 3
    backoff_base: float = 50.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    def backoff_cost(self, retry: int) -> float:
        """Simulated cost of the *retry*-th backoff wait (1-based)."""
        return self.backoff_base * self.backoff_multiplier ** (retry - 1)

    def total_backoff(self, retries: int) -> float:
        """Σ backoff cost over the first *retries* retries."""
        return sum(self.backoff_cost(k) for k in range(1, retries + 1))

    # ------------------------------------------------------------------
    # analytic expectations (used by the MapReduce simulator)
    # ------------------------------------------------------------------
    def expected_attempts(self, fault_rate: float) -> float:
        """E[times a task runs] when each attempt fails w.p. *fault_rate*.

        Truncated at ``max_retries`` retries: attempt ``k+1`` happens
        exactly when the first ``k`` attempts all failed, so the
        expectation is ``Σ_{k=0..max_retries} fault_rate**k``.
        """
        if fault_rate <= 0.0:
            return 1.0
        return sum(fault_rate**k for k in range(self.max_retries + 1))

    def expected_backoff(self, fault_rate: float) -> float:
        """E[total backoff cost] under per-attempt failure *fault_rate*.

        The ``k``-th backoff is paid exactly when the first ``k``
        attempts all failed (probability ``fault_rate**k``).
        """
        if fault_rate <= 0.0:
            return 0.0
        return sum(
            (fault_rate**k) * self.backoff_cost(k)
            for k in range(1, self.max_retries + 1)
        )


DEFAULT_RETRY_POLICY = RetryPolicy()


class RecoveryManager:
    """Stage-level recovery driver for one :meth:`Executor.execute` run.

    The executor funnels every operator attempt through
    :meth:`run_operator`, handing over the registry of *in-flight*
    distributed relations (computed but not yet consumed) so a
    fail-stop can migrate the dead worker's slices in one place.
    """

    def __init__(
        self,
        cluster: "Cluster",
        injector: FaultInjector,
        policy: RetryPolicy,
        parameters: CostParameters,
        budget: Optional[QueryBudget] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.cluster = cluster
        self.injector = injector
        self.policy = policy
        self.parameters = parameters
        self.budget = budget
        self.breaker = breaker
        self.workers_failed = 0

    def run_operator(
        self,
        label: str,
        run_once: AttemptRunner,
        inflight: List[List[Relation]],
    ) -> Tuple[List[Relation], OperatorMetrics]:
        """Run one operator to success (or retry exhaustion)."""
        retries = 0
        faults = 0
        recovery = 0.0
        attempts: List[FaultEvent] = []
        budget = self.budget
        query_id = budget.query_id if budget is not None else ""
        while True:
            if budget is not None:
                # a retry storm must not outlive the query's envelope
                budget.check_cancelled(phase="execute", operator=label)
                budget.check_deadline(phase="execute", operator=label)
            fault = self.injector.draw(label, retries, self.cluster.live_workers)
            if fault is None:
                result, op = run_once()
                break
            faults += 1
            attempts.append(fault)
            obs.event(
                "fault",
                kind=fault.kind.value,
                worker=fault.worker,
                operator=label,
                attempt=retries + 1,
            )
            obs.count("engine.recovery.faults")
            if fault.kind is FaultKind.STRAGGLER:
                result, op = run_once()
                recovery += self._straggler_penalty(fault, op)
                break
            tripped = (
                self.breaker is not None
                and self.breaker.record_fault(fault.worker)
            )
            retries += 1
            if budget is not None:
                # the query-wide retry budget sits on top of the
                # per-operator policy and breaches first when smaller
                budget.charge_retry(phase="execute", operator=label)
            if retries > self.policy.max_retries:
                raise FaultToleranceError(
                    f"{label}: retry budget ({self.policy.max_retries}) exhausted; "
                    f"last fault was {fault}",
                    operator=label,
                    attempts=tuple(attempts),
                    query_id=query_id,
                )
            obs.event("retry", operator=label, retry=retries)
            obs.count("engine.recovery.retries")
            recovery += self.policy.backoff_cost(retries)
            if fault.kind is FaultKind.TRANSIENT:
                if tripped:
                    # quarantine the flaky worker *before* re-running:
                    # every produced relation must post-date every
                    # death, or a later migration would miss the dead
                    # worker's slice of a result not yet in-flight
                    recovery += self._quarantine(fault.worker, label, inflight)
                # the attempt ran and its output was lost: charge its
                # full data cost as wasted work, then go around again
                _, wasted = run_once()
                recovery += wasted.simulated_cost(self.parameters)
            else:
                recovery += self._recover_fail_stop(fault.worker, inflight)
                if tripped:
                    # the crash already drained it; the open breaker
                    # just keeps the quarantine visible in reports
                    self._note_trip(fault.worker, label)
        op.retries = retries
        op.faults_injected = faults
        op.recovery_cost = recovery
        return result, op

    def negotiate(self, label: str) -> FaultOutcome:
        """Resolve one operator's fault draws without running attempts.

        The streaming engine's counterpart of :meth:`run_operator`:
        same draw order, same budget/breaker/backoff handling, same
        retry exhaustion — but fail-stops are applied to the cluster
        *immediately* (the pipeline then streams the final degraded
        layout, which is result-invariant: results union across all
        workers and :meth:`~repro.engine.cluster.Cluster.fail_worker`
        preserves the global triple set), and no in-flight relations
        exist to migrate (streaming lineage is replayed from scans).
        Count-dependent pricing is deferred to
        :meth:`FaultOutcome.apply`.
        """
        outcome = FaultOutcome()
        attempts: List[FaultEvent] = []
        budget = self.budget
        query_id = budget.query_id if budget is not None else ""
        while True:
            if budget is not None:
                budget.check_cancelled(phase="execute", operator=label)
                budget.check_deadline(phase="execute", operator=label)
            fault = self.injector.draw(
                label, outcome.retries, self.cluster.live_workers
            )
            if fault is None:
                return outcome
            outcome.faults_injected += 1
            attempts.append(fault)
            obs.event(
                "fault",
                kind=fault.kind.value,
                worker=fault.worker,
                operator=label,
                attempt=outcome.retries + 1,
            )
            obs.count("engine.recovery.faults")
            if fault.kind is FaultKind.STRAGGLER:
                outcome.straggler = fault
                outcome.live_size = self.cluster.live_size
                return outcome
            tripped = (
                self.breaker is not None
                and self.breaker.record_fault(fault.worker)
            )
            outcome.retries += 1
            if budget is not None:
                budget.charge_retry(phase="execute", operator=label)
            if outcome.retries > self.policy.max_retries:
                raise FaultToleranceError(
                    f"{label}: retry budget ({self.policy.max_retries}) "
                    f"exhausted; last fault was {fault}",
                    operator=label,
                    attempts=tuple(attempts),
                    query_id=query_id,
                )
            obs.event("retry", operator=label, retry=outcome.retries)
            obs.count("engine.recovery.retries")
            outcome.fixed_cost += self.policy.backoff_cost(outcome.retries)
            if fault.kind is FaultKind.TRANSIENT:
                if tripped:
                    outcome.fixed_cost += self._quarantine(
                        fault.worker, label, []
                    )
                outcome.wasted_attempts += 1
            else:
                outcome.fixed_cost += self._recover_fail_stop(fault.worker, [])
                if tripped:
                    self._note_trip(fault.worker, label)

    # ------------------------------------------------------------------
    # circuit breaker
    # ------------------------------------------------------------------
    def _quarantine(
        self, worker: int, label: str, inflight: List[List[Relation]]
    ) -> float:
        """Drain a tripped-but-alive worker like a fail-stop; return cost."""
        if not self.cluster.is_live(worker) or self.cluster.live_size <= 1:
            # already dead, or the last replica holder: nothing to drain
            return 0.0
        self._note_trip(worker, label)
        return self._recover_fail_stop(worker, inflight)

    def _note_trip(self, worker: int, label: str) -> None:
        obs.event("governance.circuit_open", worker=worker, operator=label)
        obs.count("governance.circuit_trips")

    # ------------------------------------------------------------------
    # fault-specific recovery
    # ------------------------------------------------------------------
    def _recover_fail_stop(
        self, worker: int, inflight: List[List[Relation]]
    ) -> float:
        """Kill *worker*, migrate its lineage to a survivor; return the cost."""
        target, triples_rerouted = self.cluster.fail_worker(worker)
        rows_moved = 0
        for distributed in inflight:
            lost = distributed[worker]
            if len(lost):
                distributed[target].union_inplace(lost)
                rows_moved += len(lost)
            # empty_like keeps the slot's relation class (reference or
            # columnar) so later unions see a matching schema and type
            distributed[worker] = lost.empty_like()
        self.workers_failed += 1
        return (
            self.parameters.alpha * triples_rerouted
            + self.parameters.beta_repartition * rows_moved
        )

    def _straggler_penalty(self, fault: FaultEvent, op: OperatorMetrics) -> float:
        """Extra critical-path time the slow worker's share costs.

        Table I prices scans at zero, but a straggling scan still
        delays its stage, so the fallback base is the scan's I/O
        (``α × tuples_read``).
        """
        base = op.simulated_cost(self.parameters)
        if base <= 0.0:
            base = self.parameters.alpha * op.tuples_read
        share = base / max(self.cluster.live_size, 1)
        return (fault.slowdown - 1.0) * share
