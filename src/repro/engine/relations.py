"""Binding relations: the tuples flowing through the engine.

A :class:`Relation` is a set of rows over a fixed variable schema
(variables sorted by name, rows as term tuples).  Set semantics are
used throughout: BGP evaluation is subgraph matching, so a match either
exists or it does not, and set semantics also absorbs the duplicates
that replicated partitioning elements (2f, Path-BMC, Hash-SO) produce
across workers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..rdf.terms import Term, Variable
from ..rdf.triples import RDFGraph, Triple
from ..sparql.ast import TriplePattern

Row = Tuple[Term, ...]


class Relation:
    """An immutable-schema set of binding rows."""

    __slots__ = ("variables", "rows", "_positions")

    def __init__(self, variables: Iterable[Variable], rows: Optional[Set[Row]] = None):
        self.variables: Tuple[Variable, ...] = tuple(
            sorted(set(variables), key=lambda v: v.name)
        )
        self.rows: Set[Row] = rows if rows is not None else set()
        self._positions: Dict[Variable, int] = {
            v: i for i, v in enumerate(self.variables)
        }

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def position(self, variable: Variable) -> int:
        """Column index of *variable* in the schema."""
        return self._positions[variable]

    def has_variable(self, variable: Variable) -> bool:
        """Whether *variable* is part of the schema."""
        return variable in self._positions

    def value(self, row: Row, variable: Variable) -> Term:
        """The binding of *variable* in *row*."""
        return row[self._positions[variable]]

    def add_binding(self, binding: Dict[Variable, Term]) -> None:
        """Insert one row given as a variable→term mapping."""
        self.rows.add(tuple(binding[v] for v in self.variables))

    def bindings(self) -> Iterator[Dict[Variable, Term]]:
        """Rows as variable→term dictionaries (convenience/API surface)."""
        for row in self.rows:
            yield {v: row[i] for i, v in enumerate(self.variables)}

    def project(self, variables: Iterable[Variable]) -> "Relation":
        """Project onto *variables* (set semantics: duplicates collapse).

        Projecting onto the full schema is the identity and returns
        ``self`` without rebuilding a single row — ``SELECT *`` queries
        hit this on every execution.
        """
        kept = [v for v in sorted(set(variables), key=lambda v: v.name)
                if v in self._positions]
        if tuple(kept) == self.variables:
            return self
        positions = [self._positions[v] for v in kept]
        rows = {tuple(row[p] for p in positions) for row in self.rows}
        return Relation(kept, rows)

    def empty_like(self) -> "Relation":
        """A fresh empty relation with this relation's schema."""
        return Relation(self.variables)

    def union_inplace(self, other: "Relation") -> None:
        """Add *other*'s rows (schemas must match exactly)."""
        if other.variables != self.variables:
            raise ValueError("union requires identical schemas")
        self.rows.update(other.rows)

    def decode(self) -> "Relation":
        """Identity: reference rows already hold terms.

        Mirrors :meth:`EncodedRelation.decode` so the executor's final
        materialization is engine-uniform — every engine's result
        answers ``decode()``.
        """
        return self

    def __repr__(self) -> str:
        names = ",".join(v.name for v in self.variables)
        return f"Relation([{names}], {len(self.rows)} rows)"


def scan_pattern(graph: RDFGraph, pattern: TriplePattern) -> Relation:
    """Match one triple pattern against a graph; return its bindings.

    Handles repeated variables within the pattern (``?x p ?x``) by
    filtering inconsistent matches.  Rows are built positionally from a
    precomputed column template — no per-match dictionary is allocated,
    which matters because every query execution starts with one scan per
    pattern over potentially large match sets.
    """
    variables = sorted(pattern.variables(), key=lambda v: v.name)
    relation = Relation(variables)
    terms = pattern.terms()
    # first triple position providing each variable, plus equality checks
    # between positions that repeat a variable
    first_source: Dict[Variable, int] = {}
    checks: List[Tuple[int, int]] = []
    for position, term in enumerate(terms):
        if isinstance(term, Variable):
            if term in first_source:
                checks.append((first_source[term], position))
            else:
                first_source[term] = position
    columns = [first_source[v] for v in relation.variables]
    subject = pattern.subject if not isinstance(pattern.subject, Variable) else None
    predicate = (
        pattern.predicate if not isinstance(pattern.predicate, Variable) else None
    )
    object_ = pattern.object if not isinstance(pattern.object, Variable) else None
    rows = relation.rows
    for triple in graph.match(subject, predicate, object_):  # lint: disable=LINT014 per-scan row loop; the executor polls at the operator boundary
        t = triple.terms()
        if checks and any(t[a] != t[b] for a, b in checks):
            continue
        rows.add(tuple(t[c] for c in columns))
    return relation


def hash_join(left: Relation, right: Relation) -> Relation:
    """Natural (hash) join on all shared variables.

    With no shared variables this degenerates to a Cartesian product —
    the optimizer never emits such plans, but the reference evaluator
    may need it for deliberately disconnected test queries.

    Output rows are assembled positionally from a per-join column
    template (which side, which column) computed once up front; the
    per-row work is a key tuple and an output tuple, with no dictionary
    allocation on the O(|build| · |probe|) hot path.
    """
    shared = [v for v in left.variables if right.has_variable(v)]
    out_vars = sorted(
        set(left.variables) | set(right.variables), key=lambda v: v.name
    )
    result = Relation(out_vars)
    rows = result.rows
    if not shared:
        sources = [
            (True, left.position(v)) if left.has_variable(v)
            else (False, right.position(v))
            for v in result.variables
        ]
        for lrow in left.rows:
            for rrow in right.rows:
                rows.add(
                    tuple(
                        lrow[p] if from_left else rrow[p]
                        for from_left, p in sources
                    )
                )
        return result
    # build on the smaller side
    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    build_positions = [build.position(v) for v in shared]
    probe_positions = [probe.position(v) for v in shared]
    # each output column reads from the build row when possible (shared
    # variables are equal on both sides by the join key)
    sources = [
        (True, build.position(v)) if build.has_variable(v)
        else (False, probe.position(v))
        for v in result.variables
    ]
    table: Dict[Tuple[Term, ...], List[Row]] = {}
    for row in build.rows:
        key = tuple(row[p] for p in build_positions)
        table.setdefault(key, []).append(row)
    for prow in probe.rows:
        key = tuple(prow[p] for p in probe_positions)
        bucket = table.get(key)
        if bucket is None:
            continue
        for brow in bucket:
            rows.add(
                tuple(
                    brow[p] if from_build else prow[p]
                    for from_build, p in sources
                )
            )
    return result


def greedy_multi_join(relations, join_pair):
    """Greedy k-way join order: start smallest, then smallest *connected*.

    At every step the next input is the smallest pending relation that
    shares a variable with the accumulated result — not merely the
    first connected one — so intermediates stay as small as the greedy
    heuristic allows.  With no connected candidate (deliberately
    disconnected queries) the smallest pending relation is taken and
    the pair join degenerates to a Cartesian product.  Ties break on
    the lowest index, keeping the order deterministic.

    Shared by the reference (:func:`multi_join`) and columnar
    (:func:`repro.engine.columnar.multi_join_encoded`) engines;
    *join_pair* supplies the engine's binary hash join.
    """
    if not relations:
        raise ValueError("nothing to join")
    pending = list(relations)
    index = min(range(len(pending)), key=lambda i: len(pending[i]))
    current = pending.pop(index)
    while pending:  # lint: disable=LINT014 bounded by join arity; callers poll at the operator/chunk boundary
        connected = [
            i
            for i, rel in enumerate(pending)
            if any(current.has_variable(v) for v in rel.variables)
        ]
        candidates = connected if connected else range(len(pending))
        index = min(candidates, key=lambda i: len(pending[i]))
        current = join_pair(current, pending.pop(index))
    return current


def multi_join(relations: List[Relation]) -> Relation:
    """Join k relations: smallest first, then smallest connected next."""
    return greedy_multi_join(relations, hash_join)
