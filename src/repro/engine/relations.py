"""Binding relations: the tuples flowing through the engine.

A :class:`Relation` is a set of rows over a fixed variable schema
(variables sorted by name, rows as term tuples).  Set semantics are
used throughout: BGP evaluation is subgraph matching, so a match either
exists or it does not, and set semantics also absorbs the duplicates
that replicated partitioning elements (2f, Path-BMC, Hash-SO) produce
across workers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..rdf.terms import Term, Variable
from ..rdf.triples import RDFGraph, Triple
from ..sparql.ast import TriplePattern

Row = Tuple[Term, ...]


class Relation:
    """An immutable-schema set of binding rows."""

    __slots__ = ("variables", "rows", "_positions")

    def __init__(self, variables: Iterable[Variable], rows: Optional[Set[Row]] = None):
        self.variables: Tuple[Variable, ...] = tuple(
            sorted(set(variables), key=lambda v: v.name)
        )
        self.rows: Set[Row] = rows if rows is not None else set()
        self._positions: Dict[Variable, int] = {
            v: i for i, v in enumerate(self.variables)
        }

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def position(self, variable: Variable) -> int:
        """Column index of *variable* in the schema."""
        return self._positions[variable]

    def has_variable(self, variable: Variable) -> bool:
        """Whether *variable* is part of the schema."""
        return variable in self._positions

    def value(self, row: Row, variable: Variable) -> Term:
        """The binding of *variable* in *row*."""
        return row[self._positions[variable]]

    def add_binding(self, binding: Dict[Variable, Term]) -> None:
        """Insert one row given as a variable→term mapping."""
        self.rows.add(tuple(binding[v] for v in self.variables))

    def bindings(self) -> Iterator[Dict[Variable, Term]]:
        """Rows as variable→term dictionaries (convenience/API surface)."""
        for row in self.rows:
            yield {v: row[i] for i, v in enumerate(self.variables)}

    def project(self, variables: Iterable[Variable]) -> "Relation":
        """Project onto *variables* (set semantics: duplicates collapse)."""
        kept = [v for v in sorted(set(variables), key=lambda v: v.name)
                if v in self._positions]
        positions = [self._positions[v] for v in kept]
        rows = {tuple(row[p] for p in positions) for row in self.rows}
        return Relation(kept, rows)

    def union_inplace(self, other: "Relation") -> None:
        """Add *other*'s rows (schemas must match exactly)."""
        if other.variables != self.variables:
            raise ValueError("union requires identical schemas")
        self.rows.update(other.rows)

    def __repr__(self) -> str:
        names = ",".join(v.name for v in self.variables)
        return f"Relation([{names}], {len(self.rows)} rows)"


def scan_pattern(graph: RDFGraph, pattern: TriplePattern) -> Relation:
    """Match one triple pattern against a graph; return its bindings.

    Handles repeated variables within the pattern (``?x p ?x``) by
    filtering inconsistent matches.
    """
    variables = sorted(pattern.variables(), key=lambda v: v.name)
    relation = Relation(variables)
    subject = pattern.subject if not isinstance(pattern.subject, Variable) else None
    predicate = (
        pattern.predicate if not isinstance(pattern.predicate, Variable) else None
    )
    object_ = pattern.object if not isinstance(pattern.object, Variable) else None
    for triple in graph.match(subject, predicate, object_):
        binding: Dict[Variable, Term] = {}
        consistent = True
        for term, value in (
            (pattern.subject, triple.subject),
            (pattern.predicate, triple.predicate),
            (pattern.object, triple.object),
        ):
            if isinstance(term, Variable):
                if term in binding and binding[term] != value:
                    consistent = False
                    break
                binding[term] = value
        if consistent:
            relation.add_binding(binding)
    return relation


def hash_join(left: Relation, right: Relation) -> Relation:
    """Natural (hash) join on all shared variables.

    With no shared variables this degenerates to a Cartesian product —
    the optimizer never emits such plans, but the reference evaluator
    may need it for deliberately disconnected test queries.
    """
    shared = [v for v in left.variables if right.has_variable(v)]
    out_vars = sorted(
        set(left.variables) | set(right.variables), key=lambda v: v.name
    )
    result = Relation(out_vars)
    if not shared:
        for lrow in left.rows:
            lbind = dict(zip(left.variables, lrow))
            for rrow in right.rows:
                binding = dict(zip(right.variables, rrow))
                binding.update(lbind)
                result.add_binding(binding)
        return result
    # build on the smaller side
    build, probe = (left, right) if len(left) <= len(right) else (right, left)
    build_positions = [build.position(v) for v in shared]
    probe_positions = [probe.position(v) for v in shared]
    table: Dict[Tuple[Term, ...], List[Row]] = {}
    for row in build.rows:
        key = tuple(row[p] for p in build_positions)
        table.setdefault(key, []).append(row)
    for prow in probe.rows:
        key = tuple(prow[p] for p in probe_positions)
        for brow in table.get(key, ()):
            binding = dict(zip(build.variables, brow))
            binding.update(zip(probe.variables, prow))
            result.add_binding(binding)
    return result


def multi_join(relations: List[Relation]) -> Relation:
    """Join k relations, smallest-first, greedily staying connected."""
    if not relations:
        raise ValueError("nothing to join")
    pending = sorted(relations, key=len)
    current = pending.pop(0)
    while pending:
        index = next(
            (
                i
                for i, rel in enumerate(pending)
                if any(current.has_variable(v) for v in rel.variables)
            ),
            0,
        )
        current = hash_join(current, pending.pop(index))
    return current
