"""Experiment drivers: one module per table/figure of the paper."""

from . import fig6, fig7, fig8, table3, table4, table5, table6, table7
from .benchmark_queries import (
    BenchmarkQuery,
    benchmark_queries,
    ordered_benchmark_queries,
)
from .harness import (
    ALGORITHMS,
    FIGURE_SET,
    PAPER_TRIO,
    AlgorithmRun,
    bench_scale,
    cumulative_frequency,
    default_timeout,
    run_algorithm,
)
from .tables import render_table, results_dir, write_report

__all__ = [
    "run_algorithm",
    "AlgorithmRun",
    "ALGORITHMS",
    "PAPER_TRIO",
    "FIGURE_SET",
    "default_timeout",
    "bench_scale",
    "cumulative_frequency",
    "benchmark_queries",
    "ordered_benchmark_queries",
    "BenchmarkQuery",
    "render_table",
    "write_report",
    "results_dir",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "fig6",
    "fig7",
    "fig8",
]
