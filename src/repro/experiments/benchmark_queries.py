"""The 15 benchmark queries (L1–L10, U1–U5) with datasets and statistics.

A process-level cache: generating the LUBM-like and UniProt-like
datasets and deriving exact statistics takes a few seconds, and every
table driver needs the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from ..core.cardinality import StatisticsCatalog
from ..rdf.dataset import Dataset
from ..sparql.ast import BGPQuery
from ..workloads.lubm import QUERY_SHAPES as LUBM_SHAPES
from ..workloads.lubm import generate_lubm, lubm_queries
from ..workloads.uniprot import QUERY_SHAPES as UNIPROT_SHAPES
from ..workloads.uniprot import generate_uniprot, uniprot_queries

#: the paper's presentation order (Table III: star, chain, tree, dense)
QUERY_ORDER: Tuple[str, ...] = (
    "L1",
    "U1",
    "L2",
    "U2",
    "L3",
    "L4",
    "L5",
    "L6",
    "U3",
    "U4",
    "U5",
    "L7",
    "L8",
    "L9",
    "L10",
)

QUERY_SHAPES: Dict[str, str] = {**LUBM_SHAPES, **UNIPROT_SHAPES}


@dataclass(frozen=True)
class BenchmarkQuery:
    name: str
    query: BGPQuery
    dataset: Dataset
    statistics: StatisticsCatalog
    shape: str


@lru_cache(maxsize=1)
def lubm_dataset() -> Dataset:
    return generate_lubm()


@lru_cache(maxsize=1)
def uniprot_dataset() -> Dataset:
    return generate_uniprot()


@lru_cache(maxsize=1)
def benchmark_queries() -> Dict[str, BenchmarkQuery]:
    """All 15 queries with their datasets and exact statistics."""
    result: Dict[str, BenchmarkQuery] = {}
    lubm = lubm_dataset()
    for name, query in lubm_queries().items():
        result[name] = BenchmarkQuery(
            name=name,
            query=query,
            dataset=lubm,
            statistics=StatisticsCatalog.from_dataset(query, lubm),
            shape=QUERY_SHAPES[name],
        )
    uniprot = uniprot_dataset()
    for name, query in uniprot_queries().items():
        result[name] = BenchmarkQuery(
            name=name,
            query=query,
            dataset=uniprot,
            statistics=StatisticsCatalog.from_dataset(query, uniprot),
            shape=QUERY_SHAPES[name],
        )
    return result


def ordered_benchmark_queries() -> List[BenchmarkQuery]:
    """The 15 queries in the paper's Table III presentation order."""
    queries = benchmark_queries()
    return [queries[name] for name in QUERY_ORDER]
