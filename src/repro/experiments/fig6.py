"""Figure 6 reproduction: WatDiv stress test.

6a — average optimization time per WatDiv template, per algorithm.
6b — cumulative frequency distribution of plan cost normalized to
     TD-CMD's optimal plan for the same query.

The workload (templates × instances) is scaled by ``REPRO_BENCH_SCALE``;
the paper ran 124 × 100.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..partitioning import HashSubjectObject
from ..workloads.watdiv import watdiv_workload
from .harness import FIGURE_SET, cumulative_frequency, run_algorithm
from .tables import render_table, write_report

COST_THRESHOLDS = (1.0, 2.0, 4.0, 8.0)


def run(
    templates: int = 124,
    instances_per_template: int = 2,
    algorithms: Sequence[str] = FIGURE_SET,
    timeout_seconds: Optional[float] = None,
    seed: int = 2017,
) -> Tuple[Dict[str, Dict[int, float]], Dict[str, List[float]]]:
    """Return (avg optimization time per template, cost ratios to TD-CMD)."""
    times: Dict[str, Dict[int, List[float]]] = {
        a: defaultdict(list) for a in algorithms
    }
    ratios: Dict[str, List[float]] = {a: [] for a in algorithms if a != "TD-CMD"}
    for template, query, statistics in watdiv_workload(
        templates, instances_per_template, seed=seed
    ):
        runs = {
            a: run_algorithm(
                a,
                query,
                statistics=statistics,
                partitioning=HashSubjectObject(),  # Section V-C setup
                timeout_seconds=timeout_seconds,
            )
            for a in algorithms
        }
        for a, r in runs.items():
            if not r.timed_out:
                times[a][template.identifier].append(r.elapsed_seconds)
        reference = runs.get("TD-CMD")
        if reference is not None and not reference.timed_out:
            for a, r in runs.items():
                if a != "TD-CMD" and not r.timed_out and reference.cost > 0:
                    ratios[a].append(r.cost / reference.cost)
    averages = {
        a: {t: sum(v) / len(v) for t, v in per.items() if v}
        for a, per in times.items()
    }
    return averages, ratios


def report(
    templates: Optional[int] = None,
    instances_per_template: Optional[int] = None,
    timeout_seconds: Optional[float] = None,
) -> str:
    """Render and persist the Figure 6 report."""
    from .harness import bench_scale

    scale = bench_scale()
    if templates is None:
        templates = max(4, round(24 * scale))
    if instances_per_template is None:
        instances_per_template = max(1, round(2 * scale))
    averages, ratios = run(
        templates=templates,
        instances_per_template=instances_per_template,
        timeout_seconds=timeout_seconds,
    )
    # 6a: per-algorithm aggregate over templates (mean / max of averages)
    rows_a: List[List[str]] = []
    for algorithm, per_template in averages.items():
        values = list(per_template.values())
        if not values:
            rows_a.append([algorithm, "N/A", "N/A", "0"])
            continue
        rows_a.append(
            [
                algorithm,
                f"{sum(values) / len(values) * 1000:.2f}ms",
                f"{max(values) * 1000:.2f}ms",
                str(len(values)),
            ]
        )
    content_a = render_table(
        "Figure 6a — WatDiv optimization time (per-template averages)",
        ["Algorithm", "MeanOfTemplateAvgs", "WorstTemplate", "#TemplatesDone"],
        rows_a,
        note="Paper shape: MSC slowest, TD-CMDP/TD-Auto fastest on star-heavy WatDiv.",
    )
    # 6b: cumulative frequency of cost ratio to TD-CMD
    rows_b: List[List[str]] = []
    for algorithm, ratio_list in ratios.items():
        frequencies = cumulative_frequency(ratio_list, COST_THRESHOLDS)
        rows_b.append(
            [algorithm]
            + [f"{100 * f:.0f}%" for f in frequencies]
            + [str(len(ratio_list))]
        )
    content_b = render_table(
        "Figure 6b — Cumulative frequency of plan cost / TD-CMD cost",
        ["Algorithm"] + [f"≤{t:g}x" for t in COST_THRESHOLDS] + ["#Queries"],
        rows_b,
        note=(
            "Paper shape: TD-CMDP ≈ 100% at 1x; TD-Auto matches; HGR close; "
            "MSC <50% at 1x; DP-Bushy in between."
        ),
    )
    content = content_a + "\n" + content_b
    write_report("fig6_watdiv.txt", content)
    return content


if __name__ == "__main__":
    print(report())
