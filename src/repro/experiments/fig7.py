"""Figure 7 reproduction: optimization time vs. query size, per shape.

One series per algorithm for chain / cycle / tree / dense queries from
the random generator, sizes swept from 2 up (paper: 2–30, 600 s cutoff;
the default Python sweep stops at 20 — pass ``sizes=range(2, 31, 2)``
and raise ``REPRO_TIMEOUT`` to push further).  Each point averages the
paper's three statistics draws.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cardinality import StatisticsCatalog
from ..core.join_graph import QueryShape
from ..partitioning import HashSubjectObject
from ..workloads.generators import generate_query
from .harness import FIGURE_SET, run_algorithm
from .tables import render_table, write_report

SHAPES = (QueryShape.CHAIN, QueryShape.CYCLE, QueryShape.TREE, QueryShape.DENSE)


def run(
    shapes: Sequence[QueryShape] = SHAPES,
    sizes: Optional[Sequence[int]] = None,
    algorithms: Sequence[str] = FIGURE_SET,
    draws: int = 3,
    timeout_seconds: Optional[float] = None,
    seed: int = 2017,
) -> Dict[str, Dict[str, Dict[int, Optional[float]]]]:
    """series[shape][algorithm][size] = avg seconds or None (timeout)."""
    if sizes is None:
        sizes = tuple(range(2, 21, 2))
    minimum = {
        QueryShape.CHAIN: 2,
        QueryShape.CYCLE: 3,
        QueryShape.TREE: 2,
        QueryShape.DENSE: 4,
    }
    rng = random.Random(seed)
    series: Dict[str, Dict[str, Dict[int, Optional[float]]]] = {
        shape.value: {a: {} for a in algorithms} for shape in shapes
    }
    # once an algorithm times out at some size, skip larger sizes for it
    dead: Dict[Tuple[str, str], bool] = defaultdict(bool)
    for shape in shapes:
        for size in sizes:
            if size < minimum[shape]:
                continue
            query = generate_query(shape, size, random.Random(rng.randrange(2**31)))
            catalogs = [
                StatisticsCatalog.from_random(
                    query, random.Random(rng.randrange(2**31))
                )
                for _ in range(draws)
            ]
            for algorithm in algorithms:
                if dead[(shape.value, algorithm)]:
                    series[shape.value][algorithm][size] = None
                    continue
                elapsed: List[float] = []
                timed_out = False
                for catalog in catalogs:
                    result = run_algorithm(
                        algorithm,
                        query,
                        statistics=catalog,
                        partitioning=HashSubjectObject(),  # Section V-C setup
                        timeout_seconds=timeout_seconds,
                    )
                    if result.timed_out:
                        timed_out = True
                        break
                    elapsed.append(result.elapsed_seconds)
                if timed_out:
                    series[shape.value][algorithm][size] = None
                    dead[(shape.value, algorithm)] = True
                else:
                    series[shape.value][algorithm][size] = sum(elapsed) / len(elapsed)
    return series


def report(
    sizes: Optional[Sequence[int]] = None,
    timeout_seconds: Optional[float] = None,
) -> str:
    """Render and persist the Figure 7 report."""
    series = run(sizes=sizes, timeout_seconds=timeout_seconds)
    sections = []
    for shape, per_algorithm in series.items():
        all_sizes = sorted(
            {size for sizes_map in per_algorithm.values() for size in sizes_map}
        )
        rows = []
        for algorithm, sizes_map in per_algorithm.items():
            row = [algorithm]
            for size in all_sizes:
                value = sizes_map.get(size)
                if value is None and size in sizes_map:
                    row.append("T/O")
                elif value is None:
                    row.append("-")
                else:
                    row.append(f"{value * 1000:.1f}ms")
            rows.append(row)
        sections.append(
            render_table(
                f"Figure 7 ({shape}) — optimization time vs. #triple patterns",
                ["Algorithm"] + [str(s) for s in all_sizes],
                rows,
            )
        )
    content = "\n".join(sections) + (
        "\nPaper shape: TD-CMD cheap on chain/cycle, explodes on dense; "
        "TD-CMDP 2-5x under TD-CMD on tree/dense; HGR flattest; MSC "
        "exponential everywhere; T/O = timed out (skipped at larger sizes).\n"
    )
    write_report("fig7_optimization_time.txt", content)
    return content


if __name__ == "__main__":
    print(report())
