"""Figure 8 reproduction: cumulative cost-ratio distributions, per shape.

For chain / cycle / tree / dense queries from the random generator,
each algorithm's plan cost is normalized by TD-CMD's optimal cost for
the same query; the figure reports the cumulative frequency at ratio
thresholds 1, 2, 4, 8 (the paper's x-axis ticks).  Only queries that
TD-CMD finishes within the timeout participate (as in the paper's
600 s rule).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..core.cardinality import StatisticsCatalog
from ..core.join_graph import QueryShape
from ..partitioning import HashSubjectObject
from ..workloads.generators import generate_query
from .harness import cumulative_frequency, run_algorithm
from .tables import render_table, write_report

SHAPES = (QueryShape.CHAIN, QueryShape.CYCLE, QueryShape.TREE, QueryShape.DENSE)
ALGORITHMS = ("TD-CMDP", "HGR-TD-CMD", "MSC", "DP-Bushy", "TD-Auto")
THRESHOLDS = (1.0, 2.0, 4.0, 8.0)


def run(
    shapes: Sequence[QueryShape] = SHAPES,
    sizes: Optional[Sequence[int]] = None,
    draws: int = 3,
    timeout_seconds: Optional[float] = None,
    seed: int = 2017,
) -> Dict[str, Dict[str, List[float]]]:
    """ratios[shape][algorithm] = list of cost ratios to TD-CMD."""
    if sizes is None:
        sizes = tuple(range(4, 15, 2))
    minimum = {
        QueryShape.CHAIN: 2,
        QueryShape.CYCLE: 3,
        QueryShape.TREE: 2,
        QueryShape.DENSE: 4,
    }
    rng = random.Random(seed)
    ratios: Dict[str, Dict[str, List[float]]] = {
        shape.value: {a: [] for a in ALGORITHMS} for shape in shapes
    }
    # once an algorithm times out for a shape, skip it at larger sizes
    dead: Dict[tuple, bool] = {}
    for shape in shapes:
        for size in sizes:
            if size < minimum[shape]:
                continue
            query = generate_query(shape, size, random.Random(rng.randrange(2**31)))
            for _ in range(draws):
                catalog = StatisticsCatalog.from_random(
                    query, random.Random(rng.randrange(2**31))
                )
                if dead.get((shape.value, "TD-CMD")):
                    break
                reference = run_algorithm(
                    "TD-CMD",
                    query,
                    statistics=catalog,
                    partitioning=HashSubjectObject(),  # Section V-C setup
                    timeout_seconds=timeout_seconds,
                )
                if reference.timed_out:
                    dead[(shape.value, "TD-CMD")] = True
                    break
                if reference.cost <= 0:
                    continue
                for algorithm in ALGORITHMS:
                    if dead.get((shape.value, algorithm)):
                        continue
                    result = run_algorithm(
                        algorithm,
                        query,
                        statistics=catalog,
                        partitioning=HashSubjectObject(),  # Section V-C setup
                        timeout_seconds=timeout_seconds,
                    )
                    if result.timed_out:
                        dead[(shape.value, algorithm)] = True
                    else:
                        ratios[shape.value][algorithm].append(
                            result.cost / reference.cost
                        )
    return ratios


def report(
    sizes: Optional[Sequence[int]] = None,
    timeout_seconds: Optional[float] = None,
) -> str:
    """Render and persist the Figure 8 report."""
    ratios = run(sizes=sizes, timeout_seconds=timeout_seconds)
    sections = []
    for shape, per_algorithm in ratios.items():
        rows = []
        for algorithm, ratio_list in per_algorithm.items():
            frequencies = cumulative_frequency(ratio_list, THRESHOLDS)
            rows.append(
                [algorithm]
                + [f"{100 * f:.0f}%" for f in frequencies]
                + [str(len(ratio_list))]
            )
        sections.append(
            render_table(
                f"Figure 8 ({shape}) — cumulative frequency of cost / TD-CMD",
                ["Algorithm"] + [f"≤{t:g}x" for t in THRESHOLDS] + ["#Queries"],
                rows,
            )
        )
    content = "\n".join(sections) + (
        "\nPaper shape: TD-CMDP and TD-Auto ~100% at 1x; HGR close to 1x; "
        "MSC <50% at 1x; DP-Bushy ~90% above 1x on dense queries.\n"
    )
    write_report("fig8_cost_cdf.txt", content)
    return content


if __name__ == "__main__":
    print(report())
