"""Shared experiment harness.

Runs any optimizer (ours or a baseline) against a query with a wall
timeout, returning uniform :class:`AlgorithmRun` records the table and
figure drivers consume.  The registry covers every algorithm the paper
evaluates plus the TriAD-style extra baseline.

Scale knobs: the paper ran Java on a server with a 600 s cutoff; this
reproduction defaults to ``REPRO_TIMEOUT`` seconds (default 15) per
run so regenerating all tables stays laptop-friendly.  Timed-out runs
are reported as ``N/A (>Ts)``, exactly how the paper reports MSC on
L10.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines import DPBushyOptimizer, MSCOptimizer, TriADOptimizer
from ..core.auto import AutonomousOptimizer
from ..core.cardinality import StatisticsCatalog
from ..core.cost import CostParameters, PAPER_PARAMETERS
from ..core.enumeration import (
    OptimizationResult,
    OptimizationTimeout,
    TopDownEnumerator,
)
from ..core.local_query import LocalQueryIndex
from ..core.optimizer import make_builder
from ..core.pruning import PrunedTopDownEnumerator
from ..core.reduction import ReductionOptimizer
from ..partitioning.base import PartitioningMethod
from ..rdf.dataset import Dataset
from ..sparql.ast import BGPQuery

#: every algorithm the experiments compare
ALGORITHMS: Dict[str, type] = {
    "TD-CMD": TopDownEnumerator,
    "TD-CMDP": PrunedTopDownEnumerator,
    "HGR-TD-CMD": ReductionOptimizer,
    "TD-Auto": AutonomousOptimizer,
    "MSC": MSCOptimizer,
    "DP-Bushy": DPBushyOptimizer,
    "TriAD-DP": TriADOptimizer,
}

#: the trio of Table IV/V/VI
PAPER_TRIO = ("TD-Auto", "MSC", "DP-Bushy")

#: the six lines of Figures 6–8 and Table VII
FIGURE_SET = ("TD-CMD", "TD-CMDP", "HGR-TD-CMD", "MSC", "DP-Bushy", "TD-Auto")


def default_timeout() -> float:
    """Per-run timeout in seconds (env: ``REPRO_TIMEOUT``)."""
    return float(os.environ.get("REPRO_TIMEOUT", "15"))


def bench_scale() -> float:
    """Workload scale multiplier for benches (env: ``REPRO_BENCH_SCALE``)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1"))


@dataclass
class AlgorithmRun:
    """One (algorithm, query) measurement."""

    algorithm: str
    query_name: str
    elapsed_seconds: Optional[float]
    cost: Optional[float]
    plans_considered: Optional[int]
    timed_out: bool
    timeout_seconds: float
    result: Optional[OptimizationResult] = None

    @property
    def time_label(self) -> str:
        """Human-readable elapsed time, '>Ts' on timeout."""
        if self.timed_out:
            return f">{self.timeout_seconds:.0f}s"
        return f"{self.elapsed_seconds:.3f}s"

    @property
    def cost_label(self) -> str:
        """Scientific-notation plan cost, 'N/A' on timeout."""
        if self.timed_out or self.cost is None:
            return "N/A"
        return f"{self.cost:.2E}"

    @property
    def plans_label(self) -> str:
        """Thousands-separated plan count, 'N/A' on timeout."""
        if self.timed_out or self.plans_considered is None:
            return "N/A"
        return f"{self.plans_considered:,}"


def run_algorithm(
    algorithm: str,
    query: BGPQuery,
    statistics: Optional[StatisticsCatalog] = None,
    dataset: Optional[Dataset] = None,
    partitioning: Optional[PartitioningMethod] = None,
    timeout_seconds: Optional[float] = None,
    parameters: CostParameters = PAPER_PARAMETERS,
    seed: int = 0,
) -> AlgorithmRun:
    """Run one optimizer on one query with a timeout; never raises."""
    if timeout_seconds is None:
        timeout_seconds = default_timeout()
    implementation = ALGORITHMS[algorithm]
    builder = make_builder(query, statistics, dataset, parameters, seed)
    local_index = LocalQueryIndex(builder.join_graph, partitioning)
    optimizer = implementation(
        builder.join_graph,
        builder,
        local_index=local_index,
        timeout_seconds=timeout_seconds,
    )
    started = time.perf_counter()
    try:
        result = optimizer.optimize()
    except OptimizationTimeout:
        return AlgorithmRun(
            algorithm=algorithm,
            query_name=query.name,
            elapsed_seconds=None,
            cost=None,
            plans_considered=getattr(
                getattr(optimizer, "stats", None), "plans_considered", None
            ),
            timed_out=True,
            timeout_seconds=timeout_seconds,
        )
    elapsed = time.perf_counter() - started
    return AlgorithmRun(
        algorithm=algorithm,
        query_name=query.name,
        elapsed_seconds=elapsed,
        cost=result.cost,
        plans_considered=result.stats.plans_considered,
        timed_out=False,
        timeout_seconds=timeout_seconds,
        result=result,
    )


def cumulative_frequency(
    ratios: Sequence[float], thresholds: Sequence[float] = (1, 2, 4, 8)
) -> List[float]:
    """Fraction of ratios ≤ each threshold (the Fig. 6b/8 y-axis)."""
    if not ratios:
        return [0.0 for _ in thresholds]
    return [
        sum(1 for r in ratios if r <= t + 1e-9) / len(ratios) for t in thresholds
    ]
