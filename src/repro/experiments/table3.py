"""Table III reproduction: the benchmark query inventory."""

from __future__ import annotations

from typing import List

from ..core.join_graph import JoinGraph
from .benchmark_queries import ordered_benchmark_queries
from .tables import render_table, write_report


def run() -> List[List[str]]:
    """Rows: query, type, #triple patterns, #join variables, max degree."""
    rows = []
    for bench in ordered_benchmark_queries():
        join_graph = JoinGraph(bench.query)
        rows.append(
            [
                bench.name,
                bench.shape,
                str(len(bench.query)),
                str(len(join_graph.join_variables)),
                str(join_graph.max_degree()),
            ]
        )
    return rows


def report() -> str:
    """Render and persist the Table III report."""
    content = render_table(
        "Table III — Queries (types and sizes)",
        ["Query", "Type", "#TriplePatterns", "#JoinVars", "MaxDegree"],
        run(),
        note=(
            "Counts from the verbatim appendix queries; the paper's Table III "
            "lists L10 as 12 patterns but its appendix text has 14."
        ),
    )
    write_report("table3_queries.txt", content)
    return content


if __name__ == "__main__":
    print(report())
