"""Table IV reproduction: query optimization time (L and U queries).

TD-Auto vs MSC vs DP-Bushy on the 15 benchmark queries with hash
partitioning and dataset-derived statistics.  The paper's shape to
check: MSC explodes on the dense queries (432 s on L9, >10 h on L10),
DP-Bushy is fast everywhere but with a much smaller plan space, and
TD-Auto sits in between while finding the best plans (Table VI).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..partitioning import HashSubjectObject
from .benchmark_queries import ordered_benchmark_queries
from .harness import PAPER_TRIO, AlgorithmRun, run_algorithm
from .tables import render_table, write_report


def run(
    algorithms=PAPER_TRIO, timeout_seconds: Optional[float] = None
) -> Dict[str, Dict[str, AlgorithmRun]]:
    """runs[query][algorithm] for the benchmark trio."""
    partitioning = HashSubjectObject()
    results: Dict[str, Dict[str, AlgorithmRun]] = {}
    for bench in ordered_benchmark_queries():
        per_query: Dict[str, AlgorithmRun] = {}
        for algorithm in algorithms:
            per_query[algorithm] = run_algorithm(
                algorithm,
                bench.query,
                statistics=bench.statistics,
                partitioning=partitioning,
                timeout_seconds=timeout_seconds,
            )
        results[bench.name] = per_query
    return results


def report(timeout_seconds: Optional[float] = None) -> str:
    """Render and persist the Table IV report."""
    results = run(timeout_seconds=timeout_seconds)
    rows: List[List[str]] = []
    for query_name, per_query in results.items():
        rows.append(
            [query_name] + [per_query[a].time_label for a in PAPER_TRIO]
        )
    content = render_table(
        "Table IV — Query optimization time",
        ["Query"] + list(PAPER_TRIO),
        rows,
        note=(
            "Expected shape (paper): MSC slowest everywhere and times out on "
            "dense queries (L9/L10); DP-Bushy fastest (smallest space); "
            "TD-Auto close to DP-Bushy while exploring far more plans."
        ),
    )
    write_report("table4_optimization_time.txt", content)
    return content


if __name__ == "__main__":
    print(report())
