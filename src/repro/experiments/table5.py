"""Table V reproduction: query processing time on the simulated cluster.

Plans from TD-Auto / MSC / DP-Bushy execute on a 10-worker simulated
cluster with Hash-SO partitioning; TD-Auto additionally runs with 2f
and Path-BMC (only the partition-aware optimizer can exploit them).
"Time" is the cost-model-priced critical path over *measured* tuple
counts (deterministic), with wall-clock seconds reported alongside.

Expected shape: TD-Auto ≥ baselines on chain/tree/dense; with Path-BMC
every benchmark query becomes local → order-of-magnitude improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..engine import Cluster, Executor, evaluate_reference
from ..partitioning import HashSubjectObject, PathBMC, SemanticHash
from .benchmark_queries import ordered_benchmark_queries
from .harness import run_algorithm
from .tables import render_table, write_report

CLUSTER_SIZE = 10


@dataclass
class ExecutionRow:
    label: str  # "<partitioning>/<algorithm>"
    simulated_time: Optional[float]
    wall_seconds: Optional[float]
    rows: Optional[int]
    correct: Optional[bool]

    @property
    def time_label(self) -> str:
        """Simulated time, 'N/A' when the optimizer timed out."""
        if self.simulated_time is None:
            return "N/A"
        return f"{self.simulated_time:.2f}"


def run(timeout_seconds: Optional[float] = None) -> Dict[str, List[ExecutionRow]]:
    """Execute every configuration; verify results against the reference."""
    configurations = [
        ("Hash-SO", HashSubjectObject(), "TD-Auto"),
        ("Hash-SO", HashSubjectObject(), "MSC"),
        ("Hash-SO", HashSubjectObject(), "DP-Bushy"),
        ("2f", SemanticHash(2), "TD-Auto"),
        ("Path-BMC", PathBMC(), "TD-Auto"),
    ]
    clusters: Dict[str, Dict[int, Cluster]] = {}
    results: Dict[str, List[ExecutionRow]] = {}
    for bench in ordered_benchmark_queries():
        reference = evaluate_reference(bench.query, bench.dataset.graph)
        rows: List[ExecutionRow] = []
        for part_label, method, algorithm in configurations:
            label = f"{part_label}/{algorithm}"
            run_result = run_algorithm(
                algorithm,
                bench.query,
                statistics=bench.statistics,
                partitioning=method,
                timeout_seconds=timeout_seconds,
            )
            if run_result.timed_out:
                rows.append(ExecutionRow(label, None, None, None, None))
                continue
            cache = clusters.setdefault(part_label, {})
            key = id(bench.dataset)
            if key not in cache:
                cache[key] = Cluster.build(bench.dataset, method, CLUSTER_SIZE)
            cluster = cache[key]
            relation, metrics = Executor(cluster).execute(
                run_result.result.plan, bench.query
            )
            projected_reference = reference
            rows.append(
                ExecutionRow(
                    label=label,
                    simulated_time=metrics.critical_path_cost,
                    wall_seconds=metrics.wall_seconds,
                    rows=len(relation),
                    correct=relation.rows == projected_reference.rows,
                )
            )
        results[bench.name] = rows
    return results


def report(timeout_seconds: Optional[float] = None) -> str:
    """Render and persist the Table V report."""
    results = run(timeout_seconds=timeout_seconds)
    labels = [row.label for row in next(iter(results.values()))]
    rows: List[List[str]] = []
    for query_name, per_query in results.items():
        rows.append([query_name] + [row.time_label for row in per_query])
    incorrect = [
        (q, row.label)
        for q, per_query in results.items()
        for row in per_query
        if row.correct is False
    ]
    note = (
        "Simulated time = cost-model-priced critical path over measured tuple "
        "movement on a 10-worker cluster. "
        + (
            "ALL RESULTS MATCH the single-node reference evaluation."
            if not incorrect
            else f"MISMATCHES: {incorrect}"
        )
    )
    content = render_table(
        "Table V — Query processing time (simulated cluster)",
        ["Query"] + labels,
        rows,
        note=note,
    )
    write_report("table5_processing_time.txt", content)
    return content


if __name__ == "__main__":
    print(report())
