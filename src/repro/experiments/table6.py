"""Table VI reproduction: estimated cost of the generated plans.

The paper uses this table to argue the cost model tracks runtime: the
plan with the minimal estimated cost usually also has the lowest
processing time, and TD-Auto's estimated costs are never above the
baselines' (it explores a superset of their spaces on these queries).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..partitioning import HashSubjectObject
from .benchmark_queries import ordered_benchmark_queries
from .harness import PAPER_TRIO, AlgorithmRun, run_algorithm
from .tables import render_table, write_report


def run(timeout_seconds: Optional[float] = None) -> Dict[str, Dict[str, AlgorithmRun]]:
    """Optimize the benchmark trio; return runs[query][algorithm]."""
    partitioning = HashSubjectObject()
    results: Dict[str, Dict[str, AlgorithmRun]] = {}
    for bench in ordered_benchmark_queries():
        results[bench.name] = {
            algorithm: run_algorithm(
                algorithm,
                bench.query,
                statistics=bench.statistics,
                partitioning=partitioning,
                timeout_seconds=timeout_seconds,
            )
            for algorithm in PAPER_TRIO
        }
    return results


def report(timeout_seconds: Optional[float] = None) -> str:
    """Render and persist the Table VI report."""
    results = run(timeout_seconds=timeout_seconds)
    rows: List[List[str]] = []
    violations = []
    for query_name, per_query in results.items():
        rows.append([query_name] + [per_query[a].cost_label for a in PAPER_TRIO])
        td = per_query["TD-Auto"]
        for other in ("MSC", "DP-Bushy"):
            run_other = per_query[other]
            if (
                not td.timed_out
                and not run_other.timed_out
                and td.cost > run_other.cost * (1 + 1e-9)
            ):
                violations.append((query_name, other))
    note = (
        "Expected shape: TD-Auto's estimated cost ≤ MSC and DP-Bushy on every "
        "query. "
        + ("HOLDS on all queries." if not violations else f"VIOLATED: {violations}")
    )
    content = render_table(
        "Table VI — Estimated cost of generated query plans",
        ["Query"] + list(PAPER_TRIO),
        rows,
        note=note,
    )
    write_report("table6_plan_cost.txt", content)
    return content


if __name__ == "__main__":
    print(report())
