"""Table VII reproduction: size of the search space.

Counts the candidate plans each algorithm constructs for chain / cycle
/ tree / dense queries of 8, 16, and 30 triple patterns (the paper's
grid).  Expected shape: TD-CMD explores the largest space (its counts
on chains follow 2·T(Q) exactly), TD-CMDP prunes stars/trees/dense
hard, HGR-TD-CMD is smallest, MSC and DP-Bushy either tiny or N/A
(timeout) — the paper reports N/A for MSC beyond 8 patterns and for
DP-Bushy on large chains/cycles.

Pure Python is slower than the paper's Java, so entries whose run
exceeds the timeout are reported ``N/A`` at smaller sizes than in the
paper; the relative ordering is what reproduces.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.join_graph import QueryShape
from ..partitioning import HashSubjectObject
from ..workloads.generators import generate_query
from .harness import FIGURE_SET, AlgorithmRun, run_algorithm
from .tables import render_table, write_report

SHAPES = (QueryShape.CHAIN, QueryShape.CYCLE, QueryShape.TREE, QueryShape.DENSE)
SIZES = (8, 16, 30)


def run(
    sizes: Sequence[int] = SIZES,
    algorithms: Sequence[str] = FIGURE_SET,
    timeout_seconds: Optional[float] = None,
    seed: int = 11,
) -> Dict[Tuple[str, int], Dict[str, AlgorithmRun]]:
    """Run the shape × size × algorithm grid."""
    results: Dict[Tuple[str, int], Dict[str, AlgorithmRun]] = {}
    for shape in SHAPES:
        for size in sizes:
            query = generate_query(shape, size, random.Random(seed))
            results[(shape.value, size)] = {
                algorithm: run_algorithm(
                    algorithm,
                    query,
                    partitioning=HashSubjectObject(),  # Section V-C setup
                    timeout_seconds=timeout_seconds,
                    seed=seed,
                )
                for algorithm in algorithms
            }
    return results


def report(
    sizes: Sequence[int] = SIZES, timeout_seconds: Optional[float] = None
) -> str:
    """Render and persist the Table VII report."""
    results = run(sizes=sizes, timeout_seconds=timeout_seconds)
    rows: List[List[str]] = []
    for algorithm in FIGURE_SET:
        row = [algorithm]
        for shape in SHAPES:
            for size in sizes:
                row.append(results[(shape.value, size)][algorithm].plans_label)
        rows.append(row)
    headers = ["Algorithm"] + [
        f"{shape.value}-{size}" for shape in SHAPES for size in sizes
    ]
    content = render_table(
        "Table VII — Size of search space (#plans considered)",
        headers,
        rows,
        note=(
            "N/A = run exceeded the timeout (the paper's N/A entries are "
            "600 s Java timeouts; ours are wall-clock Python timeouts)."
        ),
    )
    write_report("table7_search_space.txt", content)
    return content


if __name__ == "__main__":
    print(report())
