"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from pathlib import Path
from typing import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    note: str = "",
) -> str:
    """Render an aligned ASCII table with a title and optional footnote."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError(f"row has {len(row)} cells, expected {columns}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = [title, "=" * len(title)]
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        )
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines) + "\n"


def results_dir() -> Path:
    """Where experiment reports are written (created on demand)."""
    path = Path(__file__).resolve().parents[3] / "results"
    path.mkdir(exist_ok=True)
    return path


def write_report(name: str, content: str) -> Path:
    """Write a report file under ``results/`` and return its path."""
    path = results_dir() / name
    path.write_text(content, encoding="utf-8")
    return path
