"""Zero-dependency observability: span tracing, metrics, exporters.

The subsystem has four small parts:

* :mod:`.spans` — :class:`Tracer` / :class:`Span`: monotonic nested
  spans with attributes and events, thread-safe collection, and a
  deterministic cross-process merge for the optimizer's worker pool;
* :mod:`.metrics` — :class:`MetricsRegistry`: typed counters, gauges,
  and histograms with the same snapshot/merge transport;
* :mod:`.runtime` — ambient activation: instrumented code calls
  :func:`~repro.observability.runtime.span` /
  :func:`~repro.observability.runtime.event` /
  :func:`~repro.observability.runtime.count`, which no-op unless a
  tracer is :func:`~repro.observability.runtime.activate`\\ d;
* :mod:`.export` — JSON-lines, Chrome trace-event (Perfetto), and a
  terminal flame summary, plus the trace validator and span-coverage
  measure CI gates on.

Tracing is a property of an optimizer *session*: pass ``trace=True``
in :class:`repro.OptimizeOptions` and read ``session.tracer``.  See
``docs/OBSERVABILITY.md`` for the span taxonomy and how spans map back
to the paper's algorithms and cost model.
"""

from .export import (
    flame_summary,
    span_coverage,
    spans_from_jsonl,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    activate,
    count,
    current_tracer,
    event,
    gauge,
    is_active,
    metrics,
    span,
)
from .spans import NULL_SPAN, NullSpan, Span, SpanEvent, Tracer, validate_span_tree

__all__ = [
    "Tracer",
    "Span",
    "SpanEvent",
    "NullSpan",
    "NULL_SPAN",
    "validate_span_tree",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "activate",
    "current_tracer",
    "is_active",
    "span",
    "event",
    "count",
    "gauge",
    "metrics",
    "to_jsonl",
    "spans_from_jsonl",
    "to_chrome_trace",
    "validate_chrome_trace",
    "flame_summary",
    "span_coverage",
]
