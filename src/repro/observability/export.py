"""Trace exporters: JSON-lines, Chrome trace-event format, flame text.

Three views of one collected trace:

* :func:`to_jsonl` / :func:`spans_from_jsonl` — one span per line,
  loss-free round trip (the archival format);
* :func:`to_chrome_trace` — the Chrome trace-event JSON object format
  (``{"traceEvents": [...]}``) loadable in Perfetto and
  ``chrome://tracing``: spans become complete (``"ph": "X"``) events,
  span events become thread-scoped instants (``"ph": "i"``), tracks
  become named threads, and the metrics snapshot rides along under
  ``otherData``;
* :func:`flame_summary` — a terminal flame view: the span tree
  aggregated by name path with inclusive time and percent-of-root.

:func:`validate_chrome_trace` is the schema check the tests and the CI
``observability`` job run against exported traces, and
:func:`span_coverage` measures how much of a root span its children
account for (the acceptance gate is >= 90% of optimize wall-clock).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .spans import Span, Tracer

TraceLike = Union[Tracer, Sequence[Span]]


def _spans_of(trace: TraceLike) -> List[Span]:
    if isinstance(trace, Tracer):
        return list(trace.finished_spans())
    return [span for span in trace if span.end is not None]


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------
def to_jsonl(trace: TraceLike) -> str:
    """Serialize every finished span as one JSON object per line."""
    return "\n".join(
        json.dumps(span.to_dict(), sort_keys=True) for span in _spans_of(trace)
    )


def spans_from_jsonl(text: str) -> List[Span]:
    """Rebuild spans from :func:`to_jsonl` output (loss-free)."""
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
_PID = 1


def _track_ids(spans: Sequence[Span]) -> Dict[str, int]:
    """Stable track -> tid mapping: ``main`` is 1, the rest sorted."""
    tracks = {span.track for span in spans}
    ordered = (["main"] if "main" in tracks else []) + sorted(tracks - {"main"})
    return {track: index + 1 for index, track in enumerate(ordered)}


def to_chrome_trace(
    trace: TraceLike, metrics: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Export as a Chrome trace-event JSON object (Perfetto-loadable).

    Timestamps are microseconds on the tracer's monotonic clock.  When
    *trace* is a :class:`Tracer` its metrics snapshot is embedded under
    ``otherData.metrics`` automatically; pass *metrics* to override.
    """
    spans = _spans_of(trace)
    if metrics is None and isinstance(trace, Tracer):
        metrics = trace.metrics.snapshot()
    tids = _track_ids(spans)
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in spans:
        tid = tids[span.track]
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "repro",
                "pid": _PID,
                "tid": tid,
                "ts": span.start * 1e6,
                "dur": max(span.duration * 1e6, 0.001),
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attributes,
                },
            }
        )
        for item in span.events:
            events.append(
                {
                    "ph": "i",
                    "name": item.name,
                    "cat": "repro",
                    "pid": _PID,
                    "tid": tid,
                    "ts": item.timestamp * 1e6,
                    "s": "t",
                    "args": dict(item.attributes),
                }
            )
    data: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        data["otherData"] = {"metrics": metrics}
    return data


def validate_chrome_trace(data: Any) -> List[str]:
    """Schema check for the trace-event format; returns problems.

    Covers the subset of the (informally specified) trace-event format
    that Perfetto and ``chrome://tracing`` require to load a file:
    ``traceEvents`` must be a list of objects, every event needs
    ``name``/``ph``/``pid``/``tid``, duration events need numeric
    non-negative ``ts``/``dur``, instants need ``ts`` and scope ``s``,
    metadata events need an ``args`` object.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, ev in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for required in ("name", "ph", "pid", "tid"):
            if required not in ev:
                problems.append(f"{where}: missing {required!r}")
        phase = ev.get("ph")
        if phase == "X":
            for key in ("ts", "dur"):
                value = ev.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where}: {key!r} must be a number >= 0")
        elif phase == "i":
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"{where}: 'ts' must be a number")
            if ev.get("s") not in ("t", "p", "g"):
                problems.append(f"{where}: instant scope 's' must be t/p/g")
        elif phase == "M":
            if not isinstance(ev.get("args"), dict):
                problems.append(f"{where}: metadata event needs an 'args' object")
        elif not isinstance(phase, str):
            problems.append(f"{where}: 'ph' must be a string")
    return problems


# ----------------------------------------------------------------------
# coverage + flame summary
# ----------------------------------------------------------------------
def span_coverage(trace: TraceLike, root: Span) -> float:
    """Fraction of *root*'s duration covered by its direct children.

    Child intervals are clipped to the root and merged, so overlapping
    or out-of-range children never push coverage past 1.0.  A root
    with zero duration counts as fully covered.
    """
    if root.end is None or root.duration <= 0.0:
        return 1.0
    intervals: List[Tuple[float, float]] = []
    for span in _spans_of(trace):
        if span.parent_id != root.span_id or span.end is None:
            continue
        start = max(span.start, root.start)
        end = min(span.end, root.end)
        if end > start:
            intervals.append((start, end))
    intervals.sort()
    covered = 0.0
    cursor = root.start
    for start, end in intervals:
        start = max(start, cursor)
        if end > start:
            covered += end - start
            cursor = end
    return covered / root.duration


def flame_summary(
    trace: TraceLike, min_percent: float = 0.5, max_depth: int = 12
) -> str:
    """Render the span tree as an indented terminal flame summary.

    Sibling spans with the same name are aggregated (call count + total
    inclusive seconds); rows below *min_percent* of the total root time
    are folded away.  Multiple roots (one per traced optimize/execute)
    aggregate by name too.
    """
    spans = _spans_of(trace)
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    roots = children.get(None, [])
    total = sum(span.duration for span in roots)
    lines = [f"{'span':<48} {'calls':>6} {'total':>10} {'share':>7}"]

    def aggregate(group: Iterable[Span]) -> List[Tuple[str, List[Span]]]:
        by_name: Dict[str, List[Span]] = {}
        for span in group:
            by_name.setdefault(span.name, []).append(span)
        # heaviest first; name breaks exact ties deterministically
        return sorted(
            by_name.items(),
            key=lambda item: (-sum(s.duration for s in item[1]), item[0]),
        )

    def render(group: Iterable[Span], depth: int) -> None:
        if depth > max_depth:
            return
        for name, same in aggregate(group):
            seconds = sum(span.duration for span in same)
            percent = 100.0 * seconds / total if total > 0 else 0.0
            if percent < min_percent and depth > 0:
                continue
            label = "  " * depth + name
            lines.append(
                f"{label:<48} {len(same):>6} {seconds * 1000:>8.2f}ms {percent:>6.1f}%"
            )
            nested: List[Span] = []
            for span in same:
                nested.extend(children.get(span.span_id, []))
            render(nested, depth + 1)

    render(roots, 0)
    return "\n".join(lines)
