"""Typed metrics registry: counters, gauges, histograms.

The registry complements spans: spans answer *where did the time go*,
metrics answer *how often / how much* — plans considered, Rule 1–3
pruning hits, tuples shipped, plan-cache hits.  Everything is
standard-library, thread-safe, and mergeable across worker processes
via :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.merge`
(the same transport the tracer uses for spans).

Naming convention (see ``docs/OBSERVABILITY.md``): dotted lowercase,
prefixed by subsystem — ``optimizer.*``, ``pruning.*``, ``jgr.*``,
``plan_cache.*``, ``engine.*``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing value (e.g. ``engine.tuples_shipped``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value-wins measurement (e.g. ``optimizer.workers``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Overwrite the gauge with *value*."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Running count/sum/min/max of observed values (e.g. span seconds)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Mean of the observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Get-or-create registry of named counters/gauges/histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}  #: guarded-by: _lock
        self._gauges: Dict[str, Gauge] = {}  #: guarded-by: _lock
        self._histograms: Dict[str, Histogram] = {}  #: guarded-by: _lock

    # -- accessors ------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on first use)."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name* (created on first use)."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under *name* (created on first use)."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name)
            return instrument

    def counter_value(self, name: str) -> Number:
        """Current value of counter *name* (0 if never touched)."""
        with self._lock:
            instrument = self._counters.get(name)
            return instrument.value if instrument is not None else 0

    def names(self) -> List[str]:
        """Every registered instrument name, sorted."""
        with self._lock:
            return sorted(
                set(self._counters) | set(self._gauges) | set(self._histograms)
            )

    # -- transport ------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-serializable dump (sorted keys, deterministic)."""
        with self._lock:
            return {
                "counters": {
                    name: self._counters[name].value
                    for name in sorted(self._counters)
                },
                "gauges": {
                    name: self._gauges[name].value for name in sorted(self._gauges)
                },
                "histograms": {
                    name: {
                        "count": h.count,
                        "total": h.total,
                        "min": h.min,
                        "max": h.max,
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry.

        Counters add, gauges take the incoming value (last wins),
        histograms combine count/total/min/max.
        """
        for name, value in sorted(snapshot.get("counters", {}).items()):
            self.counter(name).inc(value)  # type: ignore[arg-type]
        for name, value in sorted(snapshot.get("gauges", {}).items()):
            self.gauge(name).set(value)  # type: ignore[arg-type]
        for name, data in sorted(snapshot.get("histograms", {}).items()):
            histogram = self.histogram(name)
            incoming_count = int(data.get("count", 0))  # type: ignore[union-attr]
            if incoming_count <= 0:
                continue
            histogram.count += incoming_count
            histogram.total += float(data.get("total", 0.0))  # type: ignore[union-attr, arg-type]
            for bound, pick in (("min", min), ("max", max)):
                incoming = data.get(bound)  # type: ignore[union-attr]
                if incoming is None:
                    continue
                current = getattr(histogram, bound)
                setattr(
                    histogram,
                    bound,
                    float(incoming)
                    if current is None
                    else pick(current, float(incoming)),
                )

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self.names())} instruments)"
