"""Ambient tracer activation: how instrumented code finds the tracer.

Instrumentation sites throughout the optimizer and the engine do not
take a tracer parameter — they ask this module for the *active* tracer
(a :class:`contextvars.ContextVar`, so activation is safe under
threads and nested sessions).  When no tracer is active every helper
is a no-op: :func:`span` returns the shared
:data:`~repro.observability.spans.NULL_SPAN`, :func:`event` /
:func:`count` return immediately, and :func:`metrics` returns ``None``
so hot loops can hoist the check out of the loop body.

Typical instrumentation::

    from ..observability import runtime as obs

    with obs.span("enumerate", algorithm=self.algorithm_name) as sp:
        ...
        sp.set(plans_considered=stats.plans_considered)

Sessions activate their tracer with :func:`activate`; the pool workers
of :mod:`repro.core.parallel` activate a private tracer and ship it
back to the driver as a payload.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional, Union

from .metrics import MetricsRegistry, Number
from .spans import NULL_SPAN, NullSpan, Span, Tracer

_ACTIVE: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_active_tracer", default=None
)

#: what :func:`span` hands back — a real span or the shared no-op
SpanLike = Union[Span, NullSpan]


def current_tracer() -> Optional[Tracer]:
    """The tracer active in this context, or ``None``."""
    return _ACTIVE.get()


def is_active() -> bool:
    """True when a tracer is active (instrumentation will record)."""
    return _ACTIVE.get() is not None


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Make *tracer* the active tracer for the dynamic extent."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def span(name: str, **attributes: object) -> SpanLike:
    """Start a span on the active tracer (no-op span when inactive)."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attributes)


def event(name: str, **attributes: object) -> None:
    """Record an event on the innermost open span, if tracing is active.

    With no open span the event is attached to nothing and dropped
    (events describe a moment *within* some phase; all instrumented
    phases open a span first).
    """
    tracer = _ACTIVE.get()
    if tracer is None:
        return
    current = tracer.current_span()
    if current is not None:
        current.event(name, **attributes)


def count(name: str, amount: Number = 1) -> None:
    """Increment counter *name* on the active registry (no-op otherwise)."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.metrics.counter(name).inc(amount)


def gauge(name: str, value: Number) -> None:
    """Set gauge *name* on the active registry (no-op otherwise)."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.metrics.gauge(name).set(value)


def metrics() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` — hoist this out of hot loops."""
    tracer = _ACTIVE.get()
    return tracer.metrics if tracer is not None else None
