"""Span-based tracing primitives: :class:`Tracer`, :class:`Span`.

A *span* is one timed region of work — an optimize call, one
enumeration pass, one executed operator — with monotonic start/end
times (``time.perf_counter`` relative to the owning tracer's epoch),
key/value attributes, point-in-time *events* (fault injections,
plan-cache hits, JGR set-cover rounds), and a parent link that makes
the collected spans a forest.

Design constraints, in order:

* **zero-dependency** — standard library only;
* **zero-cost when disabled** — instrumented code talks to the module
  through :mod:`repro.observability.runtime`, which hands out the
  shared :data:`NULL_SPAN` when no tracer is active, so the disabled
  path is one context-variable read per *phase* (never per candidate
  plan);
* **thread- and process-safe collection** — span recording takes a
  lock and span nesting is tracked per thread; worker processes (the
  :mod:`repro.core.parallel` pool) build their own tracer, serialize
  it with :meth:`Tracer.to_payload`, and the driver merges payloads
  deterministically with :meth:`Tracer.adopt` (stable id remapping,
  one *track* per worker).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry

#: attribute values are expected to be JSON-serializable primitives
AttrValue = Any


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (e.g. one fault)."""

    name: str
    timestamp: float  #: seconds since the owning tracer's epoch
    attributes: Dict[str, AttrValue] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, AttrValue]:
        """Serialize for JSON-lines export / cross-process transport."""
        return {
            "name": self.name,
            "timestamp": self.timestamp,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, AttrValue]) -> "SpanEvent":
        """Rebuild an event serialized with :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            timestamp=float(data["timestamp"]),
            attributes=dict(data.get("attributes", {})),
        )


class Span:
    """One timed region of work, usable as a context manager.

    Spans are created (and started) by :meth:`Tracer.span`; leaving the
    ``with`` block ends them.  ``set`` attaches attributes, ``event``
    records a timestamped point annotation.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "track",
        "start",
        "end",
        "attributes",
        "events",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        track: str,
        start: float,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, AttrValue] = {}
        self.events: List[SpanEvent] = []
        self._tracer = tracer

    # -- recording ------------------------------------------------------
    def set(self, **attributes: AttrValue) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: AttrValue) -> None:
        """Record a point-in-time event inside this span."""
        timestamp = self._tracer.now() if self._tracer is not None else self.start
        self.events.append(SpanEvent(name, timestamp, dict(attributes)))

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._tracer is not None:
            self._tracer.end_span(self)

    # -- derived --------------------------------------------------------
    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    # -- transport ------------------------------------------------------
    def to_dict(self) -> Dict[str, AttrValue]:
        """Serialize for JSON-lines export / cross-process transport."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, AttrValue]) -> "Span":
        """Rebuild a span serialized with :meth:`to_dict`."""
        span = cls(
            name=str(data["name"]),
            span_id=int(data["span_id"]),
            parent_id=None if data["parent_id"] is None else int(data["parent_id"]),
            track=str(data.get("track", "main")),
            start=float(data["start"]),
        )
        span.end = None if data.get("end") is None else float(data["end"])
        span.attributes = dict(data.get("attributes", {}))
        span.events = [SpanEvent.from_dict(e) for e in data.get("events", [])]
        return span

    def __repr__(self) -> str:
        state = f"{self.duration * 1000:.3f}ms" if self.end is not None else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class NullSpan:
    """The shared no-op span: every recording method does nothing.

    Handed out by :func:`repro.observability.runtime.span` when no
    tracer is active, so the disabled tracing path costs one context
    variable read and nothing else.
    """

    __slots__ = ()

    def set(self, **attributes: AttrValue) -> "NullSpan":
        """No-op (tracing disabled)."""
        return self

    def event(self, name: str, **attributes: AttrValue) -> None:
        """No-op (tracing disabled)."""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: the singleton no-op span (identity-comparable: ``sp is NULL_SPAN``)
NULL_SPAN = NullSpan()


class Tracer:
    """Collects spans (and a metrics registry) for one session.

    All recording is thread-safe; span nesting (parent assignment) is
    per-thread.  Worker *processes* cannot share a tracer — they build
    their own and the driver merges with :meth:`adopt`.
    """

    def __init__(
        self,
        track: str = "main",
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.track = track
        self._clock = clock
        self.epoch = clock()
        self._lock = threading.Lock()
        self._spans: List[Span] = []  #: guarded-by: _lock
        self._next_id = 1  #: guarded-by: _lock
        self._stacks = threading.local()
        self.metrics = MetricsRegistry()

    # -- clock ----------------------------------------------------------
    def now(self) -> float:
        """Monotonic seconds since this tracer's epoch."""
        return self._clock() - self.epoch

    # -- span lifecycle -------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def span(self, name: str, **attributes: AttrValue) -> Span:
        """Start a child span of the current span; use with ``with``."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        start = self.now()
        with self._lock:
            span = Span(name, self._next_id, parent_id, self.track, start, self)
            self._next_id += 1
            self._spans.append(span)
        if attributes:
            span.attributes.update(attributes)
        stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close *span* (and any forgotten descendants above it)."""
        stack = self._stack()
        end = self.now()
        while stack:
            top = stack.pop()
            if top.end is None:
                top.end = end
            if top is span:
                return
        if span.end is None:  # ended from another thread: just stamp it
            span.end = end

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def open_span_names(self) -> Tuple[str, ...]:
        """Names of this thread's open spans, outermost first.

        The governance layer attaches this to :class:`QueryAborted` so
        an abort report shows where in the pipeline the query stopped.
        """
        return tuple(span.name for span in self._stack())

    # -- collection -----------------------------------------------------
    @property
    def spans(self) -> Tuple[Span, ...]:
        """All recorded spans, in creation (= span id) order."""
        with self._lock:
            return tuple(self._spans)

    def finished_spans(self) -> Tuple[Span, ...]:
        """Recorded spans that have ended, in creation order."""
        with self._lock:
            return tuple(span for span in self._spans if span.end is not None)

    def roots(self) -> Tuple[Span, ...]:
        """Spans with no parent, in creation order."""
        return tuple(span for span in self.spans if span.parent_id is None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- cross-process merge -------------------------------------------
    def to_payload(self) -> Dict[str, AttrValue]:
        """Serialize this tracer for transport out of a worker process."""
        return {
            "track": self.track,
            "spans": [span.to_dict() for span in self.finished_spans()],
            "metrics": self.metrics.snapshot(),
        }

    def adopt(
        self,
        payload: Dict[str, AttrValue],
        track: str,
        parent: Optional[Span] = None,
        rebase_to: Optional[float] = None,
    ) -> List[Span]:
        """Merge a worker tracer's payload into this tracer.

        Ids are remapped deterministically (in payload order, offset by
        this tracer's id counter), the worker's roots are re-parented
        under *parent*, every span lands on *track*, and timestamps are
        shifted so the worker's epoch maps to *rebase_to* (default: the
        parent's start, else 0).  Worker counters/histograms are merged
        into :attr:`metrics`.
        """
        base = rebase_to
        if base is None:
            base = parent.start if parent is not None else 0.0
        adopted: List[Span] = []
        id_map: Dict[int, int] = {}
        with self._lock:
            for data in payload.get("spans", []):
                span = Span.from_dict(data)
                old_id = span.span_id
                span.span_id = self._next_id
                self._next_id += 1
                id_map[old_id] = span.span_id
                if span.parent_id is not None and span.parent_id in id_map:
                    span.parent_id = id_map[span.parent_id]
                else:
                    span.parent_id = parent.span_id if parent is not None else None
                span.track = track
                span.start += base
                if span.end is not None:
                    span.end += base
                for event in span.events:
                    event.timestamp += base
                span._tracer = self
                self._spans.append(span)
                adopted.append(span)
        self.metrics.merge(payload.get("metrics", {}))
        return adopted

    def __repr__(self) -> str:
        return f"Tracer(track={self.track!r}, spans={len(self)})"


def validate_span_tree(spans: Iterator[Span] | Tuple[Span, ...] | List[Span]) -> List[str]:
    """Well-formedness check; returns a list of problems (empty = ok).

    Checks: unique span ids, no orphan parents, every closed span has
    ``end >= start``, children lie inside their parent (same-track
    only: cross-track parents — adopted worker roots — overlap their
    driver-side parent by construction but run on different clocks),
    and same-track siblings do not overlap.
    """
    spans = list(spans)
    problems: List[str] = []
    by_id: Dict[int, Span] = {}
    for span in spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span id {span.span_id} ({span.name})")
        by_id[span.span_id] = span
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        if span.end is not None and span.end < span.start:
            problems.append(f"{span.name}#{span.span_id}: end before start")
        if span.parent_id is not None and span.parent_id not in by_id:
            problems.append(f"{span.name}#{span.span_id}: orphan parent {span.parent_id}")
            continue
        children.setdefault(span.parent_id, []).append(span)
    epsilon = 1e-9
    for parent_id, group in children.items():
        parent = by_id.get(parent_id) if parent_id is not None else None
        for span in group:
            if parent is None or span.track != parent.track:
                continue
            if span.start < parent.start - epsilon:
                problems.append(
                    f"{span.name}#{span.span_id}: starts before parent {parent.name}"
                )
            if span.end is not None and parent.end is not None:
                if span.end > parent.end + epsilon:
                    problems.append(
                        f"{span.name}#{span.span_id}: ends after parent {parent.name}"
                    )
        # same-track siblings must be sequential (single-threaded stages)
        by_track: Dict[str, List[Span]] = {}
        for span in group:
            by_track.setdefault(span.track, []).append(span)
        for siblings in by_track.values():
            ordered = sorted(siblings, key=lambda s: (s.start, s.span_id))
            for left, right in zip(ordered, ordered[1:]):
                if left.end is not None and left.end > right.start + epsilon:
                    problems.append(
                        f"siblings overlap: {left.name}#{left.span_id} and "
                        f"{right.name}#{right.span_id}"
                    )
    return problems
