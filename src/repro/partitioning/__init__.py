"""Generic RDF data partitioning model and concrete methods."""

from .base import Partitioning, PartitioningMethod, hash_term
from .dynamic import DynamicPartitioning
from .hash_so import HashSubjectObject
from .path_bmc import PathBMC
from .semantic_hash import SemanticHash
from .uno_hop import UndirectedOneHop, greedy_edge_cut_partition

#: adaptive-repartitioning names resolved lazily (PEP 562): the
#: :mod:`.adaptive` module subclasses :class:`repro.engine.cluster.Cluster`,
#: and the engine package imports this package's submodules at load
#: time — an eager import here would be circular.
_ADAPTIVE_EXPORTS = frozenset(
    {
        "AdaptationReport",
        "AdaptiveCluster",
        "AdaptiveOverlay",
        "MigrationProposal",
        "RepartitioningAdvisor",
    }
)


def __getattr__(name: str):
    if name in _ADAPTIVE_EXPORTS:
        from . import adaptive

        return getattr(adaptive, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PartitioningMethod",
    "Partitioning",
    "hash_term",
    "HashSubjectObject",
    "DynamicPartitioning",
    "SemanticHash",
    "PathBMC",
    "UndirectedOneHop",
    "greedy_edge_cut_partition",
    "AdaptationReport",
    "AdaptiveCluster",
    "AdaptiveOverlay",
    "MigrationProposal",
    "RepartitioningAdvisor",
]

#: methods used in the paper's Table V, by table label
METHODS = {
    "Hash-SO": HashSubjectObject,
    "2f": SemanticHash,
    "Path-BMC": PathBMC,
}
