"""Generic RDF data partitioning model and concrete methods."""

from .base import Partitioning, PartitioningMethod, hash_term
from .dynamic import DynamicPartitioning
from .hash_so import HashSubjectObject
from .path_bmc import PathBMC
from .semantic_hash import SemanticHash
from .uno_hop import UndirectedOneHop, greedy_edge_cut_partition

__all__ = [
    "PartitioningMethod",
    "Partitioning",
    "hash_term",
    "HashSubjectObject",
    "DynamicPartitioning",
    "SemanticHash",
    "PathBMC",
    "UndirectedOneHop",
    "greedy_edge_cut_partition",
]

#: methods used in the paper's Table V, by table label
METHODS = {
    "Hash-SO": HashSubjectObject,
    "2f": SemanticHash,
    "Path-BMC": PathBMC,
}
