"""Workload-adaptive online repartitioning (the AdPart/PHD-Store loop).

The paper's ``combine``/``distribute`` model fixes the layout before
the first query runs, so a skewed workload keeps paying repartition and
broadcast shipping forever.  PHD-Store and AdPart close the loop by
*observing* the workload and redistributing fragments online; this
module is that loop for the reproduction:

* :class:`RepartitioningAdvisor` mines hot predicates and recurring
  join patterns from execution metrics (the per-predicate shipped
  breakdown of :class:`~repro.engine.metrics.ExecutionMetrics`, or a
  :class:`~repro.observability.metrics.MetricsRegistry` snapshot) plus
  plan-cache hit statistics.  Heat decays geometrically over a sliding
  window of queries, so yesterday's hotspot ages out; a query shape is
  promoted once it both ships tuples and recurs (decayed occurrence
  count or accumulated plan-cache hits).
* :class:`MigrationProposal` is one ranked recommendation: co-locate a
  recurring join pattern's matches (the paper's hot-query
  redistribution) or replicate one hot predicate's full extent.
* :class:`AdaptiveCluster` applies proposals *incrementally* on a live
  cluster under a replication budget (a fraction of the dataset's
  triples), reusing the fail-stop replica machinery
  (:meth:`~repro.engine.cluster.Cluster.merge_replica`) so migrated
  fragments survive worker death, and bumping the layout ``epoch`` once
  per applied batch so in-flight pipelined scans restart cleanly.
* :class:`AdaptiveOverlay` is the :class:`PartitioningMethod` that
  *describes* the adapted layout.  Its name embeds a layout version and
  a fingerprint of the promoted hot queries/predicates, so plan-cache
  keys (which hash ``repr(partitioning)``) roll over precisely: entries
  optimized against the old layout simply stop matching, without
  touching entries for other partitionings.

The loop is driven by :meth:`repro.core.session.Optimizer.observe_execution`
(see ``docs/PERFORMANCE.md`` § Adaptive repartitioning).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Sequence, Set

from ..engine.cluster import Cluster
from ..rdf.dataset import Dataset
from ..rdf.terms import Variable
from ..rdf.triples import RDFGraph, Triple
from ..sparql.ast import BGPQuery
from .base import PartitioningMethod
from .dynamic import DynamicPartitioning, hot_query_matches

if TYPE_CHECKING:  # pragma: no cover - cycle guard (core depends on us)
    from ..core.governance import QueryBudget
    from ..engine.metrics import ExecutionMetrics

#: proposal kinds
COLOCATE = "colocate"
REPLICATE_PREDICATE = "replicate-predicate"

#: registry prefix of the per-predicate shipped counters the executor
#: flushes (``Executor._flush_metrics``); `ingest_snapshot` reads it
SHIPPED_PREDICATE_PREFIX = "engine.tuples_shipped.predicate."


def structural_signature(query: BGPQuery) -> str:
    """A canonical shape key: patterns with variables renamed, sorted.

    Two queries identical up to variable naming and pattern order share
    one signature, so the advisor's recurrence counting matches the
    plan cache's notion of "the same query again".
    """
    from ..core.plan_cache import canonical_variable_map

    mapping = canonical_variable_map(query)
    parts = [
        " ".join(
            f"?{mapping[t.name]}" if isinstance(t, Variable) else str(t)
            for t in tp.terms()
        )
        for tp in query
    ]
    return " | ".join(sorted(parts))


def _concrete_predicates(query: BGPQuery) -> Set[str]:
    """String forms of the concrete predicates appearing in *query*."""
    return {
        str(tp.predicate)
        for tp in query.patterns
        if not isinstance(tp.predicate, Variable)
    }


@dataclass(frozen=True)
class MigrationProposal:
    """One ranked layout change the advisor recommends.

    ``kind`` is :data:`COLOCATE` (pin each match of ``query`` onto one
    worker, the paper's hot-query redistribution) or
    :data:`REPLICATE_PREDICATE` (copy ``predicate``'s full extent onto
    every worker).  ``heat`` is the decayed shipped-tuples heat backing
    the recommendation — the ranking criterion.
    """

    kind: str
    key: str
    heat: float
    query: Optional[BGPQuery] = None
    predicate: Optional[str] = None

    @property
    def label(self) -> str:
        """A short human-readable identifier for logs and spans."""
        key = self.key if len(self.key) <= 60 else self.key[:57] + "..."
        return f"{self.kind}[{key}]"


@dataclass
class AdaptationReport:
    """What one :meth:`AdaptiveCluster.apply` batch actually did."""

    applied: List[MigrationProposal] = field(default_factory=list)
    skipped: List[MigrationProposal] = field(default_factory=list)
    #: worker-fragment merges performed (one per (proposal, worker))
    migrations: int = 0
    #: extra triples stored by this batch, summed across workers
    replicated_triples: int = 0
    #: the cluster layout epoch after the batch
    epoch: int = 0

    @property
    def changed(self) -> bool:
        """Whether any proposal was applied."""
        return bool(self.applied)


class RepartitioningAdvisor:
    """Mines workload heat and proposes budgeted layout changes.

    Feed it one :meth:`observe` call per executed query (the session's
    :meth:`~repro.core.session.Optimizer.observe_execution` does this);
    every :attr:`adapt_every` observations :meth:`due` turns true and
    :meth:`propose` returns a ranked proposal list for
    :meth:`AdaptiveCluster.apply`.

    Heat bookkeeping: every observation first multiplies all heat by
    ``1 - 1/window`` (a geometric decay whose mass concentrates on the
    last *window* queries), then credits the query shape with the run's
    ``total_tuples_shipped`` and each predicate with its share of the
    per-predicate breakdown.  A shape is only promoted once its decayed
    occurrence count plus its plan-cache hits reach
    :attr:`min_recurrence` — one-off analytical queries never trigger a
    migration, no matter how much they shipped.
    """

    def __init__(
        self,
        *,
        adapt_every: int = 16,
        window: int = 64,
        max_proposals: int = 4,
        min_recurrence: float = 3.0,
        predicate_share: float = 0.5,
    ) -> None:
        if adapt_every < 1:
            raise ValueError(f"adapt_every must be >= 1, got {adapt_every}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if max_proposals < 1:
            raise ValueError(f"max_proposals must be >= 1, got {max_proposals}")
        if not 0.0 < predicate_share <= 1.0:
            raise ValueError(
                f"predicate_share must be in (0, 1], got {predicate_share}"
            )
        self.adapt_every = adapt_every
        self.window = window
        self.max_proposals = max_proposals
        self.min_recurrence = min_recurrence
        self.predicate_share = predicate_share
        self._decay = 1.0 - 1.0 / window
        #: decayed shipped-tuples heat per query shape
        self._query_heat: Dict[str, float] = {}
        #: decayed occurrence count per query shape
        self._query_seen: Dict[str, float] = {}
        #: high-water plan-cache hits per query shape (recurrence proof)
        self._cache_hits: Dict[str, int] = {}
        #: a representative query object per shape
        self._queries: Dict[str, BGPQuery] = {}
        #: concrete predicates per shape (precomputed for propose())
        self._query_predicates: Dict[str, Set[str]] = {}
        #: decayed shipped-tuples heat per predicate
        self._predicate_heat: Dict[str, float] = {}
        #: keys already promoted (or rejected for budget) — never re-proposed
        self._handled: Set[str] = set()
        #: concrete predicates covered by promoted co-locations
        self._covered_predicates: Set[str] = set()
        self.observations = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def observe(
        self,
        query: BGPQuery,
        metrics: "ExecutionMetrics",
        cache_hits: int = 0,
    ) -> None:
        """Fold one executed query's metrics into the heat tables.

        *cache_hits* is the accumulated plan-cache hit count for this
        query's cache entry (``PlanCache.hits_for``): repetition served
        from the cache is recurrence evidence even though the optimizer
        never re-ran.
        """
        self.observations += 1
        self._age()
        sig = structural_signature(query)
        self._queries.setdefault(sig, query)
        self._query_predicates.setdefault(sig, _concrete_predicates(query))
        self._query_seen[sig] = self._query_seen.get(sig, 0.0) + 1.0
        if cache_hits > self._cache_hits.get(sig, 0):
            self._cache_hits[sig] = cache_hits
        shipped = float(metrics.total_tuples_shipped)
        if shipped > 0.0:
            self._query_heat[sig] = self._query_heat.get(sig, 0.0) + shipped
        breakdown = sorted(metrics.shipped_by_predicate.items())
        for predicate, count in breakdown:
            self._predicate_heat[predicate] = self._predicate_heat.get(
                predicate, 0.0
            ) + float(count)

    def ingest_snapshot(self, snapshot: Mapping[str, Mapping[str, object]]) -> None:
        """Fold a :meth:`MetricsRegistry.snapshot` into the predicate heat.

        Cross-process input path: a driver that only has registry dumps
        (e.g. merged from worker processes) can still heat predicates —
        every ``engine.tuples_shipped.predicate.<p>`` counter is
        credited to ``<p>``.  Query-shape heat needs :meth:`observe`.
        """
        counters = snapshot.get("counters", {})
        shipped_counters = sorted(
            (name, value)
            for name, value in counters.items()
            if name.startswith(SHIPPED_PREDICATE_PREFIX)
        )
        for name, value in shipped_counters:
            predicate = name[len(SHIPPED_PREDICATE_PREFIX):]
            self._predicate_heat[predicate] = self._predicate_heat.get(
                predicate, 0.0
            ) + float(value)  # type: ignore[arg-type]

    def _age(self) -> None:
        """One decay step: heat slides over the last *window* queries."""
        decay = self._decay
        self._query_heat = {k: v * decay for k, v in self._query_heat.items()}
        self._query_seen = {k: v * decay for k, v in self._query_seen.items()}
        self._predicate_heat = {
            k: v * decay for k, v in self._predicate_heat.items()
        }

    def _recurrence(self, sig: str) -> float:
        """Decayed occurrences plus plan-cache hits for one shape."""
        return self._query_seen.get(sig, 0.0) + float(self._cache_hits.get(sig, 0))

    # ------------------------------------------------------------------
    # the adaptation cadence
    # ------------------------------------------------------------------
    def due(self) -> bool:
        """Whether an adaptation round should run now."""
        return self.observations > 0 and self.observations % self.adapt_every == 0

    def propose(self) -> List[MigrationProposal]:
        """The ranked layout changes supported by the current heat.

        Co-locations for recurring shapes that ship, then predicate
        replications for predicates whose heat dominates the window
        (:attr:`predicate_share` of total predicate heat) without being
        explained by a promoted co-location.  At most
        :attr:`max_proposals` per round, hottest first.
        """
        proposals: List[MigrationProposal] = []
        hot_predicates = set(self._covered_predicates)
        ranked_shapes = sorted(
            self._query_heat.items(), key=lambda kv: (-kv[1], kv[0])
        )
        for sig, heat in ranked_shapes:
            if len(proposals) >= self.max_proposals:
                break
            if sig in self._handled or heat <= 0.0:
                continue
            if self._recurrence(sig) < self.min_recurrence:
                continue
            proposals.append(
                MigrationProposal(
                    kind=COLOCATE, key=sig, heat=heat, query=self._queries[sig]
                )
            )
            hot_predicates.update(self._query_predicates[sig])
        total_heat = sum(self._predicate_heat.values())
        ranked_predicates = sorted(
            self._predicate_heat.items(), key=lambda kv: (-kv[1], kv[0])
        )
        for predicate, heat in ranked_predicates:
            if len(proposals) >= self.max_proposals:
                break
            if predicate in self._handled or predicate in hot_predicates:
                continue
            if heat <= 0.0 or heat < self.predicate_share * total_heat:
                continue
            proposals.append(
                MigrationProposal(
                    kind=REPLICATE_PREDICATE,
                    key=predicate,
                    heat=heat,
                    predicate=predicate,
                )
            )
        proposals.sort(key=lambda p: (-p.heat, p.kind, p.key))
        return proposals

    def mark_handled(self, report: AdaptationReport) -> None:
        """Retire every proposal the cluster applied *or* skipped.

        Budget-skipped proposals are retired too: the budget only
        shrinks, so re-proposing them every round would spin forever.
        """
        decided = report.applied + report.skipped
        for proposal in decided:
            self._handled.add(proposal.key)
            if proposal.kind == COLOCATE and proposal.query is not None:
                self._covered_predicates.update(_concrete_predicates(proposal.query))

    def __repr__(self) -> str:
        return (
            f"RepartitioningAdvisor(observations={self.observations}, "
            f"shapes={len(self._query_heat)}, "
            f"predicates={len(self._predicate_heat)}, "
            f"handled={len(self._handled)})"
        )


class AdaptiveOverlay(DynamicPartitioning):
    """The partitioning method describing an adapted layout.

    A :class:`~repro.partitioning.dynamic.DynamicPartitioning` (base
    method + promoted hot queries) extended with fully replicated
    predicates.  Because every worker holds a replicated predicate's
    complete extent, :meth:`combine_query` may soundly absorb any
    pattern over such a predicate into a maximal local query it shares
    a variable with — the local join loses no matches.

    The ``name`` (and therefore ``repr``, which the plan cache hashes)
    embeds a layout ``version`` plus a fingerprint of the promoted hot
    queries and predicates, so plan-cache entries keyed on an older
    layout stop matching exactly when the layout changes.
    """

    def __init__(
        self,
        base: PartitioningMethod,
        hot_queries: Sequence[BGPQuery],
        replicated_predicates: Iterable[str] = (),
        version: int = 0,
    ) -> None:
        super().__init__(base, hot_queries)
        self.replicated_predicates = tuple(sorted(set(replicated_predicates)))
        self.version = version
        signatures = sorted(structural_signature(q) for q in self.hot_queries)
        payload = "\n".join(signatures + list(self.replicated_predicates))
        self.fingerprint = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
        self.name = (
            f"adaptive({base.name}+{len(self.hot_queries)}hot"
            f"+{len(self.replicated_predicates)}pred"
            f"@v{version}:{self.fingerprint})"
        )

    def partition(self, dataset: Dataset, cluster_size: int):  # type: ignore[override]
        """Build the adapted layout from scratch (fresh clusters).

        ``DynamicPartitioning.partition`` co-locates the hot-query
        matches; on top, every replicated predicate's extent is copied
        onto every node.  :meth:`AdaptiveCluster.apply` produces the
        same layout incrementally on a live cluster.
        """
        partitioning = super().partition(dataset, cluster_size)
        if self.replicated_predicates:
            replicated = set(self.replicated_predicates)
            extent = [
                t for t in dataset.graph if str(t.predicate) in replicated
            ]
            for graph in partitioning.node_graphs:  # lint: disable=LINT014 bounded by cluster size; layout build, not a query path
                graph.add_all(extent)
        partitioning.method_name = self.name
        return partitioning

    def combine_query(self, vertex, query_graph):  # type: ignore[override]
        base_mlq = super().combine_query(vertex, query_graph)
        if not self.replicated_predicates:
            return base_mlq
        replicated = set(self.replicated_predicates)
        grown = set(base_mlq)
        candidates = [
            tp
            for tp in query_graph.query.patterns
            if tp not in grown and str(tp.predicate) in replicated
        ]
        # absorb replicated-predicate patterns connected to the local
        # core: every worker holds their full extent, so the local join
        # sees every possible partner of its co-located rows
        grew = True
        while grew:  # lint: disable=LINT014 bounded by query size (<= 64 patterns)
            grew = False
            for tp in list(candidates):  # lint: disable=LINT014 bounded by query size (<= 64 patterns)
                touches = any(
                    tp.variables() & other.variables() for other in grown
                )
                if touches:
                    grown.add(tp)
                    candidates.remove(tp)
                    grew = True
        return frozenset(grown)


class AdaptiveCluster(Cluster):
    """A cluster that migrates fragments online under a budget.

    Wraps the base :class:`~repro.engine.cluster.Cluster` with a
    durable *adaptive layout*: every triple a proposal placed on a
    worker is recorded per slot and re-merged on :meth:`heal`, exactly
    like ``partitioning.node_graphs`` is the durable replica for the
    static layout.  Fail-stop re-routing needs no changes — a dead
    worker's served graph (base partition plus adaptive placements)
    already migrates to the re-route target through
    :meth:`~repro.engine.cluster.Cluster.merge_replica`.
    """

    def __init__(
        self,
        partitioning,
        dictionary=None,
        *,
        dataset: Dataset,
        base_method: PartitioningMethod,
    ) -> None:
        super().__init__(partitioning, dictionary)
        self.dataset = dataset
        self.base_method = base_method
        #: query shapes promoted to co-location, in promotion order
        self.hot_queries: List[BGPQuery] = []
        #: predicates promoted to full replication, in promotion order
        self.replicated_predicates: List[str] = []
        #: extra triples stored by adaptation, summed across workers
        self.replicated_triples = 0
        #: worker-fragment merges performed by adaptation
        self.migrations = 0
        #: bumped once per applied batch (plan-cache fingerprint input)
        self.layout_version = 0
        #: durable adaptive placements per worker slot; :meth:`heal`
        #: restores them after the base layout reset
        self._adaptive_layout: Dict[int, RDFGraph] = {}

    @classmethod
    def build(  # type: ignore[override]
        cls, dataset: Dataset, method: PartitioningMethod, cluster_size: int = 10
    ) -> "AdaptiveCluster":
        """Partition *dataset* with *method* and wrap it adaptively."""
        if cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
        return cls(
            method.partition(dataset, cluster_size),
            dataset.dictionary,
            dataset=dataset,
            base_method=method,
        )

    # ------------------------------------------------------------------
    # applying proposals
    # ------------------------------------------------------------------
    def apply(
        self,
        proposals: Sequence[MigrationProposal],
        *,
        replication_budget: float,
        budget: Optional["QueryBudget"] = None,
    ) -> AdaptationReport:
        """Apply *proposals* in rank order under the replication budget.

        The budget is a fraction of the dataset's triples: total extra
        stored copies (summed over workers, cumulative across batches)
        never exceed ``replication_budget * len(dataset.graph)``.  A
        proposal that does not fit is skipped, cheaper ones after it
        may still apply.  The layout ``epoch`` is bumped **once** per
        batch that changed anything, so in-flight pipelined scans
        restart against the new layout exactly once.

        *budget* (a :class:`~repro.core.governance.QueryBudget`) is
        polled throughout the migration loops — a deadline or
        cancellation interrupts adaptation like any other phase.
        """
        if replication_budget < 0:
            raise ValueError(
                f"replication_budget must be >= 0, got {replication_budget}"
            )
        allowance = (
            int(replication_budget * len(self.dataset.graph))
            - self.replicated_triples
        )
        report = AdaptationReport(epoch=self.epoch)
        for proposal in proposals:
            self._poll(budget)
            additions = self._plan_proposal(proposal, budget)
            cost = sum(len(graph) for graph in additions.values())
            if cost > allowance:
                report.skipped.append(proposal)
                continue
            allowance -= cost
            merges = self._merge_additions(additions, budget)
            report.applied.append(proposal)
            report.migrations += merges
            report.replicated_triples += cost
            if proposal.kind == COLOCATE and proposal.query is not None:
                self.hot_queries.append(proposal.query)
            elif proposal.predicate is not None:
                self.replicated_predicates.append(proposal.predicate)
        if report.applied:
            self.replicated_triples += report.replicated_triples
            self.migrations += report.migrations
            self.layout_version += 1
            self.epoch += 1
        report.epoch = self.epoch
        return report

    def adapted_method(self) -> PartitioningMethod:
        """The partitioning method describing the current layout.

        The base method until anything was applied; afterwards an
        :class:`AdaptiveOverlay` whose versioned name rolls plan-cache
        keys over to the new layout.
        """
        if not self.hot_queries and not self.replicated_predicates:
            return self.base_method
        return AdaptiveOverlay(
            self.base_method,
            list(self.hot_queries),
            self.replicated_predicates,
            version=self.layout_version,
        )

    def heal(self) -> None:
        """Base heal, then restore the durable adaptive placements."""
        super().heal()
        restored = sorted(self._adaptive_layout)
        for worker in restored:  # lint: disable=LINT014 bounded by cluster size
            self.merge_replica(worker, self._adaptive_layout[worker])
        if restored:
            self.epoch += 1

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _poll(budget: Optional["QueryBudget"]) -> None:
        """One cooperative governance check inside migration loops."""
        if budget is not None:
            budget.check_deadline(phase="adapt", operator="adaptive.apply")
            budget.check_cancelled(phase="adapt", operator="adaptive.apply")

    def _plan_proposal(
        self,
        proposal: MigrationProposal,
        budget: Optional["QueryBudget"],
    ) -> Dict[int, RDFGraph]:
        """Per-worker triples the proposal would add (nothing mutated).

        Costing happens against this plan *before* any merge, so a
        proposal either fits the budget entirely or is skipped whole.
        """
        additions: Dict[int, RDFGraph] = {}
        if proposal.kind == COLOCATE:
            if proposal.query is None:
                raise ValueError(f"colocate proposal {proposal.key!r} has no query")
            matches = hot_query_matches(self.dataset, proposal.query)
            for anchor, triples in matches:
                self._poll(budget)
                node = self.route(anchor)
                bucket = additions.setdefault(node, RDFGraph())
                served = self.worker_graph(node)
                bucket.add_all(t for t in triples if t not in served)
        elif proposal.kind == REPLICATE_PREDICATE:
            if proposal.predicate is None:
                raise ValueError(
                    f"replicate proposal {proposal.key!r} has no predicate"
                )
            extent = [
                t
                for t in self.dataset.graph
                if str(t.predicate) == proposal.predicate
            ]
            for worker in range(self.size):
                self._poll(budget)
                served = self.worker_graph(worker)
                bucket = additions.setdefault(worker, RDFGraph())
                bucket.add_all(t for t in extent if t not in served)
        else:
            raise ValueError(f"unknown proposal kind {proposal.kind!r}")
        return additions

    def _merge_additions(
        self,
        additions: Dict[int, RDFGraph],
        budget: Optional["QueryBudget"],
    ) -> int:
        """Merge a planned proposal into the live layout; count merges.

        Each placement is recorded in the durable adaptive layout (so
        :meth:`heal` restores it) and merged into the worker's served
        graph through the shared replica primitive.  Dead workers only
        get the durable record — they pick the triples up on heal,
        while their traffic is already folded onto live workers.
        """
        merges = 0
        workers = sorted(additions)
        for worker in workers:
            self._poll(budget)
            triples = additions[worker]
            if len(triples) == 0:
                continue
            layout = self._adaptive_layout.setdefault(worker, RDFGraph())
            layout.add_all(triples)
            if self.is_live(worker):
                self.merge_replica(worker, triples)
                merges += 1
        return merges

    def __repr__(self) -> str:
        return (
            f"AdaptiveCluster({self.size} workers, "
            f"method={self.partitioning.method_name}, "
            f"hot={len(self.hot_queries)}, "
            f"predicates={len(self.replicated_predicates)}, "
            f"replicated_triples={self.replicated_triples}, "
            f"version={self.layout_version})"
        )
