"""The generic RDF data partitioning model (Section II-C).

Every static partitioning method is described by two functions:

* ``combine(v, G)`` — assemble the triples *correlated to* vertex ``v``
  into an indivisible partitioning element ``e_v``;
* ``distribute(e_v)`` — place each element on a computing node.

The same ``combine`` applied to the *query graph* G_Q yields the
*maximal local query* anchored at each query vertex (Appendix A,
Definition 5): any subquery contained in some maximal local query can
be answered with local joins only.  This is what makes the optimizer
partition-aware without being coupled to a specific method.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set

from ..rdf.dataset import Dataset
from ..rdf.terms import PatternTerm, Term
from ..rdf.triples import RDFGraph, Triple
from ..sparql.ast import BGPQuery, TriplePattern
from ..sparql.query_graph import QueryGraph


@dataclass
class Partitioning:
    """The outcome of partitioning a dataset across ``n`` nodes."""

    method_name: str
    node_graphs: List[RDFGraph]
    #: vertex -> node index chosen by ``distribute`` (one entry per anchor)
    vertex_placement: Dict[Term, int] = field(default_factory=dict)

    @property
    def cluster_size(self) -> int:
        """Number of nodes the data was distributed over."""
        return len(self.node_graphs)

    def total_stored_triples(self) -> int:
        """Stored triples including duplicates across nodes."""
        return sum(len(g) for g in self.node_graphs)

    def replication_factor(self, original_count: int) -> float:
        """Stored / original triple count (≥ 1 when nothing is lost)."""
        if original_count == 0:
            return 1.0
        return self.total_stored_triples() / original_count

    def imbalance(self) -> float:
        """max node load / mean node load (1.0 = perfectly balanced)."""
        sizes = [len(g) for g in self.node_graphs]
        mean = sum(sizes) / len(sizes)
        if mean == 0:
            return 1.0
        return max(sizes) / mean


class PartitioningMethod(abc.ABC):
    """A static partitioning method in the generic combine/distribute model."""

    #: short identifier used in experiment tables
    name: str = "abstract"

    # ------------------------------------------------------------------
    # the two conceptual phases, on data
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def combine(self, vertex: Term, graph: RDFGraph) -> FrozenSet[Triple]:
        """The partitioning element ``e_v`` anchored at *vertex* (Eq. 1)."""

    def anchors(self, graph: RDFGraph) -> Iterable[Term]:
        """Vertices at which elements are anchored (default: all of V_R).

        Sorted so the element map is built in the same order in every
        process (``vertices`` is a set).
        """
        return sorted(graph.vertices, key=str)

    @abc.abstractmethod
    def distribute(
        self, elements: Dict[Term, FrozenSet[Triple]], cluster_size: int
    ) -> Dict[Term, int]:
        """Assign each element's anchor vertex to a node (Eq. 2)."""

    # ------------------------------------------------------------------
    # the same combine, on the query graph
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def combine_query(
        self, vertex: PatternTerm, query_graph: QueryGraph
    ) -> FrozenSet[TriplePattern]:
        """``combine(v, G_Q)``: the maximal local query anchored at *v*."""

    # ------------------------------------------------------------------
    # derived functionality
    # ------------------------------------------------------------------
    def partition(self, dataset: Dataset, cluster_size: int) -> Partitioning:
        """Run both phases and materialize per-node graphs."""
        if cluster_size < 1:
            raise ValueError("cluster size must be at least 1")
        graph = dataset.graph
        elements: Dict[Term, FrozenSet[Triple]] = {}
        for vertex in self.anchors(graph):
            element = self.combine(vertex, graph)
            if element:
                elements[vertex] = element
        placement = self.distribute(elements, cluster_size)
        node_graphs = [RDFGraph() for _ in range(cluster_size)]
        for vertex, element in elements.items():
            node = placement[vertex]
            node_graphs[node].add_all(element)
        return Partitioning(
            method_name=self.name,
            node_graphs=node_graphs,
            vertex_placement=placement,
        )

    def maximal_local_queries(self, query: BGPQuery) -> List[FrozenSet[TriplePattern]]:
        """All distinct maximal local queries of *query* (Appendix A).

        One candidate per query-graph vertex; duplicates and empty sets
        are dropped, and sets contained in another candidate are removed
        (they detect nothing extra).
        """
        query_graph = QueryGraph(query)
        candidates: Set[FrozenSet[TriplePattern]] = set()
        for vertex in query_graph.vertices:
            mlq = self.combine_query(vertex, query_graph)
            if mlq:
                candidates.add(mlq)
        # deterministic order first (largest, then lexicographic), then
        # drop candidates strictly contained in others
        ordered = sorted(
            candidates, key=lambda s: (-len(s), sorted(str(tp) for tp in s))
        )
        return [
            c
            for c in ordered
            if not any(c < other for other in candidates)
        ]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def hash_term(term: Term, cluster_size: int) -> int:
    """Deterministic term-to-node hash (stable across runs and processes)."""
    text = str(term)
    value = 5381
    for char in text:
        value = ((value * 33) ^ ord(char)) & 0xFFFFFFFF
    return value % cluster_size
