"""Dynamic RDF partitioning: the hot-query extension (paper appendix).

Dynamic partitioning methods pre-partition the data with a static
method and then redistribute at run time so that a set of "hot queries"
can be evaluated locally.  The paper extends its generic model with the
hot-query list: when computing the maximal local query at a query
vertex ``v``, the optimizer may also use any connected intersection of
a hot query with the input query that touches ``v``.

:class:`DynamicPartitioning` wraps any static method and implements
exactly that:

* ``combine`` / ``distribute`` on data delegate to the base method,
  with the triples matched by each hot query additionally co-located
  (replicated onto one node per hot query), modeling the run-time
  redistribution;
* ``combine_query`` returns the larger of the base maximal local query
  and the best hot-query intersection, per the appendix's two
  conditions: the intersection must be connected and must contain a
  pattern touching ``v``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..rdf.terms import PatternTerm, Term
from ..rdf.triples import RDFGraph, Triple
from ..sparql.ast import BGPQuery, TriplePattern
from ..sparql.query_graph import QueryGraph
from .base import PartitioningMethod


def _connected_pattern_sets(
    patterns: Iterable[TriplePattern],
) -> List[FrozenSet[TriplePattern]]:
    """Split a pattern set into connected components (shared variables)."""
    # sorted: callers pass sets, and component order decides tie-breaks
    # in combine_query — it must not follow the per-process hash seed
    remaining = sorted(patterns, key=str)
    components: List[FrozenSet[TriplePattern]] = []
    while remaining:
        component = {remaining.pop()}
        grew = True
        while grew:
            grew = False
            for tp in list(remaining):
                if any(tp.variables() & other.variables() for other in component):
                    component.add(tp)
                    remaining.remove(tp)
                    grew = True
        components.append(frozenset(component))
    return components


def hot_query_matches(dataset, hot: BGPQuery):
    """Each hot-query match as ``(anchor term, grounded triples)``.

    Matching runs on the encoded/columnar path
    (:func:`~repro.engine.columnar.evaluate_encoded` against the
    dataset's cached :class:`~repro.rdf.encoding.EncodedGraph`) — the
    id-space hash joins with indexed scans, not the term-tuple
    reference joins — which is ~1.4-2.8× faster on the benchmark datasets
    (see ``benchmarks/bench_adaptive.py --micro``) and returns the
    exact same decoded bindings.  The anchor is the match's minimal
    binding by string form, as before: every consumer hashes it to pick
    the worker the match's triples co-locate on.
    """
    from ..engine.columnar import evaluate_encoded

    bindings = evaluate_encoded(
        BGPQuery(hot.patterns, projection=None, name=hot.name),
        dataset.encoded_graph(),
    )
    matches = []
    for binding in bindings.bindings():
        anchor = min(binding.values(), key=str)
        triples = []
        for tp in hot.patterns:
            triple = _instantiate(tp, binding)
            if triple is not None and triple in dataset.graph:
                triples.append(triple)
        matches.append((anchor, triples))
    return matches


class DynamicPartitioning(PartitioningMethod):
    """A static method plus run-time co-location of hot queries."""

    def __init__(
        self,
        base: PartitioningMethod,
        hot_queries: Sequence[BGPQuery],
    ) -> None:
        self.base = base
        self.hot_queries = list(hot_queries)
        self.name = f"dynamic({base.name}+{len(self.hot_queries)}hot)"

    # ------------------------------------------------------------------
    # data side: delegate, then co-locate hot-query matches
    # ------------------------------------------------------------------
    def combine(self, vertex: Term, graph: RDFGraph) -> FrozenSet[Triple]:
        return self.base.combine(vertex, graph)

    def anchors(self, graph: RDFGraph):
        return self.base.anchors(graph)

    def distribute(
        self, elements: Dict[Term, FrozenSet[Triple]], cluster_size: int
    ) -> Dict[Term, int]:
        return self.base.distribute(elements, cluster_size)

    def partition(self, dataset, cluster_size: int):
        """Static partition + hot-query match replication.

        Each hot query's matched subgraphs are replicated onto the node
        the match's first binding hashes to — the "redistribute so hot
        queries run locally" behaviour of [5], [45].  Matching goes
        through :func:`hot_query_matches` (the encoded/columnar path).
        """
        from .base import hash_term

        partitioning = self.base.partition(dataset, cluster_size)
        for hot in self.hot_queries:
            # pin each match's triples together on one node
            for anchor, triples in hot_query_matches(dataset, hot):
                node = hash_term(anchor, cluster_size)
                partitioning.node_graphs[node].add_all(triples)
        partitioning.method_name = self.name
        return partitioning

    # ------------------------------------------------------------------
    # query side: base MLQ vs best hot-query intersection
    # ------------------------------------------------------------------
    def combine_query(
        self, vertex: PatternTerm, query_graph: QueryGraph
    ) -> FrozenSet[TriplePattern]:
        base_mlq = self.base.combine_query(vertex, query_graph)
        best = base_mlq
        query_patterns = set(query_graph.query.patterns)
        for hot in self.hot_queries:
            intersection = query_patterns & set(hot.patterns)
            if not intersection:
                continue
            for component in _connected_pattern_sets(intersection):
                touches_vertex = any(
                    vertex in (tp.subject, tp.object) or vertex in tp.variables()
                    for tp in component
                )
                if touches_vertex and len(component) > len(best):
                    best = component
        return best


def _instantiate(
    pattern: TriplePattern, binding: Dict
) -> Optional[Triple]:
    """Ground a triple pattern with a binding; None if a slot stays open."""
    from ..rdf.terms import Variable

    terms = []
    for term in pattern.terms():
        if isinstance(term, Variable):
            if term not in binding:
                return None
            terms.append(binding[term])
        else:
            terms.append(term)
    return Triple(*terms)
