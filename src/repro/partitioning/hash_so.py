"""Hash partitioning on both subject and object ("Hash-SO").

``combine(v, G)`` gathers every triple incident to ``v`` (as subject or
object); ``distribute`` hashes the anchor vertex.  Every triple is
therefore stored on (at most) two nodes — the hash of its subject and
the hash of its object — which is the baseline partitioning all
existing optimizers in the paper assume: a subquery is local iff all
its triple patterns share a common vertex (Appendix A, Example 7).
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..rdf.terms import PatternTerm, Term
from ..rdf.triples import RDFGraph, Triple
from ..sparql.ast import TriplePattern
from ..sparql.query_graph import QueryGraph
from .base import PartitioningMethod, hash_term


class HashSubjectObject(PartitioningMethod):
    """Hash partitioning with a hash function on subject and object."""

    name = "hash-so"

    def combine(self, vertex: Term, graph: RDFGraph) -> FrozenSet[Triple]:
        return frozenset(graph.edges(vertex))

    def distribute(
        self, elements: Dict[Term, FrozenSet[Triple]], cluster_size: int
    ) -> Dict[Term, int]:
        return {vertex: hash_term(vertex, cluster_size) for vertex in elements}

    def combine_query(
        self, vertex: PatternTerm, query_graph: QueryGraph
    ) -> FrozenSet[TriplePattern]:
        return query_graph.incident_patterns(vertex)
