"""Path partitioning with bottom-up merging ("Path-BMC").

Wu et al.'s path partitioning (ICDE 2015) decomposes the RDF graph into
end-to-end paths.  In the generic model (Example 2 of the paper):

* ``combine(v, G)`` assembles all triples *reachable* from a start
  vertex ``v`` following edge directions;
* ``distribute`` merges elements bottom-up, greedily packing them onto
  nodes by weight (our rendition of the paper's path-merge step).

Anchors are the *start vertices* — vertices with no incoming edge.  A
vertex on a cycle has no start vertex above it, so cyclic residue is
anchored at a canonical vertex of its strongly-connected component
(smallest by term order), which keeps the partitioning total.

Queries whose patterns are all reachable from one query vertex are
local — with acyclic benchmark queries this makes *every* L/U query in
the paper local, which is exactly the Table V effect (order-of-
magnitude speedups for TD-Auto + Path-BMC).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from ..rdf.terms import PatternTerm, Term
from ..rdf.triples import RDFGraph, Triple
from ..sparql.ast import TriplePattern
from ..sparql.query_graph import QueryGraph
from .base import PartitioningMethod


class PathBMC(PartitioningMethod):
    """Path partitioning with bottom-up merging of path elements."""

    name = "path-bmc"

    def anchors(self, graph: RDFGraph) -> List[Term]:
        # sorted: ``vertices`` is a set; anchor order must not follow
        # the per-process hash seed
        starts = sorted(
            (v for v in graph.vertices if not graph.in_edges(v)), key=str
        )
        covered: Set[Triple] = set()
        for v in starts:
            covered.update(self._reachable(v, graph))
        if len(covered) < len(graph):
            # cyclic residue: anchor uncovered triples at canonical vertices
            uncovered_subjects = sorted(
                {t.subject for t in graph if t not in covered}, key=str
            )
            remaining = {t for t in graph if t not in covered}
            for v in uncovered_subjects:
                if not remaining:
                    break
                reach = self._reachable(v, graph)
                if reach & remaining:
                    starts.append(v)
                    remaining -= reach
        return starts

    def combine(self, vertex: Term, graph: RDFGraph) -> FrozenSet[Triple]:
        return frozenset(self._reachable(vertex, graph))

    @staticmethod
    def _reachable(vertex: Term, graph: RDFGraph) -> Set[Triple]:
        result: Set[Triple] = set()
        seen: Set[Term] = {vertex}
        frontier = [vertex]
        while frontier:
            v = frontier.pop()
            for t in graph.out_edges(v):
                if t not in result:
                    result.add(t)
                    if t.object not in seen:
                        seen.add(t.object)
                        frontier.append(t.object)
        return result

    def distribute(
        self, elements: Dict[Term, FrozenSet[Triple]], cluster_size: int
    ) -> Dict[Term, int]:
        """Greedy bottom-up merge: heaviest element to the lightest node.

        This is the weight-driven merge of the Path-BM algorithm reduced
        to its load-balancing essence: indivisible path elements packed
        to minimize the maximum node load.
        """
        loads = [0] * cluster_size
        placement: Dict[Term, int] = {}
        by_weight = sorted(
            elements.items(), key=lambda item: (-len(item[1]), str(item[0]))
        )
        for vertex, element in by_weight:
            node = min(range(cluster_size), key=lambda i: loads[i])
            placement[vertex] = node
            loads[node] += len(element)
        return placement

    def combine_query(
        self, vertex: PatternTerm, query_graph: QueryGraph
    ) -> FrozenSet[TriplePattern]:
        return query_graph.reachable_patterns(vertex)
