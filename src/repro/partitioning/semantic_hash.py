"""Semantic hash partitioning: k-hop forward expansion ("2f").

Lee & Liu's semantic hash partitioning (VLDB 2014) extends each vertex
with its k-hop *forward* (directed) neighborhood before hashing the
anchor.  The paper uses the 2-hop forward variant, "2f": a query whose
patterns all lie within two forward hops of some query vertex is local.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..rdf.terms import PatternTerm, Term
from ..rdf.triples import RDFGraph, Triple
from ..sparql.ast import TriplePattern
from ..sparql.query_graph import QueryGraph
from .base import PartitioningMethod, hash_term


class SemanticHash(PartitioningMethod):
    """k-hop forward semantic hash partitioning (default: 2f)."""

    def __init__(self, hops: int = 2) -> None:
        if hops < 1:
            raise ValueError("hops must be at least 1")
        self.hops = hops
        self.name = f"{hops}f"

    def combine(self, vertex: Term, graph: RDFGraph) -> FrozenSet[Triple]:
        element: Set[Triple] = set()
        frontier: Set[Term] = {vertex}
        for _ in range(self.hops):
            next_frontier: Set[Term] = set()
            # set-to-set growth: only membership of the result matters
            for v in frontier:  # lint: disable=LINT001 order-insensitive
                for t in graph.out_edges(v):
                    if t not in element:
                        element.add(t)
                        next_frontier.add(t.object)
            frontier = next_frontier
            if not frontier:
                break
        return frozenset(element)

    def distribute(
        self, elements: Dict[Term, FrozenSet[Triple]], cluster_size: int
    ) -> Dict[Term, int]:
        return {vertex: hash_term(vertex, cluster_size) for vertex in elements}

    def combine_query(
        self, vertex: PatternTerm, query_graph: QueryGraph
    ) -> FrozenSet[TriplePattern]:
        return query_graph.patterns_within_forward_hops(vertex, self.hops)
