"""Undirected one-hop partitioning ("un-1-hop", Huang et al.).

Huang, Abadi & Ren partition the RDF graph with METIS and give every
node the triples incident to its vertices (undirected 1-hop guarantee).
In the generic model:

* ``combine(v, G)`` gathers all triples whose subject *or* object is
  ``v`` (same element as Hash-SO);
* ``distribute`` is a graph partitioner producing balanced parts with
  few cut edges.  METIS is not available offline, so we substitute a
  greedy BFS grower (:func:`greedy_edge_cut_partition`): it provides
  the property the optimizer relies on — vertices co-located with their
  1-hop neighborhoods in balanced parts — which is all the un-1-hop
  guarantee needs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Set

from ..rdf.terms import PatternTerm, Term
from ..rdf.triples import RDFGraph, Triple
from ..sparql.ast import TriplePattern
from ..sparql.query_graph import QueryGraph
from .base import PartitioningMethod


def greedy_edge_cut_partition(
    graph: RDFGraph, cluster_size: int
) -> Dict[Term, int]:
    """Partition graph vertices into balanced parts with a BFS grower.

    Vertices are assigned in BFS order from successive unassigned seeds;
    a part stops accepting vertices once it reaches the balanced
    capacity ``ceil(|V| / n)``.  This is the classic lightweight
    substitute for METIS: connected neighborhoods land together, and
    part sizes are balanced within one vertex.
    """
    vertices = sorted(graph.vertices, key=str)
    capacity = -(-len(vertices) // cluster_size) if vertices else 0
    placement: Dict[Term, int] = {}
    part = 0
    used = 0
    queue: deque = deque()
    remaining = deque(vertices)
    while remaining or queue:
        if not queue:
            # pick the next unassigned seed
            while remaining and remaining[0] in placement:
                remaining.popleft()
            if not remaining:
                break
            queue.append(remaining.popleft())
        vertex = queue.popleft()
        if vertex in placement:
            continue
        if used >= capacity and part < cluster_size - 1:
            part += 1
            used = 0
        placement[vertex] = part
        used += 1
        for neighbor in sorted(graph.neighbors(vertex), key=str):
            if neighbor not in placement:
                queue.append(neighbor)
    return placement


class UndirectedOneHop(PartitioningMethod):
    """Huang et al.'s un-1-hop partitioning with a greedy partitioner."""

    name = "un-1-hop"

    def combine(self, vertex: Term, graph: RDFGraph) -> FrozenSet[Triple]:
        return frozenset(graph.edges(vertex))

    def distribute(
        self, elements: Dict[Term, FrozenSet[Triple]], cluster_size: int
    ) -> Dict[Term, int]:
        # reconstruct the vertex graph from the elements and run the
        # balanced partitioner on it
        graph = RDFGraph()
        for element in elements.values():
            graph.add_all(element)
        placement = greedy_edge_cut_partition(graph, cluster_size)
        return {
            vertex: placement.get(vertex, 0)
            for vertex in elements
        }

    def combine_query(
        self, vertex: PatternTerm, query_graph: QueryGraph
    ) -> FrozenSet[TriplePattern]:
        return query_graph.incident_patterns(vertex)
