"""RDF data model substrate: terms, triples, graphs, encoding, N-Triples IO."""

from .dataset import Dataset, PredicateStatistics
from .encoding import EncodedGraph, PredicateIndex, TermDictionary
from .ntriples import (
    NTriplesError,
    load_ntriples,
    parse_ntriples,
    save_ntriples,
    serialize_ntriples,
)
from .terms import IRI, BlankNode, Literal, PatternTerm, Term, Variable, is_concrete
from .triples import RDFGraph, Triple, triple

__all__ = [
    "IRI",
    "BlankNode",
    "Literal",
    "Variable",
    "Term",
    "PatternTerm",
    "is_concrete",
    "Triple",
    "triple",
    "RDFGraph",
    "Dataset",
    "PredicateStatistics",
    "TermDictionary",
    "EncodedGraph",
    "PredicateIndex",
    "NTriplesError",
    "parse_ntriples",
    "load_ntriples",
    "save_ntriples",
    "serialize_ntriples",
]
