"""Dataset container with global statistics.

A :class:`Dataset` bundles an :class:`~repro.rdf.triples.RDFGraph` with
the summary statistics the optimizer's cardinality estimator consumes:
per-predicate triple counts and distinct subject/object counts.  The
statistics mirror what RDF-3X exposes to its optimizer in the paper's
prototype.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from .encoding import EncodedGraph, TermDictionary
from .terms import Term
from .triples import RDFGraph, Triple


@dataclass
class PredicateStatistics:
    """Summary statistics for one predicate."""

    triple_count: int = 0
    distinct_subjects: int = 0
    distinct_objects: int = 0


class Dataset:
    """An RDF graph plus the statistics the optimizer needs.

    Statistics are computed once on construction (or :meth:`refresh`) and
    then served in O(1).
    """

    def __init__(self, graph: Optional[RDFGraph] = None, name: str = "dataset") -> None:
        self.graph = graph if graph is not None else RDFGraph()
        self.name = name
        self._predicate_stats: Dict[Term, PredicateStatistics] = {}
        #: the dataset-wide term↔id interning table; worker fragments of
        #: any cluster built from this dataset share it, so ids are
        #: join-compatible across the whole cluster
        self.dictionary = TermDictionary()
        self._encoded: Optional[EncodedGraph] = None
        self.refresh()

    @classmethod
    def from_triples(cls, triples: Iterable[Triple], name: str = "dataset") -> "Dataset":
        return cls(RDFGraph(triples), name=name)

    def refresh(self) -> None:
        """Recompute all statistics from the current graph contents.

        The same single pass feeds the :class:`TermDictionary`, so
        loading a dataset never iterates the full graph a second time
        just to intern terms.  Interning is idempotent: terms that were
        already assigned ids keep them across refreshes.
        """
        subjects: Dict[Term, set] = defaultdict(set)
        objects: Dict[Term, set] = defaultdict(set)
        counts: Dict[Term, int] = defaultdict(int)
        encode = self.dictionary.encode
        for t in self.graph:
            counts[t.predicate] += 1
            subjects[t.predicate].add(t.subject)
            objects[t.predicate].add(t.object)
            encode(t.subject)
            encode(t.predicate)
            encode(t.object)
        self._encoded = None
        self._predicate_stats = {
            p: PredicateStatistics(
                triple_count=counts[p],
                distinct_subjects=len(subjects[p]),
                distinct_objects=len(objects[p]),
            )
            for p in counts
        }

    def encoded_graph(self) -> EncodedGraph:
        """The whole dataset as one :class:`EncodedGraph` (cached).

        Single-node columnar evaluation and tests use this; clusters
        encode per-worker fragments instead (sharing
        :attr:`dictionary`), so this is only built on demand.
        """
        if self._encoded is None:
            self._encoded = EncodedGraph.from_graph(self.graph, self.dictionary)
        return self._encoded

    # ------------------------------------------------------------------
    # statistics accessors
    # ------------------------------------------------------------------
    @property
    def triple_count(self) -> int:
        """Number of triples in the underlying graph."""
        return len(self.graph)

    def predicate_statistics(self, predicate: Term) -> PredicateStatistics:
        """Statistics for *predicate* (zeros if unseen)."""
        return self._predicate_stats.get(predicate, PredicateStatistics())

    def predicate_cardinality(self, predicate: Term) -> int:
        """Triple count for *predicate* (zero if unseen)."""
        return self.predicate_statistics(predicate).triple_count

    def __repr__(self) -> str:
        return f"Dataset({self.name!r}, {self.triple_count} triples)"
