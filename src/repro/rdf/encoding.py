"""Dictionary encoding: dense term↔id interning and encoded storage.

RDF-3X — the per-worker engine of the paper's prototype — owes its
speed to two decisions this module reproduces for the simulated
cluster:

* **dictionary encoding** — every term (IRI, literal, blank node) is
  interned once into a dense integer id, so triples, bindings, and join
  keys are machine integers instead of rich Python objects;
* **exhaustive sorted indexes** — per predicate, the (subject, object)
  pairs are kept sorted both ways (SPO and OPS order), so any bound
  combination of a triple pattern is answered in O(log n + matches) by
  binary search over flat ``array('q')`` columns.

:class:`TermDictionary` is the interning table (deterministic: ids are
assigned in first-seen order, so the same dataset always produces the
same ids) with a JSON save/load round trip.  :class:`EncodedGraph` is
the columnar triple store: three parallel ``array('q')`` columns plus
the per-predicate indexes, built from any :class:`~repro.rdf.triples.RDFGraph`
against a shared dictionary — which is how every worker fragment of a
cluster speaks the same id space.
"""

from __future__ import annotations

import json
from array import array
from bisect import bisect_left, bisect_right
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .terms import BlankNode, IRI, Literal, Term
from .triples import RDFGraph

#: an encoded triple: (subject id, predicate id, object id)
IdTriple = Tuple[int, int, int]


class TermDictionary:
    """Dense, deterministic term↔id interning table.

    Ids are assigned contiguously from 0 in first-seen order, so
    encoding the same term sequence always yields the same ids — the
    property the cross-worker shared id space and the plan-cache-style
    persistence both rely on.
    """

    __slots__ = ("_ids", "_terms")

    def __init__(self) -> None:
        self._ids: Dict[Term, int] = {}
        self._terms: List[Term] = []

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TermDictionary):
            return NotImplemented
        return self._terms == other._terms

    def encode(self, term: Term) -> int:
        """The id of *term*, interning it if unseen."""
        ident = self._ids.get(term)
        if ident is None:
            ident = len(self._terms)
            self._ids[term] = ident
            self._terms.append(term)
        return ident

    def lookup(self, term: Term) -> Optional[int]:
        """The id of *term*, or ``None`` if it was never interned.

        Scans use this for pattern constants: an unknown constant can
        match nothing, so the scan short-circuits to an empty relation
        instead of polluting the dictionary.
        """
        return self._ids.get(term)

    def decode(self, ident: int) -> Term:
        """The term with id *ident* (raises ``IndexError`` if unknown)."""
        if ident < 0:
            raise IndexError(f"term ids are non-negative, got {ident}")
        return self._terms[ident]

    def terms(self) -> Iterator[Term]:
        """All interned terms in id order."""
        return iter(self._terms)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """A JSON-serializable snapshot (terms in id order)."""
        encoded: List[List[str]] = []
        for term in self._terms:
            if isinstance(term, IRI):
                encoded.append(["i", term.value])
            elif isinstance(term, Literal):
                encoded.append(["l", term.lexical, term.datatype, term.language])
            elif isinstance(term, BlankNode):
                encoded.append(["b", term.label])
            else:  # pragma: no cover - Term union is closed
                raise TypeError(f"cannot serialize term {term!r}")
        return {"format": "repro-term-dictionary", "version": 1, "terms": encoded}

    @classmethod
    def from_payload(cls, payload: dict) -> "TermDictionary":
        """Rebuild a dictionary from :meth:`to_payload` output."""
        if payload.get("format") != "repro-term-dictionary":
            raise ValueError("not a term-dictionary payload")
        dictionary = cls()
        for entry in payload["terms"]:
            kind = entry[0]
            if kind == "i":
                term: Term = IRI(entry[1])
            elif kind == "l":
                term = Literal(entry[1], datatype=entry[2], language=entry[3])
            elif kind == "b":
                term = BlankNode(entry[1])
            else:
                raise ValueError(f"unknown term kind {kind!r}")
            dictionary.encode(term)
        return dictionary

    def save(self, path: Union[str, Path]) -> None:
        """Write the dictionary as JSON to *path*."""
        Path(path).write_text(
            json.dumps(self.to_payload(), ensure_ascii=False), encoding="utf-8"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TermDictionary":
        """Read a dictionary previously written by :meth:`save`."""
        return cls.from_payload(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )

    def __repr__(self) -> str:
        return f"TermDictionary({len(self)} terms)"


class PredicateIndex:
    """Both sorted orders of one predicate's (subject, object) pairs.

    ``spo_*`` is sorted by (subject, object); ``ops_*`` by (object,
    subject).  Each order is two aligned ``array('q')`` columns, so a
    bound subject (or object) is a pair of bisections and the matches
    are a contiguous slice — the O(log n + matches) access path RDF-3X
    gets from its clustered B+-trees.
    """

    __slots__ = ("spo_subjects", "spo_objects", "ops_objects", "ops_subjects")

    def __init__(self, pairs: List[Tuple[int, int]]) -> None:
        by_so = sorted(set(pairs))
        self.spo_subjects = array("q", [s for s, _ in by_so])
        self.spo_objects = array("q", [o for _, o in by_so])
        by_os = sorted((o, s) for s, o in by_so)
        self.ops_objects = array("q", [o for o, _ in by_os])
        self.ops_subjects = array("q", [s for _, s in by_os])

    def __len__(self) -> int:
        return len(self.spo_subjects)

    def objects_for(self, subject: int) -> array:
        """All object ids paired with *subject* (a contiguous slice)."""
        lo = bisect_left(self.spo_subjects, subject)
        hi = bisect_right(self.spo_subjects, subject, lo=lo)
        return self.spo_objects[lo:hi]

    def subjects_for(self, object_: int) -> array:
        """All subject ids paired with *object_* (a contiguous slice)."""
        lo = bisect_left(self.ops_objects, object_)
        hi = bisect_right(self.ops_objects, object_, lo=lo)
        return self.ops_subjects[lo:hi]

    def contains(self, subject: int, object_: int) -> bool:
        """Whether the (subject, object) pair is stored."""
        lo = bisect_left(self.spo_subjects, subject)
        hi = bisect_right(self.spo_subjects, subject, lo=lo)
        if lo == hi:
            return False
        pos = bisect_left(self.spo_objects, object_, lo=lo, hi=hi)
        return pos < hi and self.spo_objects[pos] == object_


class EncodedGraph:
    """A triple fragment as parallel integer columns plus indexes.

    The three ``array('q')`` columns are the base table (insertion
    order, mirroring the source graph); the per-predicate
    :class:`PredicateIndex` map is built lazily on first scan and
    invalidated by appends.  All fragments of one cluster share a
    single :class:`TermDictionary`, so ids are join-compatible across
    workers and shuffles can move bare integers.
    """

    __slots__ = ("dictionary", "_subjects", "_predicates", "_objects", "_indexes")

    def __init__(self, dictionary: TermDictionary) -> None:
        self.dictionary = dictionary
        self._subjects = array("q")
        self._predicates = array("q")
        self._objects = array("q")
        self._indexes: Optional[Dict[int, PredicateIndex]] = None

    @classmethod
    def from_graph(cls, graph: RDFGraph, dictionary: TermDictionary) -> "EncodedGraph":
        """Encode *graph* against *dictionary* (interning as needed)."""
        encoded = cls(dictionary)
        encode = dictionary.encode
        subjects, predicates, objects = (
            encoded._subjects,
            encoded._predicates,
            encoded._objects,
        )
        for triple in graph:
            subjects.append(encode(triple.subject))
            predicates.append(encode(triple.predicate))
            objects.append(encode(triple.object))
        return encoded

    def add_ids(self, subject: int, predicate: int, object_: int) -> None:
        """Append one already-encoded triple (invalidates the indexes)."""
        self._subjects.append(subject)
        self._predicates.append(predicate)
        self._objects.append(object_)
        self._indexes = None

    def __len__(self) -> int:
        return len(self._subjects)

    def triples(self) -> Iterator[IdTriple]:
        """All stored id triples in insertion order."""
        return zip(self._subjects, self._predicates, self._objects)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def _ensure_indexes(self) -> Dict[int, PredicateIndex]:
        if self._indexes is None:
            grouped: Dict[int, List[Tuple[int, int]]] = {}
            for subject, predicate, object_ in self.triples():
                grouped.setdefault(predicate, []).append((subject, object_))
            self._indexes = {
                predicate: PredicateIndex(pairs)
                for predicate, pairs in grouped.items()
            }
        return self._indexes

    def predicate_ids(self) -> List[int]:
        """All predicate ids with at least one triple, ascending."""
        return sorted(self._ensure_indexes())

    def index_for(self, predicate: int) -> Optional[PredicateIndex]:
        """The sorted index of *predicate* (``None`` if it has no triples)."""
        return self._ensure_indexes().get(predicate)

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------
    def scan(
        self,
        subject: Optional[int] = None,
        predicate: Optional[int] = None,
        object_: Optional[int] = None,
    ) -> Iterator[IdTriple]:
        """Yield id triples matching the bound positions (``None`` = any).

        Bound-predicate scans go through the sorted indexes; a fully
        unbound predicate iterates predicates in ascending id order
        (deterministic).  Callers on the hot path use
        :meth:`index_for` directly to zip whole columns without
        per-triple tuple allocation; this generic form backs
        variable-predicate patterns and tests.
        """
        if predicate is not None:
            index = self.index_for(predicate)
            if index is None:
                return
            if subject is None and object_ is None:
                for s, o in zip(index.spo_subjects, index.spo_objects):
                    yield (s, predicate, o)
            elif subject is not None and object_ is None:
                for o in index.objects_for(subject):
                    yield (subject, predicate, o)
            elif subject is None and object_ is not None:
                for s in index.subjects_for(object_):
                    yield (s, predicate, object_)
            elif index.contains(subject, object_):  # type: ignore[arg-type]
                yield (subject, predicate, object_)  # type: ignore[misc]
            return
        for predicate_id in self.predicate_ids():
            yield from self.scan(subject, predicate_id, object_)

    def __repr__(self) -> str:
        return (
            f"EncodedGraph({len(self)} triples, "
            f"{len(self.dictionary)} dictionary terms)"
        )
