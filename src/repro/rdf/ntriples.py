"""N-Triples reading and writing.

A small, strict-enough N-Triples codec so datasets can be persisted and
exchanged.  Supports IRIs, blank nodes, and literals with datatype or
language tag, plus ``#`` comments and blank lines.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from .terms import BlankNode, IRI, Literal, Term
from .triples import RDFGraph, Triple


class NTriplesError(ValueError):
    """Raised on malformed N-Triples input."""

    def __init__(self, message: str, line_number: int = 0) -> None:
        prefix = f"line {line_number}: " if line_number else ""
        super().__init__(prefix + message)
        self.line_number = line_number


def parse_ntriples(source: Union[str, TextIO]) -> Iterator[Triple]:
    """Yield triples from an N-Triples document (string or file object)."""
    stream = io.StringIO(source) if isinstance(source, str) else source
    for line_number, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield _parse_line(line, line_number)


def load_ntriples(path: Union[str, Path]) -> RDFGraph:
    """Load an N-Triples file into a fresh :class:`RDFGraph`."""
    graph = RDFGraph()
    with open(path, "r", encoding="utf-8") as handle:
        graph.add_all(parse_ntriples(handle))
    return graph


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to an N-Triples document string."""
    return "".join(f"{t}\n" for t in triples)


def save_ntriples(triples: Iterable[Triple], path: Union[str, Path]) -> int:
    """Write triples to *path*; return the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for t in triples:
            handle.write(f"{t}\n")
            count += 1
    return count


# ----------------------------------------------------------------------
# line-level parser
# ----------------------------------------------------------------------
def _parse_line(line: str, line_number: int) -> Triple:
    pos = 0
    subject, pos = _parse_term(line, pos, line_number)
    pos = _skip_ws(line, pos)
    predicate, pos = _parse_term(line, pos, line_number)
    pos = _skip_ws(line, pos)
    obj, pos = _parse_term(line, pos, line_number)
    pos = _skip_ws(line, pos)
    if pos >= len(line) or line[pos] != ".":
        raise NTriplesError("expected terminating '.'", line_number)
    trailing = line[pos + 1 :].strip()
    if trailing and not trailing.startswith("#"):
        raise NTriplesError(f"unexpected trailing content {trailing!r}", line_number)
    if isinstance(subject, Literal):
        raise NTriplesError("literal in subject position", line_number)
    if not isinstance(predicate, IRI):
        raise NTriplesError("predicate must be an IRI", line_number)
    return Triple(subject, predicate, obj)


def _skip_ws(line: str, pos: int) -> int:
    while pos < len(line) and line[pos] in " \t":
        pos += 1
    return pos


def _parse_term(line: str, pos: int, line_number: int) -> tuple[Term, int]:
    pos = _skip_ws(line, pos)
    if pos >= len(line):
        raise NTriplesError("unexpected end of line", line_number)
    char = line[pos]
    if char == "<":
        end = line.find(">", pos)
        if end < 0:
            raise NTriplesError("unterminated IRI", line_number)
        return IRI(line[pos + 1 : end]), end + 1
    if char == "_":
        if not line.startswith("_:", pos):
            raise NTriplesError("malformed blank node", line_number)
        end = pos + 2
        while end < len(line) and line[end] not in " \t":
            end += 1
        return BlankNode(line[pos + 2 : end]), end
    if char == '"':
        return _parse_literal(line, pos, line_number)
    raise NTriplesError(f"unexpected character {char!r}", line_number)


def _parse_literal(line: str, pos: int, line_number: int) -> tuple[Literal, int]:
    chars = []
    i = pos + 1
    while i < len(line):
        c = line[i]
        if c == "\\":
            if i + 1 >= len(line):
                raise NTriplesError("dangling escape", line_number)
            escape = line[i + 1]
            mapping = {"n": "\n", "r": "\r", "t": "\t", '"': '"', "\\": "\\"}
            if escape == "u":
                if i + 6 > len(line):
                    raise NTriplesError("short \\u escape", line_number)
                chars.append(chr(int(line[i + 2 : i + 6], 16)))
                i += 6
                continue
            if escape not in mapping:
                raise NTriplesError(f"unknown escape \\{escape}", line_number)
            chars.append(mapping[escape])
            i += 2
            continue
        if c == '"':
            break
        chars.append(c)
        i += 1
    else:
        raise NTriplesError("unterminated literal", line_number)
    lexical = "".join(chars)
    i += 1  # past closing quote
    if i < len(line) and line[i] == "@":
        end = i + 1
        while end < len(line) and (line[end].isalnum() or line[end] == "-"):
            end += 1
        return Literal(lexical, language=line[i + 1 : end]), end
    if line.startswith("^^<", i):
        end = line.find(">", i + 3)
        if end < 0:
            raise NTriplesError("unterminated datatype IRI", line_number)
        return Literal(lexical, datatype=line[i + 3 : end]), end + 1
    return Literal(lexical), i
