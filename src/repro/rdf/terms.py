"""RDF term model.

Terms are the atoms of the RDF data model: IRIs, literals, and blank
nodes.  Query variables (``?x``) are also modeled here because triple
patterns mix variables with concrete terms.

All terms are immutable, hashable, and ordered, so they can be used as
dictionary keys, set members, and sort keys throughout the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True, order=True)
class IRI:
    """An IRI reference, e.g. ``<http://example.org/alice>``."""

    value: str

    def __str__(self) -> str:
        return f"<{self.value}>"

    @property
    def is_variable(self) -> bool:
        """Whether this term is a query variable."""
        return False


@dataclass(frozen=True, slots=True, order=True)
class Literal:
    """An RDF literal with optional datatype IRI and language tag.

    ``datatype`` and ``language`` are mutually exclusive per the RDF 1.1
    specification; plain literals leave both empty.
    """

    lexical: str
    datatype: str = ""
    language: str = ""

    def __post_init__(self) -> None:
        if self.datatype and self.language:
            raise ValueError("a literal cannot have both datatype and language")

    def __str__(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    @property
    def is_variable(self) -> bool:
        """Whether this term is a query variable."""
        return False


@dataclass(frozen=True, slots=True, order=True)
class BlankNode:
    """A blank node, e.g. ``_:b42``."""

    label: str

    def __str__(self) -> str:
        return f"_:{self.label}"

    @property
    def is_variable(self) -> bool:
        """Whether this term is a query variable."""
        return False


@dataclass(frozen=True, slots=True, order=True)
class Variable:
    """A SPARQL query variable, e.g. ``?x``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"

    @property
    def is_variable(self) -> bool:
        """Whether this term is a query variable."""
        return True


#: A concrete RDF term (anything that may appear in data).
Term = Union[IRI, Literal, BlankNode]

#: Anything that may appear in a triple pattern.
PatternTerm = Union[IRI, Literal, BlankNode, Variable]


def is_concrete(term: PatternTerm) -> bool:
    """Return True if *term* is a concrete RDF term (not a variable)."""
    return not isinstance(term, Variable)
