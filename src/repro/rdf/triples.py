"""Triples and the in-memory RDF graph.

:class:`RDFGraph` is the storage substrate of the reproduction: a fully
indexed in-memory triple store playing the role RDF-3X plays in the
paper's prototype.  It maintains all six permutation indexes
(SPO, SOP, PSO, POS, OSP, OPS) so that any triple-pattern access path is
a hash/sort lookup, plus adjacency indexes used by the partitioning
algorithms (outgoing/incoming edges per vertex).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .terms import IRI, BlankNode, Literal, Term, Variable


@dataclass(frozen=True, slots=True, order=True)
class Triple:
    """An RDF triple ``(subject, predicate, object)``."""

    subject: Term
    predicate: Term
    object: Term

    def __str__(self) -> str:
        return f"{self.subject} {self.predicate} {self.object} ."

    def terms(self) -> Tuple[Term, Term, Term]:
        """The (subject, predicate, object) tuple."""
        return (self.subject, self.predicate, self.object)


class RDFGraph:
    """A directed labeled graph G_R = (V_R, E_R) over RDF triples.

    Vertices are the subjects and objects of the stored triples; each
    edge carries its predicate as the label (Section II-A of the paper).

    The graph supports:

    * pattern matching with any combination of bound/unbound positions,
    * vertex-neighborhood queries used by the ``combine`` functions of
      the generic partitioning model (Section II-C),
    * deterministic iteration (insertion order is preserved).
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None) -> None:
        self._triples: Dict[Triple, None] = {}
        # permutation indexes: leading-term lookup dictionaries
        self._spo: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        # adjacency: vertex -> triples where the vertex is subject/object
        self._out: Dict[Term, List[Triple]] = defaultdict(list)
        self._in: Dict[Term, List[Triple]] = defaultdict(list)
        if triples is not None:
            for triple in triples:
                self.add(triple)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, triple: Triple) -> bool:
        """Insert *triple*; return False if it was already present."""
        if triple in self._triples:
            return False
        self._triples[triple] = None
        s, p, o = triple.terms()
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._out[s].append(triple)
        self._in[o].append(triple)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert every triple; return the number actually added."""
        return sum(1 for t in triples if self.add(t))

    def discard(self, triple: Triple) -> bool:
        """Remove *triple* if present; return whether it was removed."""
        if triple not in self._triples:
            return False
        del self._triples[triple]
        s, p, o = triple.terms()
        self._spo[s][p].discard(o)
        self._pos[p][o].discard(s)
        self._osp[o][s].discard(p)
        self._out[s].remove(triple)
        self._in[o].remove(triple)
        return True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    @property
    def vertices(self) -> Set[Term]:
        """All subjects and objects (V_R)."""
        verts: Set[Term] = set()
        verts.update(self._out.keys())
        verts.update(self._in.keys())
        return {v for v in verts if self._out[v] or self._in[v]}

    @property
    def predicates(self) -> Set[Term]:
        """All predicates with at least one stored triple."""
        return {p for p, objs in self._pos.items() if any(objs.values())}

    def out_edges(self, vertex: Term) -> List[Triple]:
        """Triples whose subject is *vertex*."""
        return list(self._out.get(vertex, ()))

    def in_edges(self, vertex: Term) -> List[Triple]:
        """Triples whose object is *vertex*."""
        return list(self._in.get(vertex, ()))

    def edges(self, vertex: Term) -> List[Triple]:
        """All triples incident to *vertex* (subject or object)."""
        seen: Dict[Triple, None] = {}
        for t in self._out.get(vertex, ()):
            seen[t] = None
        for t in self._in.get(vertex, ()):
            seen[t] = None
        return list(seen)

    def neighbors(self, vertex: Term) -> Set[Term]:
        """Vertices one (undirected) hop from *vertex*."""
        result: Set[Term] = set()
        for t in self._out.get(vertex, ()):
            result.add(t.object)
        for t in self._in.get(vertex, ()):
            result.add(t.subject)
        result.discard(vertex)
        return result

    # ------------------------------------------------------------------
    # pattern matching
    # ------------------------------------------------------------------
    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the bound positions.

        ``None`` (or a :class:`Variable`) means "any value".  The most
        selective permutation index available is used.
        """
        s = None if isinstance(subject, Variable) else subject
        p = None if isinstance(predicate, Variable) else predicate
        o = None if isinstance(object, Variable) else object

        if s is not None and p is not None and o is not None:
            triple = Triple(s, p, o)
            if triple in self._triples:
                yield triple
            return
        if s is not None and p is not None:
            for obj in self._spo.get(s, {}).get(p, ()):
                yield Triple(s, p, obj)
            return
        if p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield Triple(subj, p, o)
            return
        if s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):
                yield Triple(s, pred, o)
            return
        if s is not None:
            yield from self._out.get(s, ())
            return
        if o is not None:
            yield from self._in.get(o, ())
            return
        if p is not None:
            for obj, subjects in self._pos.get(p, {}).items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
            return
        yield from self._triples

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> int:
        """Number of triples matching the bound positions."""
        return sum(1 for _ in self.match(subject, predicate, object))

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    def copy(self) -> "RDFGraph":
        """An independent copy of this graph."""
        return RDFGraph(self._triples)

    def __repr__(self) -> str:
        return f"RDFGraph({len(self)} triples, {len(self.vertices)} vertices)"


def triple(s: str, p: str, o: str) -> Triple:
    """Shorthand constructor used pervasively by tests and generators.

    Strings are interpreted as IRIs unless they start with ``"`` (literal)
    or ``_:`` (blank node).
    """
    return Triple(_term(s), _term(p), _term(o))


def _term(text: str) -> Term:
    if text.startswith('"'):
        return Literal(text.strip('"'))
    if text.startswith("_:"):
        return BlankNode(text[2:])
    return IRI(text)
