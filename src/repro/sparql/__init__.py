"""SPARQL substrate: AST, parser, and query graph."""

from .ast import BGPQuery, TriplePattern
from .parser import SPARQLSyntaxError, parse_query
from .query_graph import QueryGraph

__all__ = [
    "BGPQuery",
    "TriplePattern",
    "QueryGraph",
    "parse_query",
    "SPARQLSyntaxError",
]
