"""SPARQL abstract syntax: triple patterns and basic graph pattern queries.

The paper works exclusively with subgraph-matching (BGP) queries, so the
AST is a list of triple patterns plus a projection.  Triple patterns are
hashable and keep a stable index inside their query, which the optimizer
uses for bitset encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..rdf.terms import PatternTerm, Variable, is_concrete


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple whose positions may be variables (Section II-A)."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def terms(self) -> Tuple[PatternTerm, PatternTerm, PatternTerm]:
        """The (subject, predicate, object) tuple."""
        return (self.subject, self.predicate, self.object)

    def variables(self) -> FrozenSet[Variable]:
        """All variables appearing in this pattern."""
        return frozenset(t for t in self.terms() if isinstance(t, Variable))

    def vertex_terms(self) -> Tuple[PatternTerm, PatternTerm]:
        """Subject and object: the query-graph vertices this edge connects."""
        return (self.subject, self.object)

    def is_concrete(self) -> bool:
        """Whether every position is a concrete term (no variables)."""
        return all(is_concrete(t) for t in self.terms())

    def __str__(self) -> str:
        return f"{self.subject} {self.predicate} {self.object} ."


class BGPQuery:
    """A basic graph pattern query Q = {tp_1, ..., tp_n}.

    Triple patterns are kept in insertion order; ``patterns[i]`` has index
    ``i``, which is the bit position used in subquery bitsets.
    """

    def __init__(
        self,
        patterns: Sequence[TriplePattern],
        projection: Optional[Sequence[Variable]] = None,
        name: str = "",
    ) -> None:
        if not patterns:
            raise ValueError("a query needs at least one triple pattern")
        deduped: List[TriplePattern] = []
        seen: Set[TriplePattern] = set()
        for tp in patterns:
            if tp not in seen:
                seen.add(tp)
                deduped.append(tp)
        self.patterns: Tuple[TriplePattern, ...] = tuple(deduped)
        self.projection: Tuple[Variable, ...] = tuple(projection or ())
        self.name = name
        self._index: Dict[TriplePattern, int] = {
            tp: i for i, tp in enumerate(self.patterns)
        }

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[TriplePattern]:
        return iter(self.patterns)

    def __getitem__(self, index: int) -> TriplePattern:
        return self.patterns[index]

    def index_of(self, pattern: TriplePattern) -> int:
        """The bitset index of *pattern* within this query."""
        return self._index[pattern]

    def variables(self) -> Set[Variable]:
        """All variables appearing anywhere in the query."""
        result: Set[Variable] = set()
        for tp in self.patterns:
            result.update(tp.variables())
        return result

    def join_variables(self) -> List[Variable]:
        """Variables shared by at least two triple patterns (V_J).

        Returned in first-appearance order for determinism.
        """
        counts: Dict[Variable, int] = {}
        order: List[Variable] = []
        for tp in self.patterns:
            for v in sorted(tp.variables(), key=lambda x: x.name):
                if v not in counts:
                    counts[v] = 0
                    order.append(v)
                counts[v] += 1
        return [v for v in order if counts[v] >= 2]

    def vertex_terms(self) -> List[PatternTerm]:
        """All query-graph vertices V_Q (subjects and objects), in order."""
        seen: Dict[PatternTerm, None] = {}
        for tp in self.patterns:
            for term in tp.vertex_terms():
                seen.setdefault(term, None)
        return list(seen)

    def __str__(self) -> str:
        head = ", ".join(str(v) for v in self.projection) or "*"
        body = "\n  ".join(str(tp) for tp in self.patterns)
        return f"SELECT {head} WHERE {{\n  {body}\n}}"

    def __repr__(self) -> str:
        label = self.name or "query"
        return f"BGPQuery({label!r}, {len(self)} patterns)"
