"""A recursive-descent parser for the SPARQL subset the paper uses.

Supports::

    PREFIX ns: <iri>
    SELECT ?a ?b WHERE { <s> ns:p ?a . ?a ns:q "lit" . }
    SELECT * WHERE { ... }

which covers every benchmark query in the paper (L1–L10, U1–U5) and
everything the workload generators emit.  Unsupported SPARQL constructs
(OPTIONAL, FILTER, UNION, property paths, ...) raise
:class:`SPARQLSyntaxError` with a position, rather than being silently
ignored.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..rdf.terms import IRI, Literal, PatternTerm, Variable
from .ast import BGPQuery, TriplePattern

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>\#[^\n]*)
  | (?P<IRI><[^<>\s]*>)
  | (?P<VAR>[?$][A-Za-z_][A-Za-z_0-9]*)
  | (?P<LITERAL>"(?:[^"\\]|\\.)*"(?:@[A-Za-z0-9-]+|\^\^<[^<>\s]*>)?)
  | (?P<PNAME_LN>(?:[A-Za-z_][A-Za-z_0-9\-]*)?:(?:[A-Za-z_0-9.\-]*[A-Za-z_0-9\-])?)
  | (?P<KEYWORD>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<NUMBER>[+-]?\d+(?:\.\d+)?)
  | (?P<PUNCT>[{}.;,*])
    """,
    re.VERBOSE,
)

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")


class SPARQLSyntaxError(ValueError):
    """Raised when the query text cannot be parsed."""

    def __init__(self, message: str, position: int = 0) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SPARQLSyntaxError(f"unexpected character {text[pos]!r}", pos)
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, match.group(0), pos))
        pos = match.end()
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0
        self.prefixes: Dict[str, str] = {}

    # -- token helpers -------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect_punct(self, char: str) -> _Token:
        token = self.peek()
        if token.kind != "PUNCT" or token.text != char:
            raise SPARQLSyntaxError(f"expected {char!r}, got {token.text!r}", token.pos)
        return self.advance()

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.text.upper() == word

    def expect_keyword(self, word: str) -> _Token:
        token = self.peek()
        if not self.at_keyword(word):
            raise SPARQLSyntaxError(f"expected {word}, got {token.text!r}", token.pos)
        return self.advance()

    # -- grammar -------------------------------------------------------
    def parse_query(self, name: str = "") -> BGPQuery:
        while self.at_keyword("PREFIX"):
            self.parse_prefix()
        self.expect_keyword("SELECT")
        projection = self.parse_projection()
        self.expect_keyword("WHERE")
        patterns = self.parse_group_graph_pattern()
        token = self.peek()
        if token.kind != "EOF":
            raise SPARQLSyntaxError(f"trailing content {token.text!r}", token.pos)
        if not patterns:
            raise SPARQLSyntaxError("empty graph pattern", token.pos)
        return BGPQuery(patterns, projection=projection, name=name)

    def parse_prefix(self) -> None:
        self.expect_keyword("PREFIX")
        token = self.advance()
        if token.kind == "PNAME_LN" and token.text.endswith(":"):
            prefix = token.text[:-1]
        elif token.kind == "PNAME_LN":
            raise SPARQLSyntaxError("prefix declaration must end with ':'", token.pos)
        else:
            raise SPARQLSyntaxError(f"expected prefix name, got {token.text!r}", token.pos)
        iri_token = self.advance()
        if iri_token.kind != "IRI":
            raise SPARQLSyntaxError("expected IRI after prefix name", iri_token.pos)
        self.prefixes[prefix] = iri_token.text[1:-1]

    def parse_projection(self) -> Optional[List[Variable]]:
        token = self.peek()
        if token.kind == "PUNCT" and token.text == "*":
            self.advance()
            return None
        variables: List[Variable] = []
        while self.peek().kind == "VAR":
            variables.append(Variable(self.advance().text[1:]))
        if not variables:
            raise SPARQLSyntaxError("expected '*' or at least one variable", token.pos)
        return variables

    def parse_group_graph_pattern(self) -> List[TriplePattern]:
        self.expect_punct("{")
        patterns: List[TriplePattern] = []
        while True:
            token = self.peek()
            if token.kind == "PUNCT" and token.text == "}":
                self.advance()
                return patterns
            if token.kind == "EOF":
                raise SPARQLSyntaxError("unterminated graph pattern", token.pos)
            if token.kind == "KEYWORD" and token.text.upper() in (
                "OPTIONAL",
                "FILTER",
                "UNION",
                "GRAPH",
                "MINUS",
                "BIND",
                "VALUES",
            ):
                raise SPARQLSyntaxError(
                    f"{token.text.upper()} is outside the supported BGP subset",
                    token.pos,
                )
            patterns.extend(self.parse_triples_same_subject())
            token = self.peek()
            if token.kind == "PUNCT" and token.text == ".":
                self.advance()

    def parse_triples_same_subject(self) -> List[TriplePattern]:
        subject = self.parse_term(position="subject")
        patterns: List[TriplePattern] = []
        while True:
            predicate = self.parse_verb()
            obj = self.parse_term(position="object")
            patterns.append(TriplePattern(subject, predicate, obj))
            token = self.peek()
            if token.kind == "PUNCT" and token.text == ";":
                self.advance()
                # allow trailing ';' before '.' or '}'
                nxt = self.peek()
                if nxt.kind == "PUNCT" and nxt.text in ".}":
                    return patterns
                continue
            return patterns

    def parse_verb(self) -> PatternTerm:
        token = self.peek()
        if token.kind == "KEYWORD" and token.text == "a":
            self.advance()
            return _RDF_TYPE
        return self.parse_term(position="predicate")

    def parse_term(self, position: str) -> PatternTerm:
        token = self.advance()
        if token.kind == "IRI":
            return IRI(token.text[1:-1])
        if token.kind == "VAR":
            return Variable(token.text[1:])
        if token.kind == "LITERAL":
            if position != "object":
                raise SPARQLSyntaxError(f"literal in {position} position", token.pos)
            return _parse_literal(token.text)
        if token.kind == "PNAME_LN":
            return self.expand_pname(token)
        if token.kind == "NUMBER":
            if position != "object":
                raise SPARQLSyntaxError(f"number in {position} position", token.pos)
            datatype = (
                "http://www.w3.org/2001/XMLSchema#decimal"
                if "." in token.text
                else "http://www.w3.org/2001/XMLSchema#integer"
            )
            return Literal(token.text, datatype=datatype)
        raise SPARQLSyntaxError(f"unexpected token {token.text!r}", token.pos)

    def expand_pname(self, token: _Token) -> IRI:
        prefix, _, local = token.text.partition(":")
        if prefix not in self.prefixes:
            raise SPARQLSyntaxError(f"undeclared prefix {prefix!r}", token.pos)
        return IRI(self.prefixes[prefix] + local)


def _parse_literal(text: str) -> Literal:
    body_end = text.rfind('"')
    body = text[1:body_end]
    body = (
        body.replace("\\n", "\n")
        .replace("\\r", "\r")
        .replace("\\t", "\t")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )
    suffix = text[body_end + 1 :]
    if suffix.startswith("@"):
        return Literal(body, language=suffix[1:])
    if suffix.startswith("^^<"):
        return Literal(body, datatype=suffix[3:-1])
    return Literal(body)


def parse_query(text: str, name: str = "") -> BGPQuery:
    """Parse a SPARQL SELECT/BGP query into a :class:`BGPQuery`.

    Raises :class:`SPARQLSyntaxError` on malformed or unsupported input.
    """
    return _Parser(text).parse_query(name=name)
