"""The query graph G_Q = (V_Q, E_Q).

The query graph is the directed labeled graph whose vertices are the
subjects and objects of the query's triple patterns and whose edges are
the patterns themselves (Section II-A).  The partitioning model's
``combine`` function runs on this graph to derive maximal local queries
(Appendix A), so the graph exposes the same neighborhood operations as
:class:`~repro.rdf.triples.RDFGraph`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Set

from ..rdf.terms import PatternTerm
from .ast import BGPQuery, TriplePattern


class QueryGraph:
    """Directed labeled graph view of a BGP query."""

    def __init__(self, query: BGPQuery) -> None:
        self.query = query
        self._out: Dict[PatternTerm, List[TriplePattern]] = defaultdict(list)
        self._in: Dict[PatternTerm, List[TriplePattern]] = defaultdict(list)
        for tp in query:
            self._out[tp.subject].append(tp)
            self._in[tp.object].append(tp)

    @property
    def vertices(self) -> List[PatternTerm]:
        """V_Q: all subject/object terms, in first-appearance order."""
        return self.query.vertex_terms()

    def out_edges(self, vertex: PatternTerm) -> List[TriplePattern]:
        """Patterns whose subject is *vertex*."""
        return list(self._out.get(vertex, ()))

    def in_edges(self, vertex: PatternTerm) -> List[TriplePattern]:
        """Patterns whose object is *vertex*."""
        return list(self._in.get(vertex, ()))

    def edges(self, vertex: PatternTerm) -> List[TriplePattern]:
        """All patterns incident to *vertex*."""
        result: Dict[TriplePattern, None] = {}
        for tp in self._out.get(vertex, ()):
            result[tp] = None
        for tp in self._in.get(vertex, ()):
            result[tp] = None
        return list(result)

    def neighbors(self, vertex: PatternTerm) -> Set[PatternTerm]:
        """Vertices one undirected hop away from *vertex*."""
        result: Set[PatternTerm] = set()
        for tp in self._out.get(vertex, ()):
            result.add(tp.object)
        for tp in self._in.get(vertex, ()):
            result.add(tp.subject)
        result.discard(vertex)
        return result

    def reachable_patterns(self, vertex: PatternTerm) -> FrozenSet[TriplePattern]:
        """All patterns reachable from *vertex* following edge directions.

        This is the query-graph analogue of the Path-BM ``combine``
        function: every end-to-end path starting at *vertex*.
        """
        seen_vertices: Set[PatternTerm] = {vertex}
        result: Set[TriplePattern] = set()
        frontier = [vertex]
        while frontier:
            v = frontier.pop()
            for tp in self._out.get(v, ()):
                result.add(tp)
                if tp.object not in seen_vertices:
                    seen_vertices.add(tp.object)
                    frontier.append(tp.object)
        return frozenset(result)

    def patterns_within_forward_hops(
        self, vertex: PatternTerm, hops: int
    ) -> FrozenSet[TriplePattern]:
        """Patterns within *hops* forward (directed) steps of *vertex*.

        The query-graph analogue of the 2-hop-forward (2f) ``combine``.
        """
        result: Set[TriplePattern] = set()
        frontier: Set[PatternTerm] = {vertex}
        for _ in range(hops):
            next_frontier: Set[PatternTerm] = set()
            for v in frontier:
                for tp in self._out.get(v, ()):
                    if tp not in result:
                        result.add(tp)
                        next_frontier.add(tp.object)
            frontier = next_frontier
            if not frontier:
                break
        return frozenset(result)

    def incident_patterns(self, vertex: PatternTerm) -> FrozenSet[TriplePattern]:
        """Patterns that contain *vertex* as subject or object.

        The query-graph analogue of the undirected 1-hop (and of hash
        partitioning on subject+object) ``combine``.
        """
        return frozenset(self.edges(vertex))
