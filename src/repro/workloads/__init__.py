"""Workloads: LUBM-like, UniProt-like, random queries, WatDiv-like."""

from .generators import (
    WorkloadQuery,
    chain_query,
    cycle_query,
    dense_query,
    generate_query,
    generate_workload,
    star_query,
    tree_query,
)
from .lubm import LUBMGenerator, generate_lubm, lubm_queries, lubm_query
from .uniprot import UniProtGenerator, generate_uniprot, uniprot_queries, uniprot_query
from .watdiv import WatDivGenerator, WatDivTemplate, instantiate, watdiv_workload

__all__ = [
    "chain_query",
    "cycle_query",
    "star_query",
    "tree_query",
    "dense_query",
    "generate_query",
    "generate_workload",
    "WorkloadQuery",
    "LUBMGenerator",
    "generate_lubm",
    "lubm_query",
    "lubm_queries",
    "UniProtGenerator",
    "generate_uniprot",
    "uniprot_query",
    "uniprot_queries",
    "WatDivGenerator",
    "WatDivTemplate",
    "instantiate",
    "watdiv_workload",
]
