"""The paper's random query generator (Section V-A).

"We have implemented a query generator that can randomly generate
chain, cycle, tree and dense queries [...].  The workload contains 116
queries, each with 3 different cardinalities and bindings.  [...] The
query size ranges from 2 to 30.  The cardinality of each triple
pattern is a positive integer randomly chosen from 1 to 1,000; the
number of bindings of each variable is a random integer from 1 to the
cardinality."

:func:`generate_query` builds one query of a requested shape and size;
:func:`generate_workload` reproduces the 348-input workload (116 shapes
× 3 statistics draws).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..core.cardinality import StatisticsCatalog
from ..core.join_graph import QueryShape
from ..rdf.terms import IRI, Variable
from ..sparql.ast import BGPQuery, TriplePattern

_PREDICATE_BASE = "http://repro.example.org/generated/p"


@dataclass(frozen=True)
class WorkloadQuery:
    """One generator output: a query plus one statistics draw."""

    query: BGPQuery
    statistics: StatisticsCatalog
    shape: QueryShape
    size: int


def _predicate(index: int) -> IRI:
    return IRI(f"{_PREDICATE_BASE}{index}")


def chain_query(size: int, name: str = "") -> BGPQuery:
    """A chain of *size* patterns: v0 → v1 → ... → v_size."""
    if size < 2:
        raise ValueError("chain queries need at least 2 patterns")
    patterns = [
        TriplePattern(Variable(f"v{i}"), _predicate(i), Variable(f"v{i + 1}"))
        for i in range(size)
    ]
    return BGPQuery(patterns, name=name or f"chain-{size}")


def cycle_query(size: int, name: str = "") -> BGPQuery:
    """A simple cycle of *size* patterns."""
    if size < 3:
        raise ValueError("cycle queries need at least 3 patterns")
    patterns = [
        TriplePattern(
            Variable(f"v{i}"), _predicate(i), Variable(f"v{(i + 1) % size}")
        )
        for i in range(size)
    ]
    return BGPQuery(patterns, name=name or f"cycle-{size}")


def star_query(size: int, name: str = "") -> BGPQuery:
    """A subject-star: all patterns share the center variable."""
    if size < 2:
        raise ValueError("star queries need at least 2 patterns")
    center = Variable("c")
    patterns = [
        TriplePattern(center, _predicate(i), Variable(f"v{i}")) for i in range(size)
    ]
    return BGPQuery(patterns, name=name or f"star-{size}")


def tree_query(
    size: int, rng: Optional[random.Random] = None, name: str = ""
) -> BGPQuery:
    """A random tree-shaped query (acyclic query graph with branching).

    Each new pattern attaches a fresh variable to a uniformly chosen
    existing variable, in a random edge direction; with ≥3 patterns a
    branch is forced so the result is not accidentally a pure chain.
    """
    if size < 2:
        raise ValueError("tree queries need at least 2 patterns")
    rng = rng if rng is not None else random.Random(size)
    variables = [Variable("v0")]
    patterns: List[TriplePattern] = []
    for i in range(size):
        if i == 2:
            attach = variables[0]  # force a branch at the root
        else:
            attach = rng.choice(variables)
        fresh = Variable(f"v{i + 1}")
        variables.append(fresh)
        if rng.random() < 0.5:
            patterns.append(TriplePattern(attach, _predicate(i), fresh))
        else:
            patterns.append(TriplePattern(fresh, _predicate(i), attach))
    return BGPQuery(patterns, name=name or f"tree-{size}")


def dense_query(
    size: int,
    rng: Optional[random.Random] = None,
    extra_cycles: Optional[int] = None,
    name: str = "",
) -> BGPQuery:
    """A random dense query: a tree skeleton plus cycle-closing patterns.

    ``extra_cycles`` patterns connect already-existing variable pairs,
    each adding one independent cycle to the join graph (default:
    max(2, size // 5), so the result is dense, not merely a cycle).
    """
    if size < 4:
        raise ValueError("dense queries need at least 4 patterns")
    rng = rng if rng is not None else random.Random(size)
    if extra_cycles is None:
        extra_cycles = max(2, size // 5)
    extra_cycles = min(extra_cycles, size - 2)
    skeleton = size - extra_cycles
    variables = [Variable("v0")]
    patterns: List[TriplePattern] = []
    for i in range(skeleton):
        attach = rng.choice(variables)
        fresh = Variable(f"v{i + 1}")
        variables.append(fresh)
        if rng.random() < 0.5:
            patterns.append(TriplePattern(attach, _predicate(i), fresh))
        else:
            patterns.append(TriplePattern(fresh, _predicate(i), attach))
    existing = set((tp.subject, tp.object) for tp in patterns)
    for i in range(skeleton, size):
        # prefer pairs that are not yet connected, but fall back to
        # parallel edges (distinct predicates keep the patterns distinct)
        # so the query always has exactly *size* patterns
        pair = None
        for _ in range(50):
            a, b = rng.sample(variables, 2)
            if (a, b) not in existing and (b, a) not in existing:
                pair = (a, b)
                break
        if pair is None:
            pair = tuple(rng.sample(variables, 2))
        existing.add(pair)
        patterns.append(TriplePattern(pair[0], _predicate(i), pair[1]))
    return BGPQuery(patterns, name=name or f"dense-{size}")


_SHAPE_BUILDERS = {
    QueryShape.CHAIN: lambda size, rng, name: chain_query(size, name),
    QueryShape.CYCLE: lambda size, rng, name: cycle_query(size, name),
    QueryShape.STAR: lambda size, rng, name: star_query(size, name),
    QueryShape.TREE: tree_query,
    QueryShape.DENSE: dense_query,
}


def generate_query(
    shape: QueryShape,
    size: int,
    rng: Optional[random.Random] = None,
    name: str = "",
) -> BGPQuery:
    """Build one random query of the given shape and pattern count."""
    try:
        builder = _SHAPE_BUILDERS[shape]
    except KeyError:
        raise ValueError(f"cannot generate shape {shape}") from None
    if builder in (tree_query, dense_query):
        return builder(size, rng, name=name)
    return builder(size, rng, name)


def generate_workload(
    shapes: Sequence[QueryShape] = (
        QueryShape.CHAIN,
        QueryShape.CYCLE,
        QueryShape.TREE,
        QueryShape.DENSE,
    ),
    sizes: Sequence[int] = tuple(range(2, 31)),
    statistics_draws: int = 3,
    seed: int = 2017,
    max_cardinality: int = 1000,
) -> Iterator[WorkloadQuery]:
    """Reproduce the paper's random workload.

    One query per (shape, size) pair (sizes below a shape's minimum are
    skipped), each instantiated with *statistics_draws* independent
    cardinality/binding draws — the paper's 116 × 3 = 348 inputs.
    """
    rng = random.Random(seed)
    minimum = {
        QueryShape.CHAIN: 2,
        QueryShape.CYCLE: 3,
        QueryShape.STAR: 2,
        QueryShape.TREE: 2,
        QueryShape.DENSE: 4,
    }
    for shape in shapes:
        for size in sizes:
            if size < minimum[shape]:
                continue
            query = generate_query(
                shape, size, random.Random(rng.randrange(2**31)),
                name=f"{shape.value}-{size}",
            )
            for draw in range(statistics_draws):
                stats = StatisticsCatalog.from_random(
                    query,
                    random.Random(rng.randrange(2**31)),
                    max_cardinality=max_cardinality,
                )
                yield WorkloadQuery(
                    query=query,
                    statistics=stats,
                    shape=shape,
                    size=size,
                )
