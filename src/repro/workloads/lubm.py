"""LUBM-like workload: synthetic university data plus queries L1–L10.

The paper evaluates on LUBM-10000 (1.38 billion triples).  Our
generator emits the same schema — universities, departments,
professors, students, courses, research groups, publications, with the
``ub:`` predicate vocabulary and the exact IRI scheme the benchmark
queries reference (``<Department0.University0.edu>``,
``<Department2.University6.edu/FullProfessor1/Publication1>``, ...) —
at a laptop scale, so all ten queries parse, type-check, and return
non-empty results.  Optimization-time experiments depend only on the
query structure and statistics, not the data volume.

Queries L1–L10 are verbatim from the paper's appendix.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..rdf.dataset import Dataset
from ..rdf.terms import IRI, Literal
from ..rdf.triples import RDFGraph, Triple
from ..sparql.ast import BGPQuery
from ..sparql.parser import parse_query

UB = "http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#"
RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")

_PREFIXES = f"""
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX ub: <{UB}>
"""


def _ub(local: str) -> IRI:
    return IRI(UB + local)


class LUBMGenerator:
    """Deterministic scaled-down LUBM data generator.

    Parameters follow the LUBM ontology's branching structure; defaults
    produce ~40k triples across 8 universities, enough for every L
    query to be non-empty (L9/L10 reference ``University6``, L5
    references ``Department12`` — make sure ``universities ≥ 7`` and
    ``departments ≥ 13`` when changing them).
    """

    def __init__(
        self,
        universities: int = 8,
        departments: int = 13,
        full_professors: int = 2,
        associate_professors: int = 2,
        graduate_students: int = 6,
        undergraduate_students: int = 8,
        graduate_courses: int = 3,
        courses: int = 3,
        research_groups: int = 2,
        publications_per_professor: int = 2,
        seed: int = 2017,
    ) -> None:
        self.universities = universities
        self.departments = departments
        self.full_professors = full_professors
        self.associate_professors = associate_professors
        self.graduate_students = graduate_students
        self.undergraduate_students = undergraduate_students
        self.graduate_courses = graduate_courses
        self.courses = courses
        self.research_groups = research_groups
        self.publications_per_professor = publications_per_professor
        self.seed = seed

    # ------------------------------------------------------------------
    def generate(self) -> Dataset:
        """Generate the dataset (deterministic for a fixed seed)."""
        rng = random.Random(self.seed)
        graph = RDFGraph()
        add = graph.add

        def typed(subject: IRI, class_name: str) -> None:
            add(Triple(subject, RDF_TYPE, _ub(class_name)))

        university_iris: List[IRI] = []
        for u in range(self.universities):
            univ = IRI(f"University{u}.edu")
            university_iris.append(univ)
            typed(univ, "University")
            add(Triple(univ, _ub("name"), Literal(f"University{u}")))
        for u in range(self.universities):
            univ = university_iris[u]
            for d in range(self.departments):
                dept = IRI(f"Department{d}.University{u}.edu")
                typed(dept, "Department")
                add(Triple(dept, _ub("subOrganizationOf"), univ))
                add(Triple(dept, _ub("name"), Literal(f"Department{d}-U{u}")))
                self._populate_department(
                    graph, rng, univ, dept, u, d, university_iris
                )
        return Dataset(graph, name="lubm-like")

    # ------------------------------------------------------------------
    def _populate_department(
        self,
        graph: RDFGraph,
        rng: random.Random,
        univ: IRI,
        dept: IRI,
        u: int,
        d: int,
        universities: List[IRI],
    ) -> None:
        add = graph.add

        def typed(subject: IRI, class_name: str) -> None:
            add(Triple(subject, RDF_TYPE, _ub(class_name)))

        prefix = f"Department{d}.University{u}.edu"

        for g in range(self.research_groups):
            group = IRI(f"{prefix}/ResearchGroup{g}")
            typed(group, "ResearchGroup")
            add(Triple(group, _ub("subOrganizationOf"), dept))

        graduate_courses = []
        for c in range(self.graduate_courses):
            course = IRI(f"{prefix}/GraduateCourse{c}")
            typed(course, "GraduateCourse")
            add(Triple(course, _ub("name"), Literal(f"GradCourse{c}")))
            graduate_courses.append(course)
        courses = []
        for c in range(self.courses):
            course = IRI(f"{prefix}/Course{c}")
            typed(course, "Course")
            add(Triple(course, _ub("name"), Literal(f"Course{c}")))
            courses.append(course)

        professors = []
        for p in range(self.full_professors):
            prof = IRI(f"{prefix}/FullProfessor{p}")
            typed(prof, "FullProfessor")
            professors.append(prof)
        associates = []
        for p in range(self.associate_professors):
            prof = IRI(f"{prefix}/AssociateProfessor{p}")
            typed(prof, "AssociateProfessor")
            associates.append(prof)
        for prof in professors + associates:
            add(Triple(prof, _ub("worksFor"), dept))
            add(Triple(prof, _ub("name"), Literal(str(prof.value).split("/")[-1])))
        # teaching: full professors teach both kinds, associates teach
        # graduate courses (L3 needs AssociateProfessor0 → GraduateCourse)
        for i, prof in enumerate(professors):
            add(Triple(prof, _ub("teacherOf"), courses[i % len(courses)]))
            add(
                Triple(
                    prof,
                    _ub("teacherOf"),
                    graduate_courses[i % len(graduate_courses)],
                )
            )
        for i, prof in enumerate(associates):
            add(
                Triple(
                    prof,
                    _ub("teacherOf"),
                    graduate_courses[i % len(graduate_courses)],
                )
            )

        graduate_students = []
        for s in range(self.graduate_students):
            student = IRI(f"{prefix}/GraduateStudent{s}")
            typed(student, "GraduateStudent")
            graduate_students.append(student)
            add(Triple(student, _ub("memberOf"), dept))
            advisor = professors[s % len(professors)]
            add(Triple(student, _ub("advisor"), advisor))
            course = graduate_courses[s % len(graduate_courses)]
            add(Triple(student, _ub("takesCourse"), course))
            # L9/L10 need the student to take a course their advisor teaches
            add(
                Triple(
                    student,
                    _ub("takesCourse"),
                    graduate_courses[(s % len(professors)) % len(graduate_courses)],
                )
            )
            # ~1/3 got their undergraduate degree from this university
            # (L7/L10 join memberOf with undergraduateDegreeFrom)
            if s % 3 == 0:
                degree_from = univ
            else:
                degree_from = rng.choice(universities)
            add(Triple(student, _ub("undergraduateDegreeFrom"), degree_from))

        for s in range(self.undergraduate_students):
            student = IRI(f"{prefix}/UndergraduateStudent{s}")
            typed(student, "UndergraduateStudent")
            add(Triple(student, _ub("memberOf"), dept))
            course = courses[s % len(courses)]
            add(Triple(student, _ub("takesCourse"), course))
            advisor = professors[s % len(professors)]
            add(Triple(student, _ub("advisor"), advisor))
            # L8 joins takesCourse with advisor teacherOf: enrol the
            # student in a course the advisor teaches as well
            add(
                Triple(
                    student,
                    _ub("takesCourse"),
                    courses[(s % len(professors)) % len(courses)],
                )
            )

        for p, prof in enumerate(professors):
            for k in range(self.publications_per_professor):
                publication = IRI(f"{prefix}/FullProfessor{p}/Publication{k}")
                typed(publication, "Publication")
                add(Triple(publication, _ub("name"), Literal(f"Pub{p}-{k}")))
                add(Triple(publication, _ub("publicationAuthor"), prof))
                # coauthor one of the professor's advisees (L5/L6/L9/L10
                # look up graduate students through publicationAuthor)
                advisees = [
                    s
                    for i, s in enumerate(graduate_students)
                    if i % len(professors) == p
                ]
                if advisees:
                    add(
                        Triple(
                            publication,
                            _ub("publicationAuthor"),
                            advisees[k % len(advisees)],
                        )
                    )


# ----------------------------------------------------------------------
# benchmark queries, verbatim from the paper's appendix
# ----------------------------------------------------------------------
_QUERY_TEXTS: Dict[str, str] = {
    "L1": """
SELECT ?x WHERE {
  ?x rdf:type ub:ResearchGroup .
  ?x ub:subOrganizationOf <Department0.University0.edu> . }
""",
    "L2": """
SELECT ?x ?y WHERE {
  ?x ub:worksFor ?y .
  ?y ub:subOrganizationOf <University0.edu> . }
""",
    "L3": """
SELECT ?x ?y WHERE {
  ?x rdf:type ub:GraduateStudent .
  <Department0.University0.edu/AssociateProfessor0> ub:teacherOf ?y .
  ?y rdf:type ub:GraduateCourse .
  ?x ub:takesCourse ?y . }
""",
    "L4": """
SELECT ?x ?y WHERE {
  ?x ub:worksFor ?y .
  ?y rdf:type ub:Department .
  ?x rdf:type ub:FullProfessor .
  ?y ub:subOrganizationOf <University0.edu> . }
""",
    "L5": """
SELECT ?x ?w WHERE {
  ?x ub:advisor ?y .
  ?y ub:worksFor ?z .
  ?x rdf:type ub:GraduateStudent .
  ?z ub:subOrganizationOf ?w .
  ?w ub:name ?u .
  ?z rdf:type ub:Department .
  ?w rdf:type ub:University .
  <Department12.University0.edu/FullProfessor0/Publication0> ub:publicationAuthor ?x . }
""",
    "L6": """
SELECT ?x ?p WHERE {
  ?x ub:advisor ?y .
  ?y ub:worksFor ?z .
  ?x rdf:type ub:GraduateStudent .
  <Department0.University0.edu/FullProfessor0/Publication0> ub:publicationAuthor ?x .
  ?p ub:name ?n .
  ?z rdf:type ub:Department .
  ?z ub:subOrganizationOf ?w .
  ?p ub:publicationAuthor ?x . }
""",
    "L7": """
SELECT ?x ?y ?z WHERE {
  ?z ub:subOrganizationOf ?y .
  ?y rdf:type ub:University .
  ?z rdf:type ub:Department .
  ?x rdf:type ub:GraduateStudent .
  ?x ub:memberOf ?z .
  ?x ub:undergraduateDegreeFrom ?y . }
""",
    "L8": """
SELECT ?x ?y ?z WHERE {
  ?y ub:teacherOf ?z .
  ?y rdf:type ub:FullProfessor .
  ?z rdf:type ub:Course .
  ?x ub:takesCourse ?z .
  ?x rdf:type ub:UndergraduateStudent .
  ?x ub:advisor ?y . }
""",
    "L9": """
SELECT ?x ?y ?f ?c ?p ?n WHERE {
  ?y rdf:type ub:University .
  ?x rdf:type ub:GraduateStudent .
  ?x ub:undergraduateDegreeFrom ?y .
  ?f rdf:type ub:FullProfessor .
  ?x ub:advisor ?f .
  ?x ub:takesCourse ?c .
  ?f ub:teacherOf ?c .
  ?c rdf:type ub:GraduateCourse .
  <Department2.University6.edu/FullProfessor1/Publication1> ub:publicationAuthor ?f .
  ?p ub:publicationAuthor ?f .
  ?p ub:name ?n . }
""",
    "L10": """
SELECT ?x ?y ?z ?f ?c ?p ?n WHERE {
  ?z ub:subOrganizationOf ?y .
  ?y rdf:type ub:University .
  ?z rdf:type ub:Department .
  ?x ub:memberOf ?z .
  ?x rdf:type ub:GraduateStudent .
  ?x ub:undergraduateDegreeFrom ?y .
  ?f rdf:type ub:FullProfessor .
  ?x ub:advisor ?f .
  ?x ub:takesCourse ?c .
  ?f ub:teacherOf ?c .
  ?c rdf:type ub:GraduateCourse .
  <Department2.University6.edu/FullProfessor1/Publication1> ub:publicationAuthor ?f .
  ?p ub:publicationAuthor ?f .
  ?p ub:name ?n . }
""",
}

#: shape labels from the paper's Table III
QUERY_SHAPES: Dict[str, str] = {
    "L1": "star",
    "L2": "chain",
    "L3": "tree",
    "L4": "tree",
    "L5": "tree",
    "L6": "tree",
    "L7": "dense",
    "L8": "dense",
    "L9": "dense",
    "L10": "dense",
}


def lubm_query(name: str) -> BGPQuery:
    """One of L1–L10, parsed."""
    if name not in _QUERY_TEXTS:
        raise KeyError(f"unknown LUBM query {name!r}; have {sorted(_QUERY_TEXTS)}")
    return parse_query(_PREFIXES + _QUERY_TEXTS[name], name=name)


def lubm_queries() -> Dict[str, BGPQuery]:
    """All ten benchmark queries, keyed L1..L10."""
    return {name: lubm_query(name) for name in _QUERY_TEXTS}


def generate_lubm(scale: float = 1.0, seed: int = 2017) -> Dataset:
    """Generate a LUBM-like dataset; ``scale`` multiplies entity counts."""
    def scaled(value: int, minimum: int) -> int:
        return max(minimum, round(value * scale))

    generator = LUBMGenerator(
        universities=scaled(8, 7),
        departments=scaled(13, 13),
        graduate_students=scaled(6, 2),
        undergraduate_students=scaled(8, 2),
        seed=seed,
    )
    return generator.generate()
