"""UniProt-like workload: synthetic protein data plus queries U1–U5.

The paper's UniProt dataset has 2 billion triples and is not
redistributable, so we generate a protein graph with the same predicate
vocabulary and the exact constants U1–U5 reference (refseq/tigr/pfam/
prints cross-references, ``uniprot:Q4N2B5``, enzyme classes 2.7.7.- and
3.1.3.16, keyword 67, taxon 9606, ``embl-cds:AAN81952.1``).  All five
queries parse and return non-empty results on the generated data.

Note: the paper's appendix prints U5's annotation class as
``<.../core/Disease Annotation>`` with a space — an artifact of the PDF;
we use the actual UniProt class IRI ``Disease_Annotation``.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..rdf.dataset import Dataset
from ..rdf.terms import IRI, Literal
from ..rdf.triples import RDFGraph, Triple
from ..sparql.ast import BGPQuery
from ..sparql.parser import parse_query

CORE = "http://purl.uniprot.org/core/"
BASE = "http://purl.uniprot.org/"
RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
RDFS_SEEALSO = IRI("http://www.w3.org/2000/01/rdf-schema#seeAlso")
RDFS_COMMENT = IRI("http://www.w3.org/2000/01/rdf-schema#comment")

_PREFIXES = """
PREFIX uni: <http://purl.uniprot.org/core/>
PREFIX uniprot: <http://purl.uniprot.org/uniprot/>
PREFIX schema: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX taxon: <http://purl.uniprot.org/taxonomy/>
"""


def _core(local: str) -> IRI:
    return IRI(CORE + local)


class UniProtGenerator:
    """Deterministic scaled-down UniProt-like generator."""

    def __init__(self, proteins: int = 400, seed: int = 2017) -> None:
        if proteins < 20:
            raise ValueError("need at least 20 proteins for the benchmark queries")
        self.proteins = proteins
        self.seed = seed

    def generate(self) -> Dataset:
        """Generate the dataset (deterministic for a fixed seed)."""
        rng = random.Random(self.seed)
        graph = RDFGraph()
        add = graph.add

        protein_iris: List[IRI] = [
            IRI(f"{BASE}uniprot/P{i:05d}") for i in range(self.proteins)
        ]
        databases = [IRI(f"{BASE}database/DB{i}") for i in range(6)]
        enzymes = [
            IRI(f"{BASE}enzyme/2.7.7.-"),
            IRI(f"{BASE}enzyme/3.1.3.16"),
            IRI(f"{BASE}enzyme/1.1.1.1"),
        ]
        keywords = [IRI(f"{BASE}keywords/{k}") for k in (67, 181, 472)]
        taxa = [IRI(f"{BASE}taxonomy/{t}") for t in (9606, 10090, 4932)]

        for i, protein in enumerate(protein_iris):
            add(Triple(protein, RDF_TYPE, _core("Protein")))
            add(Triple(protein, _core("organism"), taxa[i % len(taxa)]))
            gene = IRI(f"{BASE}gene/G{i:05d}")
            add(Triple(protein, _core("encodedBy"), gene))
            add(Triple(protein, _core("enzyme"), enzymes[i % len(enzymes)]))
            add(Triple(protein, _core("classifiedWith"), keywords[i % len(keywords)]))
            # annotations: every protein gets one; human proteins (taxon
            # 9606, i % 3 == 0) get a Disease_Annotation for U5
            annotation = IRI(f"{BASE}annotation/A{i:05d}")
            add(Triple(protein, _core("annotation"), annotation))
            if i % len(taxa) == 0:
                add(Triple(annotation, RDF_TYPE, _core("Disease_Annotation")))
            else:
                add(Triple(annotation, RDF_TYPE, _core("Function_Annotation")))
            add(Triple(annotation, RDFS_COMMENT, Literal(f"annotation text {i}")))
            range_iri = IRI(f"{BASE}range/R{i:05d}")
            add(Triple(annotation, _core("range"), range_iri))
            # external cross references with uni:database edges (U2)
            reference = IRI(f"{BASE}citations/C{i:05d}")
            add(Triple(protein, RDFS_SEEALSO, reference))
            add(Triple(reference, _core("database"), databases[i % len(databases)]))

        # replacement chains: P_{4k} → P_{4k+1} → P_{4k+2} → P_{4k+3} (U2/U3/U4)
        for start in range(0, self.proteins - 3, 4):
            chain = protein_iris[start : start + 4]
            for left, right in zip(chain, chain[1:]):
                add(Triple(left, _core("replacedBy"), right))
                add(Triple(right, _core("replaces"), left))

        # interactions between enzyme classes 2.7.7.- and 3.1.3.16 (U3)
        class_a = [p for i, p in enumerate(protein_iris) if i % len(enzymes) == 0]
        class_b = [p for i, p in enumerate(protein_iris) if i % len(enzymes) == 1]
        for k in range(min(len(class_a), len(class_b), self.proteins // 4)):
            interaction = IRI(f"{BASE}interaction/I{k:05d}")
            add(Triple(interaction, RDF_TYPE, _core("Interaction")))
            add(Triple(interaction, _core("participant"), class_a[k]))
            add(Triple(interaction, _core("participant"), class_b[k]))

        # the specific constants the benchmark queries reference --------
        # U1: a protein with the four exact cross-references
        u1_protein = protein_iris[0]
        for ref in (
            f"{BASE}refseq/NP_346136.1",
            f"{BASE}tigr/SP_1698",
            f"{BASE}pfam/PF00842",
            f"{BASE}prints/PR00992",
        ):
            add(Triple(u1_protein, RDFS_SEEALSO, IRI(ref)))
        # U2: Q4N2B5 heads a replacement chain
        q4n2b5 = IRI(f"{BASE}uniprot/Q4N2B5")
        add(Triple(q4n2b5, RDF_TYPE, _core("Protein")))
        add(Triple(q4n2b5, _core("replacedBy"), protein_iris[1]))
        # (P1 → P2 → P3 links come from the chain block above)
        # U4: a keyword-67 protein with the exact embl-cds reference; it
        # must have an outgoing uni:replaces edge, so pick P5 (the chain
        # block makes P5 replace P4)
        u4_protein = protein_iris[5]
        add(Triple(u4_protein, _core("classifiedWith"), keywords[0]))
        add(Triple(u4_protein, RDFS_SEEALSO, IRI(f"{BASE}embl-cds/AAN81952.1")))
        return Dataset(graph, name="uniprot-like")


# ----------------------------------------------------------------------
# benchmark queries, verbatim from the paper's appendix
# ----------------------------------------------------------------------
_QUERY_TEXTS: Dict[str, str] = {
    "U1": """
SELECT ?a ?vo WHERE {
  ?a uni:encodedBy ?vo .
  ?a schema:seeAlso <http://purl.uniprot.org/refseq/NP_346136.1> .
  ?a schema:seeAlso <http://purl.uniprot.org/tigr/SP_1698> .
  ?a schema:seeAlso <http://purl.uniprot.org/pfam/PF00842> .
  ?a schema:seeAlso <http://purl.uniprot.org/prints/PR00992> . }
""",
    "U2": """
SELECT ?a ?ab ?b ?link ?db WHERE {
  <http://purl.uniprot.org/uniprot/Q4N2B5> uni:replacedBy ?a .
  ?a uni:replaces ?ab .
  ?ab uni:replacedBy ?b .
  ?b rdfs:seeAlso ?link .
  ?link uni:database ?db . }
""",
    "U3": """
SELECT ?p2 ?interaction ?p1 ?annotation ?text ?en WHERE {
  ?p1 uni:enzyme <http://purl.uniprot.org/enzyme/2.7.7.-> .
  ?p1 rdf:type uni:Protein .
  ?interaction uni:participant ?p1 .
  ?interaction rdf:type uni:Interaction .
  ?interaction uni:participant ?p2 .
  ?p2 rdf:type uni:Protein .
  ?p2 uni:enzyme <http://purl.uniprot.org/enzyme/3.1.3.16> .
  ?p1 uni:annotation ?annotation .
  ?p1 uni:replaces ?p3 .
  ?p1 uni:encodedBy ?en .
  ?annotation rdfs:comment ?text . }
""",
    "U4": """
SELECT ?a ?ab ?b ?annotation ?range WHERE {
  ?a uni:classifiedWith <http://purl.uniprot.org/keywords/67> .
  ?a schema:seeAlso <http://purl.uniprot.org/embl-cds/AAN81952.1> .
  ?a uni:replaces ?ab .
  ?ab uni:replacedBy ?b .
  ?b uni:annotation ?annotation .
  ?annotation uni:range ?range . }
""",
    "U5": """
SELECT ?protein ?annotation WHERE {
  ?protein uni:annotation ?annotation .
  ?protein rdf:type uni:Protein .
  ?protein uni:organism taxon:9606 .
  ?annotation rdf:type <http://purl.uniprot.org/core/Disease_Annotation> .
  ?annotation rdfs:comment ?text . }
""",
}

#: shape labels from the paper's Table III
QUERY_SHAPES: Dict[str, str] = {
    "U1": "star",
    "U2": "chain",
    "U3": "tree",
    "U4": "tree",
    "U5": "tree",
}


def uniprot_query(name: str) -> BGPQuery:
    """One of U1–U5, parsed."""
    if name not in _QUERY_TEXTS:
        raise KeyError(f"unknown UniProt query {name!r}; have {sorted(_QUERY_TEXTS)}")
    return parse_query(_PREFIXES + _QUERY_TEXTS[name], name=name)


def uniprot_queries() -> Dict[str, BGPQuery]:
    """All five benchmark queries, keyed U1..U5."""
    return {name: uniprot_query(name) for name in _QUERY_TEXTS}


def generate_uniprot(proteins: int = 400, seed: int = 2017) -> Dataset:
    """Generate a UniProt-like dataset."""
    return UniProtGenerator(proteins=proteins, seed=seed).generate()
