"""WatDiv-like stress-testing workload (Figure 6 of the paper).

The Waterloo SPARQL Diversity Test Suite builds 124 structurally
diverse query templates by random walks over the graph representation
of its e-commerce schema, then instantiates each template with 100
queries.  WatDiv itself is not redistributable here, so we reproduce
the recipe: a schema graph (entity classes connected by typed
predicates, mirroring WatDiv's User/Product/Review/Retailer core), a
random-walk template generator that mixes path extension with star
extension (that is why most WatDiv templates are stars or joins of a
few stars — the property the paper remarks on), and per-template
instantiation that re-draws statistics and binds a random leaf to a
constant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.cardinality import StatisticsCatalog
from ..rdf.terms import IRI, Variable
from ..sparql.ast import BGPQuery, TriplePattern

_NS = "http://db.uwaterloo.ca/~galuc/wsdbm/"

#: (subject class, predicate, object class) — the schema graph edges,
#: modeled on WatDiv's published schema
SCHEMA_EDGES: Tuple[Tuple[str, str, str], ...] = (
    ("User", "follows", "User"),
    ("User", "friendOf", "User"),
    ("User", "likes", "Product"),
    ("User", "subscribes", "Website"),
    ("User", "makesPurchase", "Purchase"),
    ("Purchase", "purchaseFor", "Product"),
    ("Review", "reviewFor", "Product"),
    ("User", "writesReview", "Review"),
    ("Review", "rating", "Rating"),
    ("Product", "hasGenre", "Genre"),
    ("Product", "caption", "Caption"),
    ("Retailer", "sells", "Product"),
    ("Retailer", "homepage", "Website"),
    ("Product", "contentRating", "Rating"),
    ("Website", "hits", "Hits"),
    ("City", "partOfCountry", "Country"),
    ("User", "location", "City"),
    ("Retailer", "location", "City"),
    ("Product", "includes", "Product"),
    ("Genre", "relatedGenre", "Genre"),
)


@dataclass(frozen=True)
class WatDivTemplate:
    """A query template: a BGP with one designated constant slot."""

    identifier: int
    query: BGPQuery
    constant_slot: int  # pattern index whose object gets bound per instance
    constant_class: str


class WatDivGenerator:
    """Random-walk template generator over the schema graph."""

    def __init__(self, seed: int = 2017) -> None:
        self.seed = seed
        self._out: Dict[str, List[Tuple[str, str]]] = {}
        self._in: Dict[str, List[Tuple[str, str]]] = {}
        for subject, predicate, object_ in SCHEMA_EDGES:
            self._out.setdefault(subject, []).append((predicate, object_))
            self._in.setdefault(object_, []).append((predicate, subject))

    # ------------------------------------------------------------------
    def templates(self, count: int = 124) -> List[WatDivTemplate]:
        """Generate *count* structurally diverse templates."""
        rng = random.Random(self.seed)
        result: List[WatDivTemplate] = []
        attempts = 0
        seen_shapes = set()
        while len(result) < count and attempts < count * 50:
            attempts += 1
            size = rng.randint(2, 10)
            template = self._random_walk(len(result), size, rng)
            if template is None:
                continue
            shape_key = self._shape_key(template.query)
            # keep at most 3 templates of the same abstract shape, for diversity
            if sum(1 for s in seen_shapes if s == shape_key) >= 3:
                continue
            seen_shapes.add(shape_key)
            result.append(template)
        return result

    def _random_walk(
        self, identifier: int, size: int, rng: random.Random
    ) -> Optional[WatDivTemplate]:
        classes = sorted(self._out)
        current_class = rng.choice(classes)
        variables: List[Tuple[Variable, str]] = [(Variable("v0"), current_class)]
        patterns: List[TriplePattern] = []
        for step in range(size):
            # star step keeps extending from the same vertex; path step
            # moves on — the 60/40 mix is what makes most templates
            # "stars or joins of a few stars"
            anchor_index = (
                len(variables) - 1 if rng.random() < 0.4 else rng.randrange(len(variables))
            )
            anchor, anchor_class = variables[anchor_index]
            forward = self._out.get(anchor_class, [])
            backward = self._in.get(anchor_class, [])
            options = [("f", p, c) for p, c in forward] + [
                ("b", p, c) for p, c in backward
            ]
            if not options:
                return None
            direction, predicate, other_class = rng.choice(options)
            fresh = Variable(f"v{len(variables)}")
            variables.append((fresh, other_class))
            predicate_iri = IRI(_NS + predicate)
            if direction == "f":
                patterns.append(TriplePattern(anchor, predicate_iri, fresh))
            else:
                patterns.append(TriplePattern(fresh, predicate_iri, anchor))
        if len(patterns) < 2:
            return None
        query = BGPQuery(patterns, name=f"watdiv-T{identifier}")
        # the constant slot must be a *leaf* object (a variable used by
        # exactly one pattern), so binding it never changes the join
        # structure or disconnects the query
        usage: Dict[Variable, int] = {}
        for tp in query:
            for v in tp.variables():
                usage[v] = usage.get(v, 0) + 1
        leaf_slots = [
            i
            for i, tp in enumerate(query.patterns)
            if isinstance(tp.object, Variable) and usage[tp.object] == 1
        ]
        if leaf_slots:
            slot = rng.choice(leaf_slots)
            slot_class = next(
                cls for var, cls in variables if var == query.patterns[slot].object
            )
        else:
            slot, slot_class = -1, ""
        return WatDivTemplate(
            identifier=identifier,
            query=query,
            constant_slot=slot,
            constant_class=slot_class,
        )

    @staticmethod
    def _shape_key(query: BGPQuery) -> Tuple:
        """An abstract structural fingerprint for diversity filtering."""
        degree: Dict[Variable, int] = {}
        for tp in query:
            for v in tp.variables():
                degree[v] = degree.get(v, 0) + 1
        return (len(query), tuple(sorted(degree.values())))


def instantiate(
    template: WatDivTemplate, instance: int, rng: random.Random
) -> Tuple[BGPQuery, StatisticsCatalog]:
    """One concrete query from a template: bind the slot, draw statistics."""
    patterns = list(template.query.patterns)
    if template.constant_slot >= 0:
        constant = IRI(f"{_NS}{template.constant_class}{rng.randrange(100000)}")
        slot_pattern = patterns[template.constant_slot]
        patterns[template.constant_slot] = TriplePattern(
            slot_pattern.subject, slot_pattern.predicate, constant
        )
    query = BGPQuery(
        patterns, name=f"{template.query.name}-i{instance}"
    )
    statistics = StatisticsCatalog.from_random(query, rng)
    return query, statistics


def watdiv_workload(
    templates: int = 124,
    instances_per_template: int = 100,
    seed: int = 2017,
) -> Iterator[Tuple[WatDivTemplate, BGPQuery, StatisticsCatalog]]:
    """The full stress workload: templates × instances (paper: 12,400)."""
    generator = WatDivGenerator(seed=seed)
    rng = random.Random(seed + 1)
    for template in generator.templates(templates):
        for instance in range(instances_per_template):
            query, statistics = instantiate(template, instance, rng)
            yield template, query, statistics
