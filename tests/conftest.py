"""Shared fixtures: the paper's Figure 1 query, small datasets, helpers."""

from __future__ import annotations

import random

import pytest

from repro import parse_query
from repro.core import JoinGraph, StatisticsCatalog
from repro.core.optimizer import make_builder
from repro.rdf import Dataset, triple

FIG1_TEXT = """
PREFIX p: <http://example.org/>
SELECT * WHERE {
  ?b p:p1 ?a .
  ?c p:p2 ?a .
  ?a p:p3 ?e .
  ?e p:p4 ?g .
  ?b p:p5 ?f .
  ?c p:p6 ?d .
  ?a p:p7 ?d .
}
"""


@pytest.fixture
def fig1_query():
    """The running example of the paper (Figure 1): 7 patterns, dense."""
    return parse_query(FIG1_TEXT, name="fig1")


@pytest.fixture
def fig1_graph(fig1_query):
    return JoinGraph(fig1_query)


@pytest.fixture
def fig1_builder(fig1_query):
    return make_builder(fig1_query, seed=42)


@pytest.fixture
def toy_dataset():
    """A small social-network-ish dataset for engine tests."""
    rng = random.Random(7)
    triples = []
    for _ in range(200):
        a, b = rng.randrange(60), rng.randrange(60)
        triples.append(triple(f"http://e/n{a}", "http://e/knows", f"http://e/n{b}"))
    for i in range(60):
        triples.append(triple(f"http://e/n{i}", "http://e/type", f"http://e/T{i % 3}"))
        triples.append(
            triple(f"http://e/n{i}", "http://e/worksFor", f"http://e/org{i % 5}")
        )
    return Dataset.from_triples(triples, name="toy")


@pytest.fixture
def toy_query():
    return parse_query(
        """
        SELECT ?x ?y ?o WHERE {
          ?x <http://e/knows> ?y .
          ?y <http://e/type> <http://e/T1> .
          ?x <http://e/worksFor> ?o .
          ?y <http://e/worksFor> ?o .
        }
        """,
        name="toy-q",
    )


def make_query(text: str, name: str = ""):
    return parse_query(text, name=name)


# ----------------------------------------------------------------------
# opt-in dynamic lock-order race detector (PR 8)
#
# REPRO_LOCK_DETECTOR=1 instruments every Tracer / MetricsRegistry /
# CancellationToken / CircuitBreaker constructed during the test run:
# their locks become TrackedLocks feeding the global lock-order graph,
# and their `#: guarded-by:` fields are watched for unguarded access.
# Each test asserts the graph stayed acyclic and violation-free at
# teardown; REPRO_LOCK_GRAPH_OUT=<path> dumps the cumulative graph
# (uploaded as a CI artifact by the chaos-smoke job).
# ----------------------------------------------------------------------
import os as _os


@pytest.fixture(autouse=True)
def _lock_order_detector(monkeypatch):
    if _os.environ.get("REPRO_LOCK_DETECTOR") != "1":
        yield
        return
    from repro.analysis.concurrency import runtime as _rt
    from repro.core.governance import CancellationToken
    from repro.engine.recovery import CircuitBreaker
    from repro.observability.metrics import MetricsRegistry
    from repro.observability.spans import Tracer

    def _instrumented(cls):
        original = cls.__init__

        def __init__(self, *args, __original=original, **kwargs):
            __original(self, *args, **kwargs)
            _rt.instrument(self)

        return __init__

    for cls in (Tracer, MetricsRegistry, CancellationToken, CircuitBreaker):
        monkeypatch.setattr(cls, "__init__", _instrumented(cls))
    yield
    graph_out = _os.environ.get("REPRO_LOCK_GRAPH_OUT")
    if graph_out:
        _rt.GLOBAL_REGISTRY.write_graph(graph_out)
    _rt.GLOBAL_REGISTRY.assert_clean()
