"""Tests for workload-adaptive online repartitioning.

Covers the advisor's heat mining (decay, recurrence gating, ranking,
snapshot ingestion), the overlay's query-side growth and plan-cache
fingerprinting, the cluster's budgeted incremental application (epoch
semantics, durable placements across heal, governance polling), and the
session-level feedback loop end to end.
"""

import pytest

from repro import parse_query
from repro.core import (
    CancellationToken,
    JoinGraph,
    LocalQueryIndex,
    PlanCache,
    QueryAborted,
    QueryBudget,
    StatisticsCatalog,
    optimize,
)
from repro.core.session import OptimizeOptions, Optimizer
from repro.engine import Executor, evaluate_reference
from repro.partitioning import (
    AdaptiveCluster,
    AdaptiveOverlay,
    HashSubjectObject,
    MigrationProposal,
    RepartitioningAdvisor,
)
from repro.partitioning.adaptive import (
    COLOCATE,
    REPLICATE_PREDICATE,
    SHIPPED_PREDICATE_PREFIX,
    structural_signature,
)
from repro.rdf import Dataset, triple


@pytest.fixture
def chain_data():
    triples = []
    for i in range(30):
        triples.append(triple(f"http://e/a{i}", "http://e/p", f"http://e/b{i}"))
        triples.append(triple(f"http://e/b{i}", "http://e/q", f"http://e/c{i}"))
        triples.append(triple(f"http://e/c{i}", "http://e/r", f"http://e/d{i}"))
    return Dataset.from_triples(triples, name="chain-data")


@pytest.fixture
def chain_query():
    return parse_query(
        """
        SELECT * WHERE {
          ?x <http://e/p> ?y .
          ?y <http://e/q> ?z .
          ?z <http://e/r> ?w .
        }
        """,
        name="hot-chain",
    )


class _FakeMetrics:
    """Just the two attributes the advisor reads."""

    def __init__(self, shipped=0, by_predicate=None):
        self.total_tuples_shipped = shipped
        self.shipped_by_predicate = dict(by_predicate or {})


def _colocate(query, heat=100.0, key=None):
    return MigrationProposal(
        kind=COLOCATE,
        key=key or structural_signature(query),
        heat=heat,
        query=query,
    )


def _replicate(predicate, heat=100.0):
    return MigrationProposal(
        kind=REPLICATE_PREDICATE, key=predicate, heat=heat, predicate=predicate
    )


class TestStructuralSignature:
    def test_invariant_under_renaming(self):
        """Same canonicalization as the plan cache: variable names do
        not matter, so recurrence counting agrees with cache keying."""
        a = parse_query(
            "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z . }"
        )
        b = parse_query(
            "SELECT * WHERE { ?m <http://e/p> ?n . ?n <http://e/q> ?o . }"
        )
        assert structural_signature(a) == structural_signature(b)

    def test_different_shapes_differ(self):
        a = parse_query("SELECT * WHERE { ?x <http://e/p> ?y . }")
        b = parse_query("SELECT * WHERE { ?x <http://e/q> ?y . }")
        assert structural_signature(a) != structural_signature(b)


class TestAdvisor:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RepartitioningAdvisor(adapt_every=0)
        with pytest.raises(ValueError):
            RepartitioningAdvisor(window=1)
        with pytest.raises(ValueError):
            RepartitioningAdvisor(max_proposals=0)
        with pytest.raises(ValueError):
            RepartitioningAdvisor(predicate_share=0.0)

    def test_due_cadence(self, chain_query):
        advisor = RepartitioningAdvisor(adapt_every=3)
        assert not advisor.due()
        for i in range(1, 7):
            advisor.observe(chain_query, _FakeMetrics())
            assert advisor.due() == (i % 3 == 0)

    def test_heat_decays_over_window(self, chain_query):
        advisor = RepartitioningAdvisor(window=8)
        advisor.observe(chain_query, _FakeMetrics(shipped=100))
        sig = structural_signature(chain_query)
        initial = advisor._query_heat[sig]
        cold = parse_query("SELECT * WHERE { ?a <http://e/zzz> ?b . }")
        for _ in range(16):
            advisor.observe(cold, _FakeMetrics())
        assert advisor._query_heat[sig] < initial * 0.2

    def test_promotion_requires_recurrence(self, chain_query):
        """A one-off shipper never triggers a migration; repetition does."""
        advisor = RepartitioningAdvisor(adapt_every=1, min_recurrence=3.0)
        advisor.observe(chain_query, _FakeMetrics(shipped=10_000))
        assert advisor.propose() == []
        for _ in range(4):
            advisor.observe(chain_query, _FakeMetrics(shipped=10_000))
        kinds = [p.kind for p in advisor.propose()]
        assert COLOCATE in kinds

    def test_cache_hits_count_as_recurrence(self, chain_query):
        """Repetition served from the plan cache is recurrence evidence
        even though the advisor saw only one observation."""
        advisor = RepartitioningAdvisor(adapt_every=1, min_recurrence=3.0)
        advisor.observe(chain_query, _FakeMetrics(shipped=500), cache_hits=5)
        proposals = advisor.propose()
        assert [p.kind for p in proposals] == [COLOCATE]
        assert proposals[0].query is chain_query

    def test_predicate_replication_proposed_for_dominant_heat(self, chain_query):
        advisor = RepartitioningAdvisor(adapt_every=1, predicate_share=0.5)
        advisor.observe(
            chain_query,
            _FakeMetrics(by_predicate={"<http://e/hot>": 900, "<http://e/c>": 10}),
        )
        proposals = advisor.propose()
        assert [p.kind for p in proposals] == [REPLICATE_PREDICATE]
        assert proposals[0].predicate == "<http://e/hot>"

    def test_promoted_colocation_covers_its_predicates(self, chain_query):
        """Predicates explained by a promoted co-location are not also
        proposed for full replication."""
        advisor = RepartitioningAdvisor(adapt_every=1, min_recurrence=1.0)
        for _ in range(3):
            advisor.observe(
                chain_query,
                _FakeMetrics(
                    shipped=1000, by_predicate={"<http://e/p>": 1000}
                ),
            )
        proposals = advisor.propose()
        assert [p.kind for p in proposals] == [COLOCATE]

    def test_ranking_hottest_first(self):
        advisor = RepartitioningAdvisor(adapt_every=1, min_recurrence=1.0)
        small = parse_query("SELECT * WHERE { ?x <http://e/s> ?y . ?y <http://e/s2> ?z . }")
        big = parse_query("SELECT * WHERE { ?x <http://e/b> ?y . ?y <http://e/b2> ?z . }")
        for _ in range(3):
            advisor.observe(small, _FakeMetrics(shipped=10))
            advisor.observe(big, _FakeMetrics(shipped=10_000))
        proposals = advisor.propose()
        assert len(proposals) == 2
        assert proposals[0].key == structural_signature(big)
        assert proposals[0].heat > proposals[1].heat

    def test_max_proposals_cap(self):
        advisor = RepartitioningAdvisor(
            adapt_every=1, min_recurrence=1.0, max_proposals=2
        )
        for i in range(5):
            q = parse_query(
                f"SELECT * WHERE {{ ?x <http://e/p{i}> ?y . ?y <http://e/q{i}> ?z . }}"
            )
            for _ in range(3):
                advisor.observe(q, _FakeMetrics(shipped=100 + i))
        assert len(advisor.propose()) == 2

    def test_ingest_snapshot_heats_predicates(self):
        advisor = RepartitioningAdvisor(adapt_every=1)
        advisor.ingest_snapshot(
            {
                "counters": {
                    f"{SHIPPED_PREDICATE_PREFIX}<http://e/hot>": 800,
                    "engine.tuples_shipped": 900,
                    "plan_cache.hits": 3,
                }
            }
        )
        proposals = advisor.propose()
        assert [p.predicate for p in proposals] == ["<http://e/hot>"]

    def test_mark_handled_retires_applied_and_skipped(self, chain_query):
        from repro.partitioning import AdaptationReport

        advisor = RepartitioningAdvisor(adapt_every=1, min_recurrence=1.0)
        for _ in range(3):
            advisor.observe(chain_query, _FakeMetrics(shipped=100))
        proposals = advisor.propose()
        assert proposals
        advisor.mark_handled(AdaptationReport(skipped=list(proposals)))
        assert advisor.propose() == []


class TestAdaptiveOverlay:
    def test_name_versioned_and_fingerprinted(self, chain_query):
        base = HashSubjectObject()
        a = AdaptiveOverlay(base, [chain_query], version=1)
        b = AdaptiveOverlay(base, [chain_query], version=2)
        c = AdaptiveOverlay(base, [chain_query], ["<http://e/q>"], version=2)
        assert a.fingerprint == b.fingerprint
        assert a.name != b.name  # version rolls the cache key
        assert b.name != c.name  # so does the promoted set
        assert repr(a) != repr(b)

    def test_combine_query_absorbs_replicated_predicates(self, chain_query):
        """With q and r fully replicated, the whole 3-chain joins
        locally at the ?x star even though only p is co-located."""
        jg = JoinGraph(chain_query)
        base = LocalQueryIndex(jg, HashSubjectObject())
        assert not base.is_local(jg.full)
        overlay = AdaptiveOverlay(
            HashSubjectObject(), [], ["<http://e/q>", "<http://e/r>"]
        )
        grown = LocalQueryIndex(jg, overlay)
        assert grown.is_local(jg.full)

    def test_disconnected_replicated_pattern_not_absorbed(self):
        """A replicated-predicate pattern sharing no variable with the
        local core stays out — absorbing it would cross-product."""
        query = parse_query(
            """
            SELECT * WHERE {
              ?x <http://e/p> ?y .
              ?a <http://e/q> ?b .
            }
            """
        )
        jg = JoinGraph(query)
        overlay = AdaptiveOverlay(HashSubjectObject(), [], ["<http://e/q>"])
        index = LocalQueryIndex(jg, overlay)
        assert not index.is_local(jg.full)

    def test_partition_replicates_extent_everywhere(self, chain_data):
        overlay = AdaptiveOverlay(HashSubjectObject(), [], ["<http://e/q>"])
        layout = overlay.partition(chain_data, 4)
        extent = {
            t for t in chain_data.graph if str(t.predicate) == "<http://e/q>"
        }
        for graph in layout.node_graphs:
            assert extent <= set(graph)


class TestAdaptiveCluster:
    def _optimized(self, query, dataset, method):
        stats = StatisticsCatalog.from_dataset(query, dataset)
        return optimize(
            query, algorithm="td-cmdp", statistics=stats, partitioning=method
        )

    def test_colocation_makes_hot_query_local(self, chain_data, chain_query):
        cluster = AdaptiveCluster.build(chain_data, HashSubjectObject(), 4)
        reference = evaluate_reference(chain_query, chain_data.graph)
        static_plan = self._optimized(chain_query, chain_data, cluster.base_method)
        _, before = Executor(cluster).execute(static_plan.plan, chain_query)
        assert before.total_tuples_shipped > 0

        report = cluster.apply(
            [_colocate(chain_query)], replication_budget=1.0
        )
        assert report.changed
        assert report.migrations > 0
        assert report.replicated_triples > 0
        assert cluster.epoch == 1  # one bump per applied batch
        assert cluster.layout_version == 1

        adapted = cluster.adapted_method()
        assert isinstance(adapted, AdaptiveOverlay)
        result = self._optimized(chain_query, chain_data, adapted)
        relation, after = Executor(cluster).execute(result.plan, chain_query)
        assert relation.rows == reference.rows
        assert after.total_tuples_shipped == 0

    def test_zero_budget_skips_everything(self, chain_data, chain_query):
        cluster = AdaptiveCluster.build(chain_data, HashSubjectObject(), 4)
        report = cluster.apply([_colocate(chain_query)], replication_budget=0.0)
        assert not report.changed
        assert report.skipped == [_colocate(chain_query)]
        assert cluster.epoch == 0
        assert cluster.replicated_triples == 0
        assert cluster.adapted_method() is cluster.base_method

    def test_budget_cumulative_across_batches(self, chain_data, chain_query):
        """Copies already stored count against later batches."""
        cluster = AdaptiveCluster.build(chain_data, HashSubjectObject(), 4)
        first = cluster.apply([_colocate(chain_query)], replication_budget=1.0)
        assert first.changed
        # a budget exactly covering what is already stored leaves no
        # allowance for the (expensive) full-predicate replication
        exhausted = (cluster.replicated_triples + 0.5) / len(chain_data.graph)
        second = cluster.apply(
            [_replicate("<http://e/q>")], replication_budget=exhausted
        )
        assert not second.changed
        assert second.skipped and second.skipped[0].predicate == "<http://e/q>"
        assert cluster.layout_version == 1

    def test_epoch_bumps_once_per_batch(self, chain_data, chain_query):
        cluster = AdaptiveCluster.build(chain_data, HashSubjectObject(), 4)
        report = cluster.apply(
            [_colocate(chain_query), _replicate("<http://e/q>")],
            replication_budget=10.0,
        )
        assert len(report.applied) == 2
        assert cluster.epoch == 1
        assert report.epoch == 1

    def test_placements_survive_fail_and_heal(self, chain_data, chain_query):
        """The adaptive layout is durable: fail-stop re-routing carries
        it in degraded mode and heal restores it."""
        cluster = AdaptiveCluster.build(chain_data, HashSubjectObject(), 4)
        cluster.apply([_colocate(chain_query)], replication_budget=1.0)
        reference = evaluate_reference(chain_query, chain_data.graph)
        adapted = cluster.adapted_method()
        result = self._optimized(chain_query, chain_data, adapted)

        cluster.fail_worker(0)
        relation, metrics = Executor(cluster).execute(result.plan, chain_query)
        assert relation.rows == reference.rows  # replica re-route kept matches

        cluster.heal()
        relation, metrics = Executor(cluster).execute(result.plan, chain_query)
        assert relation.rows == reference.rows
        assert metrics.total_tuples_shipped == 0  # placements restored
        for worker, placed in cluster._adaptive_layout.items():
            assert set(placed) <= set(cluster.worker_graph(worker))

    def test_cancellation_interrupts_apply(self, chain_data, chain_query):
        cluster = AdaptiveCluster.build(chain_data, HashSubjectObject(), 4)
        token = CancellationToken()
        token.cancel("session torn down")
        with pytest.raises(QueryAborted):
            cluster.apply(
                [_colocate(chain_query)],
                replication_budget=1.0,
                budget=QueryBudget(cancellation=token),
            )

    def test_negative_budget_rejected(self, chain_data, chain_query):
        cluster = AdaptiveCluster.build(chain_data, HashSubjectObject(), 4)
        with pytest.raises(ValueError):
            cluster.apply([_colocate(chain_query)], replication_budget=-0.1)


class TestSessionFeedbackLoop:
    def _session(self, dataset, **overrides):
        options = OptimizeOptions(
            algorithm="td-cmdp",
            dataset=dataset,
            adapt=True,
            adapt_every=1,
            replication_budget=1.0,
            **overrides,
        )
        return Optimizer(options)

    def test_bind_cluster_requires_adapt(self, chain_data):
        session = Optimizer(OptimizeOptions(dataset=chain_data))
        cluster = AdaptiveCluster.build(chain_data, HashSubjectObject(), 4)
        with pytest.raises(ValueError):
            session.bind_cluster(cluster)

    def test_observe_execution_noop_without_adapt(self, chain_data, chain_query):
        session = Optimizer(OptimizeOptions(dataset=chain_data))
        assert session.observe_execution(chain_query, _FakeMetrics()) is None

    def test_loop_converges_to_local_execution(self, chain_data, chain_query):
        """Driving the loop on a recurring shipper eventually migrates
        its matches; afterwards it ships nothing, results unchanged."""
        session = self._session(chain_data)
        cluster = AdaptiveCluster.build(chain_data, HashSubjectObject(), 4)
        session.bind_cluster(cluster)
        reference = evaluate_reference(chain_query, chain_data.graph)

        changed = None
        shipped = []
        for _ in range(8):
            result = session.optimize(chain_query)
            relation, metrics = Executor(cluster).execute(
                result.plan, chain_query
            )
            assert relation.rows == reference.rows
            shipped.append(metrics.total_tuples_shipped)
            report = session.observe_execution(chain_query, metrics)
            if report is not None and report.changed:
                changed = report
                break
        assert changed is not None, f"never adapted; shipped={shipped}"
        assert shipped[0] > 0

        result = session.optimize(chain_query)
        relation, metrics = Executor(cluster).execute(result.plan, chain_query)
        assert relation.rows == reference.rows
        assert metrics.total_tuples_shipped == 0

    def test_plan_cache_rolls_over_on_layout_change(
        self, chain_data, chain_query
    ):
        """Entries keyed on the old layout stop matching after an
        adaptation round; other layouts' entries are untouched."""
        cache = PlanCache()
        session = self._session(chain_data, plan_cache=cache)
        cluster = AdaptiveCluster.build(chain_data, HashSubjectObject(), 4)
        session.bind_cluster(cluster)

        changed = None
        for _ in range(8):
            result = session.optimize(chain_query)
            relation, metrics = Executor(cluster).execute(
                result.plan, chain_query
            )
            report = session.observe_execution(chain_query, metrics)
            if report is not None and report.changed:
                changed = report
                break
        assert changed is not None
        hits_before = cache.stats.hits
        misses_before = cache.stats.misses

        # first optimization on the new layout: a miss (the adapted
        # overlay's fingerprint keys it differently), then steady hits
        session.optimize(chain_query)
        assert cache.stats.misses == misses_before + 1
        assert cache.stats.hits == hits_before
        session.optimize(chain_query)
        assert cache.stats.hits == hits_before + 1
        assert cache.stats.misses == misses_before + 1
