"""Unit tests for the BGP AST (TriplePattern / BGPQuery)."""

import pytest

from repro.rdf.terms import IRI, Literal, Variable
from repro.sparql.ast import BGPQuery, TriplePattern


def tp(s, p, o):
    return TriplePattern(s, p, o)


X, Y, Z = Variable("x"), Variable("y"), Variable("z")
P, Q = IRI("http://e/p"), IRI("http://e/q")


class TestTriplePattern:
    def test_variables(self):
        pattern = tp(X, P, Y)
        assert pattern.variables() == {X, Y}

    def test_variable_predicate_counted(self):
        pattern = tp(X, Variable("p"), Y)
        assert Variable("p") in pattern.variables()

    def test_concrete(self):
        assert tp(IRI("a"), P, Literal("x")).is_concrete()
        assert not tp(X, P, Literal("x")).is_concrete()

    def test_vertex_terms_are_subject_and_object(self):
        assert tp(X, P, Y).vertex_terms() == (X, Y)

    def test_hashable_and_equal(self):
        assert tp(X, P, Y) == tp(X, P, Y)
        assert len({tp(X, P, Y), tp(X, P, Y)}) == 1


class TestBGPQuery:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            BGPQuery([])

    def test_index_of(self):
        query = BGPQuery([tp(X, P, Y), tp(Y, Q, Z)])
        assert query.index_of(query[1]) == 1
        with pytest.raises(KeyError):
            query.index_of(tp(X, Q, Z))

    def test_join_variables_order_and_content(self):
        query = BGPQuery([tp(X, P, Y), tp(Y, Q, Z), tp(Z, P, X)])
        assert set(query.join_variables()) == {X, Y, Z}

    def test_non_shared_variable_not_a_join_variable(self):
        query = BGPQuery([tp(X, P, Y), tp(Y, Q, Z)])
        assert set(query.join_variables()) == {Y}

    def test_vertex_terms_preserve_first_appearance(self):
        query = BGPQuery([tp(X, P, Y), tp(Y, Q, Z)])
        assert query.vertex_terms() == [X, Y, Z]

    def test_variables_includes_predicates(self):
        query = BGPQuery([tp(X, Variable("p"), Y)])
        assert Variable("p") in query.variables()

    def test_str_is_reparseable_header(self):
        query = BGPQuery([tp(X, P, Y)], projection=[X])
        text = str(query)
        assert text.startswith("SELECT ?x WHERE {")

    def test_getitem_and_iter(self):
        query = BGPQuery([tp(X, P, Y), tp(Y, Q, Z)])
        assert query[0] == tp(X, P, Y)
        assert list(query) == [tp(X, P, Y), tp(Y, Q, Z)]

    def test_repr_contains_name(self):
        query = BGPQuery([tp(X, P, Y)], name="demo")
        assert "demo" in repr(query)


class TestLUBMScaling:
    def test_scale_changes_size(self):
        from repro.workloads import generate_lubm

        small = generate_lubm(scale=1.0, seed=4)
        large = generate_lubm(scale=1.5, seed=4)
        assert large.triple_count > small.triple_count

    def test_minimums_enforced(self):
        from repro.workloads import generate_lubm

        # even at tiny scale, University6/Department12 must exist for
        # L5/L9/L10 to be satisfiable
        tiny = generate_lubm(scale=0.1, seed=4)
        from repro.engine import evaluate_reference
        from repro.workloads import lubm_query

        assert len(evaluate_reference(lubm_query("L5"), tiny.graph)) > 0
        assert len(evaluate_reference(lubm_query("L9"), tiny.graph)) > 0
