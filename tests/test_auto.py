"""Tests for TD-Auto (the Figure 5 decision tree)."""

import random

import pytest

from repro.core import (
    AutonomousOptimizer,
    AutoThresholds,
    JoinGraph,
    choose_algorithm,
)
from repro.core.optimizer import make_builder
from repro.core.plans import validate_plan
from repro.workloads.generators import (
    chain_query,
    cycle_query,
    dense_query,
    star_query,
    tree_query,
)


class TestDecisionTree:
    def test_chain_uses_tdcmd(self):
        assert choose_algorithm(JoinGraph(chain_query(20))) == "TD-CMD"

    def test_cycle_uses_tdcmd(self):
        assert choose_algorithm(JoinGraph(cycle_query(20))) == "TD-CMD"

    def test_small_star_uses_tdcmdp(self):
        # degree = 12 ≥ θ_d = 5, |V_T| = 12 < θ_n = 30
        assert choose_algorithm(JoinGraph(star_query(12))) == "TD-CMDP"

    def test_huge_star_uses_hgr(self):
        assert choose_algorithm(JoinGraph(star_query(31))) == "HGR-TD-CMD"

    def test_low_degree_tree_uses_tdcmd(self):
        jg = JoinGraph(chain_query(8))
        assert jg.max_degree() < 5
        assert choose_algorithm(jg) == "TD-CMD"

    def test_multi_cycle_dense_thresholds(self):
        # build a dense query with |V_T|/|V_J| < 1 is impossible for
        # edge-style patterns (each pattern brings ≤ 2 join variables and
        # consumes ≥ 1), so exercise the branch with custom thresholds
        thresholds = AutoThresholds(degree=2, pattern_count=5, dense_pattern_count=5)
        jg = JoinGraph(star_query(6))
        assert choose_algorithm(jg, thresholds) == "HGR-TD-CMD"

    def test_threshold_boundaries(self):
        thresholds = AutoThresholds(degree=5, pattern_count=30, dense_pattern_count=14)
        # degree exactly θ_d -> not "< θ_d" -> pruning path
        jg = JoinGraph(star_query(5))
        assert jg.max_degree() == 5
        assert choose_algorithm(jg, thresholds) == "TD-CMDP"
        jg4 = JoinGraph(star_query(4))
        assert choose_algorithm(jg4, thresholds) == "TD-CMD"


class TestAutonomousOptimizer:
    @pytest.mark.parametrize(
        "query",
        [
            chain_query(10),
            cycle_query(8),
            star_query(9),
            tree_query(9, random.Random(0)),
            dense_query(9, random.Random(0)),
        ],
        ids=["chain", "cycle", "star", "tree", "dense"],
    )
    def test_produces_valid_plans(self, query):
        builder = make_builder(query, seed=0)
        result = AutonomousOptimizer(builder.join_graph, builder).optimize()
        validate_plan(result.plan, builder.join_graph.full)
        assert result.algorithm.startswith("TD-Auto[")

    def test_reports_chosen_variant(self):
        builder = make_builder(star_query(12), seed=0)
        result = AutonomousOptimizer(builder.join_graph, builder).optimize()
        assert result.algorithm == "TD-Auto[TD-CMDP]"
