"""Tests for the MSC, DP-Bushy, and TriAD-style baselines."""

import random

import pytest

from repro import parse_query
from repro.baselines import (
    DPBushyOptimizer,
    MSCOptimizer,
    TriADOptimizer,
    maximal_multiway_division,
    minimum_set_covers,
)
from repro.core import (
    CartesianProductError,
    JoinGraph,
    LocalQueryIndex,
    TopDownEnumerator,
)
from repro.core import bitset as bs
from repro.core.optimizer import make_builder
from repro.core.plans import JoinAlgorithm, validate_plan
from repro.partitioning import HashSubjectObject
from repro.rdf.terms import Variable
from repro.workloads.generators import (
    chain_query,
    dense_query,
    generate_query,
    star_query,
    tree_query,
)
from repro.core.join_graph import QueryShape

ALL_BASELINES = [MSCOptimizer, DPBushyOptimizer, TriADOptimizer]


class TestMinimumSetCover:
    def test_finds_all_minimum_covers(self):
        universe = frozenset(range(4))
        v = lambda name: Variable(name)
        candidates = [
            (v("a"), frozenset({0, 1})),
            (v("b"), frozenset({2, 3})),
            (v("c"), frozenset({1, 2})),
            (v("d"), frozenset({0, 3})),
            (v("e"), frozenset({0})),
        ]
        covers = minimum_set_covers(universe, candidates)
        assert all(len(c) == 2 for c in covers)
        names = {tuple(sorted(kv[0].name for kv in cover)) for cover in covers}
        assert names == {("a", "b"), ("c", "d")}

    def test_single_set_cover(self):
        universe = frozenset({0, 1})
        covers = minimum_set_covers(
            universe, [(Variable("a"), frozenset({0, 1}))]
        )
        assert len(covers) == 1 and len(covers[0]) == 1


class TestMaximalMultiwayDivision:
    def test_star_groups_into_singletons(self):
        jg = JoinGraph(star_query(5))
        parts, variable = maximal_multiway_division(jg, jg.full)
        assert variable == Variable("c")
        assert sorted(parts) == [bs.bit(i) for i in range(5)]

    def test_parts_partition_and_connect(self, fig1_graph):
        parts, variable = maximal_multiway_division(fig1_graph, fig1_graph.full)
        assert variable == Variable("a")  # degree 4
        union = 0
        for part in parts:
            assert fig1_graph.is_connected(part)
            assert union & part == 0
            union |= part
        assert union == fig1_graph.full
        assert len(parts) == 4


class TestBaselinePlans:
    @pytest.mark.parametrize("baseline", ALL_BASELINES, ids=lambda c: c.algorithm_name)
    def test_valid_plans_on_all_shapes(self, baseline):
        for shape, size in [
            (QueryShape.CHAIN, 6),
            (QueryShape.STAR, 6),
            (QueryShape.TREE, 7),
            (QueryShape.DENSE, 7),
        ]:
            query = generate_query(shape, size, random.Random(1))
            builder = make_builder(query, seed=1)
            result = baseline(builder.join_graph, builder, timeout_seconds=60).optimize()
            validate_plan(result.plan, builder.join_graph.full)

    @pytest.mark.parametrize("baseline", ALL_BASELINES, ids=lambda c: c.algorithm_name)
    def test_never_beats_tdcmd(self, baseline):
        """TD-CMD explores a superset of every baseline's (valid) space...
        except baselines may use local plans TD-CMD also has; so TD-CMD
        cost must be ≤ baseline cost."""
        for seed in range(4):
            query = generate_query(QueryShape.TREE, 7, random.Random(seed))
            builder = make_builder(query, seed=seed)
            index = LocalQueryIndex(builder.join_graph, HashSubjectObject())
            best = TopDownEnumerator(builder.join_graph, builder, index).optimize()
            other = baseline(
                builder.join_graph, builder, index, timeout_seconds=60
            ).optimize()
            assert best.cost <= other.cost + 1e-9

    @pytest.mark.parametrize("baseline", ALL_BASELINES, ids=lambda c: c.algorithm_name)
    def test_disconnected_rejected(self, baseline):
        q = parse_query(
            "SELECT * WHERE { ?a <http://e/p> ?b . ?c <http://e/q> ?d . }"
        )
        builder = make_builder(q)
        with pytest.raises(CartesianProductError):
            baseline(builder.join_graph, builder).optimize()


class TestMSCBehaviour:
    def test_flat_plans_have_few_levels(self):
        query = star_query(8)
        builder = make_builder(query, seed=0)
        result = MSCOptimizer(builder.join_graph, builder).optimize()
        # a star is one clique: MSC must produce a single 8-way join
        assert result.plan.depth() == 1

    def test_flatter_than_tdcmd_on_trees(self):
        query = tree_query(8, random.Random(3))
        builder = make_builder(query, seed=3)
        msc = MSCOptimizer(builder.join_graph, builder, timeout_seconds=60).optimize()
        best = TopDownEnumerator(builder.join_graph, builder).optimize()
        assert msc.plan.depth() <= best.plan.depth() + 1

    def test_no_broadcast_joins(self):
        """Flat plans cannot take advantage of broadcast joins (Section V-B)."""
        for seed in range(3):
            query = tree_query(7, random.Random(seed))
            builder = make_builder(query, seed=seed)
            result = MSCOptimizer(
                builder.join_graph, builder, timeout_seconds=60
            ).optimize()
            for join in result.plan.joins():
                assert join.algorithm is not JoinAlgorithm.BROADCAST


class TestDPBushyBehaviour:
    def test_optimal_among_binary_plus_local_on_chain(self):
        """On chains the maximal multiway rarely helps; DP-Bushy should
        at least match TriAD (pure binary)."""
        query = chain_query(7)
        builder = make_builder(query, seed=5)
        dp = DPBushyOptimizer(builder.join_graph, builder).optimize()
        triad = TriADOptimizer(builder.join_graph, builder).optimize()
        assert dp.cost <= triad.cost + 1e-9

    def test_enumerates_disconnected_divisions(self):
        """The documented inefficiency: divisions are generated without a
        connectivity pre-check, so the division counter far exceeds the
        number of *connected* divisions."""
        query = chain_query(8)
        builder = make_builder(query, seed=0)
        dp = DPBushyOptimizer(builder.join_graph, builder)
        dp.optimize()
        from repro.core.counting import t_chain

        assert dp.stats.divisions_enumerated > t_chain(8)
