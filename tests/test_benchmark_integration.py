"""Integration: every algorithm × every benchmark query, validated.

The fifteen paper queries are optimized with all seven registered
algorithms (MSC is skipped on its known-exponential pairs), every plan
is structurally validated, and the TD family's costs are checked for
the dominance relations the paper relies on:

* TD-CMD is minimal (it explores a superset of every other space),
* TD-Auto's cost equals its chosen variant's cost.
"""

import pytest

from repro.core.plans import validate_plan
from repro.experiments.benchmark_queries import QUERY_ORDER, benchmark_queries
from repro.experiments.harness import ALGORITHMS, run_algorithm
from repro.partitioning import HashSubjectObject

SKIP_PAIRS = {("MSC", "L9"), ("MSC", "L10")}  # paper: 432 s / >10 h


@pytest.fixture(scope="module")
def all_runs():
    queries = benchmark_queries()
    partitioning = HashSubjectObject()
    runs = {}
    for name in QUERY_ORDER:
        bench = queries[name]
        for algorithm in ALGORITHMS:
            if (algorithm, name) in SKIP_PAIRS:
                continue
            runs[(algorithm, name)] = run_algorithm(
                algorithm,
                bench.query,
                statistics=bench.statistics,
                partitioning=partitioning,
                timeout_seconds=20,
            )
    return runs


def test_every_run_produces_a_valid_plan(all_runs):
    queries = benchmark_queries()
    completed = 0
    for (algorithm, name), run in all_runs.items():
        if run.timed_out:
            continue
        completed += 1
        expected_bits = (1 << len(queries[name].query)) - 1
        validate_plan(run.result.plan, expected_bits)
    # everything except a handful of explosive pairs must complete
    assert completed >= len(all_runs) - 3


def test_tdcmd_is_minimal(all_runs):
    for name in QUERY_ORDER:
        best = all_runs[("TD-CMD", name)]
        if best.timed_out:
            continue
        for algorithm in ALGORITHMS:
            run = all_runs.get((algorithm, name))
            if run is None or run.timed_out:
                continue
            assert best.cost <= run.cost * (1 + 1e-9), (algorithm, name)


def test_td_auto_matches_its_choice(all_runs):
    from repro.core import JoinGraph, choose_algorithm

    queries = benchmark_queries()
    for name in QUERY_ORDER:
        auto = all_runs[("TD-Auto", name)]
        if auto.timed_out:
            continue
        choice = choose_algorithm(JoinGraph(queries[name].query))
        chosen = all_runs.get((choice, name))
        if chosen is not None and not chosen.timed_out:
            assert auto.cost == pytest.approx(chosen.cost), (name, choice)


def test_plan_covers_every_pattern(all_runs):
    queries = benchmark_queries()
    for (algorithm, name), run in all_runs.items():
        if run.timed_out:
            continue
        assert run.result.plan.pattern_count == len(queries[name].query)
