"""Unit and property tests for the bitset helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.core import bitset as bs

bitsets = st.integers(min_value=0, max_value=(1 << 24) - 1)


class TestBasics:
    def test_bit(self):
        assert bs.bit(0) == 1
        assert bs.bit(5) == 32

    def test_from_to_indices_round_trip(self):
        assert bs.to_indices(bs.from_indices([0, 3, 7])) == [0, 3, 7]

    def test_iter_bits(self):
        assert list(bs.iter_bits(0b1011)) == [0, 1, 3]

    def test_popcount(self):
        assert bs.popcount(0) == 0
        assert bs.popcount(0b1011) == 3

    def test_lowest_bit(self):
        assert bs.lowest_bit(0b1100) == 0b100
        assert bs.lowest_bit(0) == 0

    def test_lowest_index(self):
        assert bs.lowest_index(0b1100) == 2
        with pytest.raises(ValueError):
            bs.lowest_index(0)

    def test_is_subset(self):
        assert bs.is_subset(0b101, 0b111)
        assert not bs.is_subset(0b101, 0b110)
        assert bs.is_subset(0, 0b1)

    def test_full_set(self):
        assert bs.full_set(3) == 0b111
        assert bs.full_set(0) == 0

    def test_iter_subsets_counts(self):
        subs = list(bs.iter_subsets(0b111))
        assert len(subs) == 7  # non-empty subsets of a 3-set
        assert len(set(subs)) == 7

    def test_proper_nonempty_subsets(self):
        subs = list(bs.iter_proper_nonempty_subsets(0b111))
        assert len(subs) == 6
        assert 0b111 not in subs


def _reference_indices(bits):
    """The pre-kernel shift-loop implementation, kept as the oracle for
    the O(popcount) lowest-bit-stripping versions."""
    result = []
    index = 0
    while bits:
        if bits & 1:
            result.append(index)
        bits >>= 1
        index += 1
    return result


class TestProperties:
    @given(bitsets)
    def test_round_trip(self, bits):
        assert bs.from_indices(bs.to_indices(bits)) == bits

    @given(bitsets)
    def test_to_indices_matches_reference(self, bits):
        assert bs.to_indices(bits) == _reference_indices(bits)

    @given(bitsets)
    def test_iter_bits_matches_reference(self, bits):
        assert list(bs.iter_bits(bits)) == _reference_indices(bits)

    @given(st.integers(min_value=0, max_value=(1 << 200) - 1))
    def test_kernels_agree_on_wide_bitsets(self, bits):
        """Indices stay ascending and consistent far past machine width."""
        indices = bs.to_indices(bits)
        assert indices == sorted(indices)
        assert list(bs.iter_bits(bits)) == indices
        assert indices == _reference_indices(bits)

    @given(bitsets)
    def test_popcount_matches_indices(self, bits):
        assert bs.popcount(bits) == len(bs.to_indices(bits))

    @given(bitsets)
    def test_subsets_are_subsets(self, bits):
        count = 0
        for sub in bs.iter_subsets(bits & 0x3FF):
            assert bs.is_subset(sub, bits)
            count += 1
        assert count == (2 ** bs.popcount(bits & 0x3FF)) - 1

    @given(bitsets)
    def test_lowest_bit_is_member(self, bits):
        if bits:
            low = bs.lowest_bit(bits)
            assert low & bits
            assert bs.popcount(low) == 1
            assert bs.lowest_index(bits) == bs.to_indices(bits)[0]
