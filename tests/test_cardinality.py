"""Tests for cardinality estimation (Eqs. 10–11)."""

import random

import pytest

from repro import parse_query
from repro.core import JoinGraph
from repro.core import bitset as bs
from repro.core.cardinality import (
    CardinalityEstimator,
    PatternStatistics,
    StatisticsCatalog,
)
from repro.rdf import Dataset, triple
from repro.rdf.terms import Variable


@pytest.fixture
def two_pattern_query():
    return parse_query(
        "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z . }"
    )


class TestEquation10:
    def test_binary_join_formula(self, two_pattern_query):
        """|tp1 ⋈ tp2| = |tp1|·|tp2| / max(B(tp1,y), B(tp2,y))."""
        y = Variable("y")
        catalog = StatisticsCatalog(
            two_pattern_query,
            [
                PatternStatistics(100.0, {Variable("x"): 50.0, y: 20.0}),
                PatternStatistics(200.0, {y: 40.0, Variable("z"): 10.0}),
            ],
        )
        jg = JoinGraph(two_pattern_query)
        est = CardinalityEstimator(jg, catalog)
        assert est.cardinality(0b11) == pytest.approx(100 * 200 / 40.0)

    def test_no_shared_variable_gives_product(self):
        q = parse_query(
            "SELECT * WHERE { ?x <http://e/p> ?y . ?y <http://e/q> ?z . ?z <http://e/r> ?w . }"
        )
        jg = JoinGraph(q)
        catalog = StatisticsCatalog.uniform(q, cardinality=10.0)
        est = CardinalityEstimator(jg, catalog)
        # tp0 and tp2 share nothing: estimating that (disconnected) set
        # folds with an empty denominator -> cross product
        assert est.cardinality(0b101) == pytest.approx(100.0)

    def test_floor_at_one(self, two_pattern_query):
        catalog = StatisticsCatalog(
            two_pattern_query,
            [
                PatternStatistics(2.0, {Variable("y"): 2.0}),
                PatternStatistics(3.0, {Variable("y"): 1000.0}),
            ],
        )
        est = CardinalityEstimator(JoinGraph(two_pattern_query), catalog)
        assert est.cardinality(0b11) >= 1.0


class TestEquation11:
    def test_fold_is_plan_shape_independent(self, fig1_query):
        """All plans of a subquery must see one cardinality (memo safety)."""
        jg = JoinGraph(fig1_query)
        catalog = StatisticsCatalog.from_random(fig1_query, random.Random(3))
        est = CardinalityEstimator(jg, catalog)
        for sub in (0b0000111, 0b1100011, jg.full):
            assert est.cardinality(sub) == est.cardinality(sub)  # cached
        # estimate depends only on the bitset, not on call order
        est2 = CardinalityEstimator(jg, catalog)
        assert est2.cardinality(jg.full) == est.cardinality(jg.full)

    def test_bindings_capped_by_cardinality(self, fig1_query):
        jg = JoinGraph(fig1_query)
        catalog = StatisticsCatalog.from_random(fig1_query, random.Random(3))
        est = CardinalityEstimator(jg, catalog)
        for variable in jg.join_variables:
            bits = jg.ntp(variable)
            assert est.bindings(bits, variable) <= est.cardinality(bits)

    def test_empty_subquery_rejected(self, fig1_query):
        jg = JoinGraph(fig1_query)
        est = CardinalityEstimator(jg, StatisticsCatalog.uniform(fig1_query))
        with pytest.raises(ValueError):
            est.cardinality(0)


class TestCatalogs:
    def test_from_random_ranges(self, fig1_query):
        catalog = StatisticsCatalog.from_random(
            fig1_query, random.Random(0), max_cardinality=1000
        )
        for i, tp in enumerate(fig1_query):
            stats = catalog[i]
            assert 1 <= stats.cardinality <= 1000
            for variable in tp.variables():
                assert 1 <= stats.binding_count(variable) <= stats.cardinality

    def test_from_dataset_counts_exactly(self):
        ds = Dataset.from_triples(
            [
                triple("http://e/a", "http://e/p", "http://e/b"),
                triple("http://e/a", "http://e/p", "http://e/c"),
                triple("http://e/x", "http://e/p", "http://e/b"),
            ]
        )
        q = parse_query("SELECT * WHERE { ?s <http://e/p> ?o . ?o <http://e/p> ?z . }")
        catalog = StatisticsCatalog.from_dataset(q, ds)
        assert catalog[0].cardinality == 3.0
        assert catalog[0].binding_count(Variable("s")) == 2.0
        assert catalog[0].binding_count(Variable("o")) == 2.0

    def test_length_mismatch_rejected(self, fig1_query):
        with pytest.raises(ValueError):
            StatisticsCatalog(fig1_query, [PatternStatistics(1.0)])

    def test_unknown_binding_defaults_to_cardinality(self):
        stats = PatternStatistics(7.0, {})
        assert stats.binding_count(Variable("zz")) == 7.0
